"""CPU reference compaction — the software merge path.

This is the baseline the paper measures FCAE against, and the functional
oracle the FPGA engine's output is compared to in tests.  Given N input
streams of (internal key, value) pairs sorted newest-source-first, it:

1. merges them (Comparer's *Key Compare* role),
2. drops entries shadowed by a newer version of the same user key and —
   when compacting into the bottommost level — deletion tombstones
   (Comparer's *Validity Check* role),
3. re-encodes survivors into standard SSTables, cutting a new data block
   at ``Options.block_size`` and a new table at ``Options.sstable_size``
   (the Encoder's role).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import CorruptionError
from repro.lsm.internal import (
    InternalKeyComparator,
    MARK_FIELDS_SIZE,
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
)
from repro.lsm.iterator import KVPair, merging_iterator
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder, TableStats

_TRAILER = struct.Struct("<Q")


class _BufferFile:
    """Minimal in-memory WritableFile for building table images."""

    def __init__(self) -> None:
        self.data = bytearray()

    def append(self, data: bytes) -> None:
        self.data += data

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class OutputTable:
    """One SSTable produced by a compaction."""

    data: bytes
    smallest: bytes
    largest: bytes
    stats: TableStats


@dataclass
class CompactionStats:
    """Counters shared by the CPU and FPGA compaction paths."""

    input_pairs: int = 0
    output_pairs: int = 0
    dropped_shadowed: int = 0
    dropped_tombstones: int = 0
    input_bytes: int = 0
    output_bytes: int = 0
    outputs: list[OutputTable] = field(default_factory=list)


def merge_entries(sources: Iterable[Iterator[KVPair]],
                  comparator: InternalKeyComparator,
                  drop_deletions: bool,
                  stats: CompactionStats | None = None,
                  smallest_snapshot: int | None = None) -> Iterator[KVPair]:
    """Merge + validity-check: yields surviving (internal key, value).

    Sources must be ordered so that for equal internal-key *user* parts the
    newer entry (higher sequence) is met first — the internal-key order
    guarantees this within and across sorted runs.

    ``smallest_snapshot`` is the oldest live snapshot sequence.  An entry
    is dropped only when a *newer* entry for the same user key is itself
    at-or-below that sequence — i.e. every live snapshot still resolves to
    the same version it saw before the compaction (LevelDB's
    ``last_sequence_for_key`` rule).  ``None`` means no live snapshots:
    only the newest version of each key survives.
    """
    if smallest_snapshot is None:
        # No live snapshots: any real sequence (< MAX_SEQUENCE) shadows
        # older versions, so only the newest survives.
        smallest_snapshot = MAX_SEQUENCE - 1
    last_user_key: bytes | None = None
    # Sequence of the previous (newer) entry for the current user key;
    # MAX_SEQUENCE marks "no newer entry seen yet".
    last_sequence_for_key = MAX_SEQUENCE
    user_cmp = comparator.user_comparator.compare
    bytewise = getattr(comparator, "_bytewise", False)
    unpack_trailer = _TRAILER.unpack_from
    for internal_key, value in merging_iterator(sources, comparator.compare):
        if stats is not None:
            stats.input_pairs += 1
            stats.input_bytes += len(internal_key) + len(value)
        # Inlined parse_internal_key: this loop touches every input pair,
        # so the dataclass allocation and double slicing are skipped.
        if len(internal_key) < MARK_FIELDS_SIZE:
            raise CorruptionError("internal key shorter than mark fields")
        user_key = internal_key[:-MARK_FIELDS_SIZE]
        trailer = unpack_trailer(internal_key,
                                 len(internal_key) - MARK_FIELDS_SIZE)[0]
        value_type = trailer & 0xFF
        if value_type not in (TYPE_VALUE, TYPE_DELETION):
            raise CorruptionError(f"unknown value type byte {value_type:#x}")
        sequence = trailer >> 8
        if last_user_key is None or (
                user_key != last_user_key if bytewise
                else user_cmp(user_key, last_user_key) != 0):
            last_user_key = user_key
            last_sequence_for_key = MAX_SEQUENCE
        if last_sequence_for_key <= smallest_snapshot:
            # A newer version visible to the oldest snapshot shadows this
            # one for every reader that can still exist.
            last_sequence_for_key = sequence
            if stats is not None:
                stats.dropped_shadowed += 1
            continue
        last_sequence_for_key = sequence
        if (value_type == TYPE_DELETION and drop_deletions
                and sequence <= smallest_snapshot):
            # Tombstone invisible to no one (bottommost level): drop it.
            if stats is not None:
                stats.dropped_tombstones += 1
            continue
        if stats is not None:
            stats.output_pairs += 1
            stats.output_bytes += len(internal_key) + len(value)
        yield internal_key, value


def build_output_tables(entries: Iterator[KVPair], options: Options,
                        comparator: InternalKeyComparator) -> list[OutputTable]:
    """Encode merged entries into >= 0 SSTable images, rolling over at
    ``Options.sstable_size``."""
    outputs: list[OutputTable] = []
    dest: _BufferFile | None = None
    builder: TableBuilder | None = None

    def finish_current() -> None:
        nonlocal dest, builder
        if builder is None or builder.smallest_key is None:
            dest, builder = None, None
            return
        table_stats = builder.finish()
        outputs.append(OutputTable(
            data=bytes(dest.data),
            smallest=builder.smallest_key,
            largest=builder.largest_key,
            stats=table_stats,
        ))
        dest, builder = None, None

    for internal_key, value in entries:
        if builder is None:
            dest = _BufferFile()
            builder = TableBuilder(options, dest, comparator)
        builder.add(internal_key, value)
        if builder.file_size >= options.sstable_size:
            finish_current()
    finish_current()
    return outputs


def compact(sources: Iterable[Iterator[KVPair]], options: Options,
            comparator: InternalKeyComparator,
            drop_deletions: bool = False,
            smallest_snapshot: int | None = None) -> CompactionStats:
    """Run a full software compaction over ``sources``.

    Returns statistics whose ``outputs`` list holds the new table images
    with their key ranges — the same payload the FPGA's MetaOut memory
    reports back to the host.  ``smallest_snapshot`` preserves versions
    still visible to live snapshots (see :func:`merge_entries`).
    """
    stats = CompactionStats()
    survivors = merge_entries(sources, comparator, drop_deletions, stats,
                              smallest_snapshot=smallest_snapshot)
    stats.outputs = build_output_tables(survivors, options, comparator)
    return stats


def table_sources(tables: Iterable, newest_first: bool = True
                  ) -> list[Iterator[KVPair]]:
    """Adapt TableReader-like iterables into merge sources.

    ``tables`` arrive newest-first by convention (L0 ordering); since the
    internal-key comparator already breaks user-key ties by sequence, the
    source order only matters for the merging iterator's tie rule, which
    equal internal keys never reach.
    """
    sources = [iter(t) for t in tables]
    if not newest_first:
        sources.reverse()
    return sources


def concatenating_iterator(tables: Iterable) -> Iterator[KVPair]:
    """Chain sorted, non-overlapping tables into one sorted stream.

    This is the paper's §IV step 2: a sorted level's files "can be
    concatenated as a big SSTable, and the number of input is one".
    """
    for table in tables:
        yield from table


def make_compaction_sources(
        level: int,
        input_tables: list,
        parent_tables: list) -> list[Iterator[KVPair]]:
    """Build merge sources for a CompactionSpec's tables.

    Level-0 inputs each become their own source (their ranges overlap);
    inputs from sorted levels are concatenated, as are the parents.
    """
    sources: list[Iterator[KVPair]] = []
    if level == 0:
        sources.extend(iter(t) for t in input_tables)
    elif input_tables:
        sources.append(concatenating_iterator(input_tables))
    if parent_tables:
        sources.append(concatenating_iterator(parent_tables))
    return sources
