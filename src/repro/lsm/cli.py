"""``python -m repro.lsm`` — a small command-line client for the store.

Operates on a real directory (``OsEnv``), so state persists between
invocations::

    python -m repro.lsm put   /tmp/db greeting "hello world"
    python -m repro.lsm get   /tmp/db greeting
    python -m repro.lsm scan  /tmp/db --limit 10
    python -m repro.lsm fill  /tmp/db --entries 10000 --value-size 128
    python -m repro.lsm compact /tmp/db --fpga 9
    python -m repro.lsm stats /tmp/db
    python -m repro.lsm delete /tmp/db greeting

``--fpga N`` routes merge compactions through an N-input FCAE device
instead of the CPU path — functionally identical files, offload
statistics printed.

Every command also takes ``--metrics-out PATH`` (Prometheus text-format
dump of the run's metrics; fails if PATH exists unless ``--overwrite``),
``--trace-out PATH`` (JSONL span trace of flushes/compactions and their
offload phases; appends) and ``--events-out PATH`` (flight-recorder
event journal as JSONL; appends).  ``fill --watch SECS`` prints windowed
put-latency percentiles while the fill runs, ``levelstats`` prints the
per-level amplification table, and ``top`` renders the live terminal
dashboard (``--once`` prints a single headless frame for CI).
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.errors import NotFoundError, ReproError
from repro.lsm.db import LsmDB
from repro.lsm.env import OsEnv
from repro.lsm.options import Options


def _cli_options(args) -> Options:
    # The CLI operates on a persistent directory, so keep the flight
    # recorder on: EVENTS.jsonl in the DB dir is the LevelDB LOG analog,
    # appending one segment per invocation.
    return Options(
        event_journal=True,
        latency_window_seconds=float(getattr(args, "watch", 0) or 0))


def _open_db(args) -> LsmDB:
    executor = None
    scheduler = None
    options = _cli_options(args)
    if getattr(args, "fpga", 0):
        from repro.fpga.resources import best_feasible_config
        from repro.host.device import FcaeDevice
        from repro.host.scheduler import CompactionScheduler

        config = best_feasible_config(args.fpga)
        device = FcaeDevice(config, options)
        scheduler = CompactionScheduler(device, options)
        executor = scheduler
    db = LsmDB(args.db, options, env=OsEnv(),
               compaction_executor=executor)
    db._cli_scheduler = scheduler
    return db


def cmd_put(args) -> int:
    with _open_db(args) as db:
        db.put(args.key.encode(), args.value.encode())
    print("OK")
    return 0


def cmd_get(args) -> int:
    with _open_db(args) as db:
        try:
            value = db.get(args.key.encode())
        except NotFoundError:
            print(f"(not found: {args.key})", file=sys.stderr)
            return 1
    sys.stdout.write(value.decode(errors="replace") + "\n")
    return 0


def cmd_delete(args) -> int:
    with _open_db(args) as db:
        db.delete(args.key.encode())
    print("OK")
    return 0


def cmd_scan(args) -> int:
    with _open_db(args) as db:
        start = args.start.encode() if args.start else None
        end = args.end.encode() if args.end else None
        count = 0
        for key, value in db.scan(start=start, end=end):
            print(f"{key.decode(errors='replace')}\t"
                  f"{value.decode(errors='replace')}")
            count += 1
            if args.limit and count >= args.limit:
                break
    print(f"({count} entries)", file=sys.stderr)
    return 0


def cmd_fill(args) -> int:
    import time as _time

    from repro.workloads.dbbench import DbBench, FillMode

    with _open_db(args) as db:
        bench = DbBench(args.entries, value_length=args.value_size)
        mode = FillMode.SEQUENTIAL if args.sequential else FillMode.RANDOM
        if args.watch:
            written = 0
            next_report = _time.monotonic() + args.watch
            for count, (key, value) in enumerate(bench.fill(mode), 1):
                db.put(key, value)
                written += len(key) + len(value)
                if _time.monotonic() >= next_report:
                    _print_watch_line(db, count)
                    next_report = _time.monotonic() + args.watch
        else:
            written = bench.run_fill(db, mode)
        db.flush()
        print(f"wrote {args.entries} entries ({written / 1e6:.1f} MB), "
              f"levels: {db.level_file_counts()}")
        _print_offload_stats(db)
    return 0


def _print_watch_line(db: LsmDB, count: int) -> None:
    """One ``--watch`` progress line: windowed put-latency percentiles."""
    window = db._windows["put"] if db._windows else None
    if window is None:
        return
    quantiles = " ".join(
        f"{label}={window.percentile(q) * 1e6:.0f}us"
        for q, label in ((0.5, "p50"), (0.99, "p99"), (0.999, "p999")))
    print(f"  {count} puts  {quantiles}  levels={db.level_file_counts()}",
          file=sys.stderr)


def cmd_compact(args) -> int:
    with _open_db(args) as db:
        db.compact_range()
        print(f"levels after compaction: {db.level_file_counts()}")
        _print_offload_stats(db)
    return 0


def cmd_stats(args) -> int:
    with _open_db(args) as db:
        print(f"path: {args.db}")
        print(db.property("repro.stats"))
    return 0


def cmd_levelstats(args) -> int:
    with _open_db(args) as db:
        print(f"path: {args.db}")
        print(db.property("repro.levelstats"))
    return 0


def cmd_top(args) -> int:
    from repro.obs.dashboard import run_dashboard

    with _open_db(args) as db:
        iterations = 1 if args.once else (args.iterations or None)
        try:
            run_dashboard(db.metrics, db=db, engine=db.slo_engine,
                          interval=args.interval, iterations=iterations)
        except KeyboardInterrupt:
            pass
    return 0


def _print_offload_stats(db: LsmDB) -> None:
    scheduler = getattr(db, "_cli_scheduler", None)
    if scheduler is None:
        return
    stats = scheduler.stats
    print(f"offload: {stats.fpga_tasks} on FPGA "
          f"({stats.fpga_kernel_seconds * 1e3:.1f} ms kernel, "
          f"{stats.fpga_pcie_seconds * 1e3:.2f} ms PCIe), "
          f"{stats.software_tasks} in software")


def cmd_serve(args) -> int:
    from repro.service.cli import cmd_serve as service_serve

    return service_serve(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lsm",
        description="Command-line client for the FCAE LSM store.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, func, **arguments):
        cmd = sub.add_parser(name)
        cmd.add_argument("db", help="database directory")
        for arg_name, kwargs in arguments.items():
            cmd.add_argument(arg_name.replace("_", "-")
                             if arg_name.startswith("--") else arg_name,
                             **kwargs)
        cmd.add_argument("--fpga", type=int, default=0, metavar="N",
                         help="offload compactions to an N-input engine")
        cmd.add_argument("--metrics-out", metavar="PATH",
                         help="write a Prometheus text-format metrics dump")
        cmd.add_argument("--trace-out", metavar="PATH",
                         help="stream span traces as JSONL (appends)")
        cmd.add_argument("--events-out", metavar="PATH",
                         help="stream flight-recorder events as JSONL "
                              "(appends)")
        cmd.add_argument("--overwrite", action="store_true",
                         help="replace an existing --metrics-out file "
                              "instead of failing")
        cmd.set_defaults(func=func)
        return cmd

    add("put", cmd_put, key={}, value={})
    add("get", cmd_get, key={})
    add("delete", cmd_delete, key={})
    scan = add("scan", cmd_scan)
    scan.add_argument("--start")
    scan.add_argument("--end")
    scan.add_argument("--limit", type=int, default=0)
    fill = add("fill", cmd_fill)
    fill.add_argument("--entries", type=int, default=10_000)
    fill.add_argument("--value-size", type=int, default=128)
    fill.add_argument("--sequential", action="store_true")
    fill.add_argument("--watch", type=float, default=0.0, metavar="SECS",
                      help="report windowed put-latency percentiles "
                           "every SECS seconds during the fill")
    add("compact", cmd_compact)
    add("stats", cmd_stats)
    add("levelstats", cmd_levelstats)
    top = add("top", cmd_top)
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (headless, for CI)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECS",
                     help="refresh interval (default 2s)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (0 = until ^C)")

    from repro.lsm.options import WAL_SYNC_MODES
    serve = sub.add_parser(
        "serve", help="run the sharded KV server over this store "
                      "(client: python -m repro.service)")
    serve.add_argument("root", help="directory holding the shard DBs")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707)
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--workers", type=int, default=16)
    serve.add_argument("--wal-sync", default="group",
                       choices=WAL_SYNC_MODES)
    serve.add_argument("--stall-threshold", type=float, default=0.5)
    serve.add_argument("--ready-fd", type=int, default=-1)
    serve.set_defaults(func=cmd_serve, metrics_out=None, trace_out=None,
                       events_out=None, overwrite=False)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = tracer = events = token = None
    if args.metrics_out or args.trace_out or args.events_out:
        registry = obs.MetricsRegistry()
        obs.names.register_all(registry)
        if args.trace_out:
            try:
                tracer = obs.Tracer(sink_path=args.trace_out,
                                    keep_spans=False)
            except OSError as error:
                print(f"error: cannot open {args.trace_out}: {error}",
                      file=sys.stderr)
                return 2
        if args.events_out:
            try:
                events = obs.EventJournal(sink_path=args.events_out,
                                          keep_events=False)
            except OSError as error:
                print(f"error: cannot open {args.events_out}: {error}",
                      file=sys.stderr)
                return 2
        token = obs.install(registry=registry, tracer=tracer,
                            events=events)
    status = 0
    try:
        status = args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        status = 2
    finally:
        if token is not None:
            obs.uninstall(token)
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace_out}", file=sys.stderr)
        if events is not None:
            events.close()
            print(f"events written to {args.events_out}", file=sys.stderr)
        if registry is not None and args.metrics_out:
            try:
                obs.write_prometheus(args.metrics_out, registry,
                                     overwrite=args.overwrite)
            except FileExistsError as error:
                print(f"error: {error}", file=sys.stderr)
                status = status or 2
            except OSError as error:
                print(f"error: cannot write {args.metrics_out}: {error}",
                      file=sys.stderr)
                status = status or 2
            else:
                print(f"metrics written to {args.metrics_out}",
                      file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
