"""CompactionEngine: functional equivalence with the CPU path, timing
sanity, input limits, and the merge-correctness property."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FpgaResourceError
from repro.fpga.config import CONFIG_2_INPUT, CONFIG_9_INPUT
from repro.fpga.engine import CompactionEngine
from repro.lsm.compaction import compact
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image

ICMP = InternalKeyComparator(BytewiseComparator())


def make_run(seed, count, seq_base, delete_fraction=0.1, key_space=50_000):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(key_space), count))
    run = []
    for i, raw in enumerate(keys):
        user = f"{raw:016d}".encode()
        if rng.random() < delete_fraction:
            run.append((encode_internal_key(user, seq_base + i,
                                            TYPE_DELETION), b""))
        else:
            value = (f"data{raw}".encode() * 6)[:72]
            run.append((encode_internal_key(user, seq_base + i, TYPE_VALUE),
                        value))
    return run


class TestFunctional:
    def test_matches_cpu_compaction_bytes(self, plain_options):
        newer = make_run(1, 700, 100_000)
        older = make_run(2, 900, 1)
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        images = [[build_table_image(newer, plain_options, ICMP)],
                  [build_table_image(older, plain_options, ICMP)]]
        result = engine.run_on_images(images, drop_deletions=True)
        oracle = compact([iter(newer), iter(older)], plain_options, ICMP,
                         drop_deletions=True)
        assert len(result.outputs) == len(oracle.outputs)
        for ours, theirs in zip(result.outputs, oracle.outputs):
            assert ours.data == theirs.data
            assert ours.smallest == theirs.smallest
            assert ours.largest == theirs.largest

    def test_matches_cpu_with_compression(self, options):
        newer = make_run(3, 200, 10_000)
        older = make_run(4, 250, 1)
        engine = CompactionEngine(CONFIG_2_INPUT, options)
        images = [[build_table_image(newer, options, ICMP)],
                  [build_table_image(older, options, ICMP)]]
        result = engine.run_on_images(images, drop_deletions=False)
        oracle = compact([iter(newer), iter(older)], options, ICMP,
                         drop_deletions=False)
        assert [o.data for o in result.outputs] == [
            o.data for o in oracle.outputs]

    def test_multi_table_input_concatenation(self, plain_options):
        run = make_run(5, 600, 1, delete_fraction=0)
        split = 300
        first, second = run[:split], run[split:]
        other = make_run(6, 100, 50_000, delete_fraction=0)
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        images = [[build_table_image(first, plain_options, ICMP),
                   build_table_image(second, plain_options, ICMP)],
                  [build_table_image(other, plain_options, ICMP)]]
        result = engine.run_on_images(images)
        oracle = compact([iter(run), iter(other)], plain_options, ICMP)
        assert [o.data for o in result.outputs] == [
            o.data for o in oracle.outputs]

    def test_nine_inputs(self, plain_options):
        runs = [make_run(10 + i, 120, 1000 * i + 1, key_space=100_000)
                for i in range(9)]
        engine = CompactionEngine(CONFIG_9_INPUT, plain_options)
        images = [[build_table_image(r, plain_options, ICMP)] for r in runs]
        result = engine.run_on_images(images, drop_deletions=True)
        oracle = compact([iter(r) for r in runs], plain_options, ICMP,
                         drop_deletions=True)
        assert [o.data for o in result.outputs] == [
            o.data for o in oracle.outputs]

    def test_too_many_inputs_rejected(self, plain_options):
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        runs = [make_run(20 + i, 10, 100 * i + 1) for i in range(3)]
        images = [[build_table_image(r, plain_options, ICMP)] for r in runs]
        with pytest.raises(FpgaResourceError):
            engine.run_on_images(images)

    def test_empty_second_input(self, plain_options):
        run = make_run(30, 100, 1, delete_fraction=0)
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        result = engine.run_on_images(
            [[build_table_image(run, plain_options, ICMP)]])
        assert sum(o.stats.num_entries for o in result.outputs) == len(run)


class TestTiming:
    def test_kernel_time_positive_and_scales(self, plain_options):
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        small = make_run(40, 100, 1, delete_fraction=0)
        large = make_run(41, 800, 1, delete_fraction=0)
        r_small = engine.run_on_images(
            [[build_table_image(small, plain_options, ICMP)]])
        r_large = engine.run_on_images(
            [[build_table_image(large, plain_options, ICMP)]])
        assert 0 < r_small.kernel_seconds < r_large.kernel_seconds

    def test_speed_metric_uses_input_bytes(self, plain_options):
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        run = make_run(42, 400, 1, delete_fraction=0)
        result = engine.run_on_images(
            [[build_table_image(run, plain_options, ICMP)]])
        expected = (result.timing.input_bytes
                    / result.kernel_seconds / 1e6)
        assert result.compaction_speed_mbps == pytest.approx(expected)

    def test_meta_out_key_ranges(self, plain_options):
        engine = CompactionEngine(CONFIG_2_INPUT, plain_options)
        run = make_run(43, 500, 1, delete_fraction=0)
        result = engine.run_on_images(
            [[build_table_image(run, plain_options, ICMP)]])
        assert result.smallest_keys[0] == run[0][0]
        assert result.largest_keys[-1] == run[-1][0]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6),
       st.booleans())
def test_engine_equals_cpu_property(seed, drop_deletions):
    """For random overlapping runs the FPGA output is byte-identical to
    the CPU reference compaction."""
    from repro.lsm.options import Options
    options = Options(block_size=512, sstable_size=4096,
                      compression="none", bloom_bits_per_key=0)
    rng = random.Random(seed)
    runs = [make_run(rng.randrange(10 ** 6), rng.randrange(5, 80),
                     10_000 * (i + 1), key_space=2_000)
            for i in range(rng.randrange(2, 4))]
    engine = CompactionEngine(CONFIG_9_INPUT, options)
    images = [[build_table_image(r, options, ICMP)] for r in runs]
    result = engine.run_on_images(images, drop_deletions=drop_deletions)
    oracle = compact([iter(r) for r in runs], options, ICMP,
                     drop_deletions=drop_deletions)
    assert [o.data for o in result.outputs] == [
        o.data for o in oracle.outputs]
