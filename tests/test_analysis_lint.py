"""Tests for the concurrency-contract analyzer (``repro.analysis``).

Covers the seeded violation corpus (one file per rule, with expected
``file:line`` locations computed from ``VIOLATION`` marker comments),
the clean-tree guarantee on ``src/``, waiver handling, the JSON output
format and comment-based contract construction.
"""

from __future__ import annotations

import ast
import json
import os

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import analyze_file, analyze_paths, main
from repro.analysis.contracts import (
    check_schema_drift,
    journal_event_types,
    metric_family_names,
)
from repro.analysis.findings import extract_comments, to_json
from repro.analysis.guarded import build_contract
from repro.analysis.lockdiscipline import check_lock_discipline

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = os.path.join(REPO, "tests", "analysis_corpus")

METRIC_NAMES = metric_family_names()
EVENT_TYPES = journal_event_types()


def marked_lines(path: str, rule: str) -> list[int]:
    """Line numbers carrying a ``VIOLATION <rule>`` marker comment."""
    lines = []
    with open(path) as handle:
        for lineno, text in enumerate(handle, start=1):
            if f"VIOLATION {rule}" in text:
                lines.append(lineno)
    assert lines, f"no VIOLATION {rule} marker in {path}"
    return lines


CORPUS_CASES = [
    ("corpus_unguarded_locked_call.py", "LD001"),
    ("corpus_guard_escape.py", "LD002"),
    ("corpus_blocking_under_mutex.py", "LD003"),
    ("corpus_unknown_metric.py", "CT001"),
    ("corpus_unknown_event.py", "CT002"),
]


@pytest.mark.parametrize("filename,rule", CORPUS_CASES)
def test_corpus_violation_detected(filename, rule):
    path = os.path.join(CORPUS, filename)
    findings = analyze_file(path, METRIC_NAMES, EVENT_TYPES)
    errors = [f for f in findings if f.severity == "error"]
    assert [f.rule for f in errors] == [rule]
    assert errors[0].line in marked_lines(path, rule)
    assert errors[0].location().startswith(f"{path}:{errors[0].line}:")


def test_corpus_clean_lines_not_flagged():
    """The deliberately-correct twins (``*_ok`` methods, known names)
    in the corpus produce no findings — one error per file, not two."""
    findings = analyze_paths([CORPUS])
    errors = [f for f in findings if f.severity == "error"]
    assert len(errors) == len(CORPUS_CASES)


def test_src_tree_is_clean_under_strict():
    findings = analyze_paths([os.path.join(REPO, "src")], strict=True)
    errors = [f for f in findings
              if f.severity == "error" and not f.waived]
    assert errors == [], "\n".join(f.location() + " " + f.message
                                   for f in errors)


def test_run_analysis_package_entry_matches_cli():
    direct = analyze_paths([CORPUS])
    packaged = run_analysis([CORPUS])
    assert [(f.rule, f.line) for f in direct] == \
        [(f.rule, f.line) for f in packaged]


def test_schema_drift_check_is_quiet():
    assert check_schema_drift() == []


def test_lock_cycle_event_type_known_to_both_sides():
    assert "lock_cycle" in EVENT_TYPES
    assert "lock_long_hold" in EVENT_TYPES


def test_cli_exit_codes_and_json(capsys):
    corpus_file = os.path.join(CORPUS, "corpus_guard_escape.py")
    assert main([corpus_file, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "LD002"
    assert payload[0]["path"] == corpus_file

    clean = os.path.join(REPO, "src", "repro", "analysis", "findings.py")
    assert main([clean]) == 0


def test_waiver_suppresses_finding(tmp_path):
    source = (
        "import threading\n"
        "import time\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mutex = threading.Lock()\n"
        "    def slow(self):\n"
        "        with self._mutex:\n"
        "            time.sleep(1)  # lint: waive[LD003] startup only\n"
    )
    path = tmp_path / "waived.py"
    path.write_text(source)
    findings = analyze_file(str(path), METRIC_NAMES, EVENT_TYPES)
    assert len(findings) == 1
    assert findings[0].rule == "LD003"
    assert findings[0].waived
    assert findings[0].waive_reason == "startup only"
    # a waived finding does not fail the build
    assert main([str(path)]) == 0


def test_strict_rejects_reasonless_waiver(tmp_path):
    source = (
        "import threading\n"
        "import time\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mutex = threading.Lock()\n"
        "    def slow(self):\n"
        "        with self._mutex:\n"
        "            time.sleep(1)  # lint: waive[LD003]\n"
    )
    path = tmp_path / "waived.py"
    path.write_text(source)
    assert main([str(path)]) == 0
    assert main([str(path), "--strict"]) == 1


def test_syntax_error_reported_not_raised(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    findings = analyze_file(str(path), METRIC_NAMES, EVENT_TYPES)
    assert [f.rule for f in findings] == ["XX000"]


def _findings_for(source: str):
    tree = ast.parse(source)
    comments = extract_comments(source)
    return check_lock_discipline("<test>", tree, comments)


def test_comment_contract_guards_reads():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mutex = threading.Lock()\n"
        "        self._table = {}  # guarded_by: _mutex, reads\n"
        "    def peek(self):\n"
        "        return len(self._table)\n"
    )
    findings = _findings_for(source)
    assert any(f.rule == "LD002" and "read" in f.message
               for f in findings)


def test_holds_annotation_satisfies_ld001():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mutex = threading.Lock()\n"
        "    def _bump_locked(self):\n"
        "        pass\n"
        "    def helper(self):  # holds: _mutex\n"
        "        self._bump_locked()\n"
    )
    assert _findings_for(source) == []


def test_condition_aliases_wrapped_mutex():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mutex = threading.Lock()\n"
        "        self._cond = threading.Condition(self._mutex)\n"
        "        self._jobs = []  # guarded_by: _mutex\n"
        "    def push(self, j):\n"
        "        with self._cond:\n"
        "            self._jobs.append(j)\n"
    )
    assert _findings_for(source) == []


def test_init_exempt_from_guard_checks():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mutex = threading.Lock()\n"
        "        self._jobs = []  # guarded_by: _mutex\n"
        "        self._jobs.append(1)\n"
    )
    assert _findings_for(source) == []


def test_build_contract_from_annotations():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._mu = threading.Lock()\n"
        "        self._jobs = []  # guarded_by: _mu\n"
    )
    tree = ast.parse(source)
    classdef = tree.body[1]
    contract = build_contract(classdef, extract_comments(source))
    assert contract.mutex == ("_mu",)
    assert contract.guards["_jobs"] == ("_mu",)
    assert ("_mu",) in contract.lock_paths()


def test_to_json_round_trips():
    findings = analyze_paths([CORPUS])
    decoded = json.loads(to_json(findings))
    assert {entry["rule"] for entry in decoded} == \
        {rule for _name, rule in CORPUS_CASES}
    for entry in decoded:
        assert set(entry) >= {"rule", "path", "line", "col",
                              "message", "severity"}
