"""Disk model: a shared-bandwidth server.

The paper's testbed stores SSTables on a commodity SSD; flushes,
compaction reads and compaction writes all share it.  The model is a
single FIFO bandwidth server — a transfer of ``n`` bytes occupies the
device for ``n / bandwidth (+ seek)`` seconds starting no earlier than
the previous transfer finished — which is enough to make the large-data
experiments I/O-bound the way the paper's Fig 14 plateau implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DiskStats:
    read_bytes: int = 0
    write_bytes: int = 0
    busy_seconds: float = 0.0


@dataclass
class DiskModel:
    """Bandwidth/latency server with virtual-time reservations."""

    read_bandwidth: float = 500e6   # bytes/second
    write_bandwidth: float = 450e6
    seek_seconds: float = 100e-6
    stats: DiskStats = field(default_factory=DiskStats)
    _free_at: float = 0.0

    def read_duration(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.read_bandwidth

    def write_duration(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.write_bandwidth

    def reserve_read(self, now: float, nbytes: int) -> float:
        """Schedule a read starting at or after ``now``; returns finish
        time."""
        duration = self.read_duration(nbytes)
        start = max(now, self._free_at)
        self._free_at = start + duration
        self.stats.read_bytes += nbytes
        self.stats.busy_seconds += duration
        return self._free_at

    def reserve_write(self, now: float, nbytes: int) -> float:
        """Schedule a write starting at or after ``now``; returns finish
        time."""
        duration = self.write_duration(nbytes)
        start = max(now, self._free_at)
        self._free_at = start + duration
        self.stats.write_bytes += nbytes
        self.stats.busy_seconds += duration
        return self._free_at

    @property
    def free_at(self) -> float:
        return self._free_at
