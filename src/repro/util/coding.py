"""Fixed-width little-endian integer coding and length-prefixed slices.

These match the corresponding helpers in LevelDB's ``util/coding.h`` so the
SSTable, WAL and manifest formats produced here have the same wire shape.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptionError
from repro.util.varint import decode_varint32, encode_varint32

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")


def encode_fixed32(value: int) -> bytes:
    """Encode an unsigned 32-bit integer, little endian."""
    return _FIXED32.pack(value)


def encode_fixed64(value: int) -> bytes:
    """Encode an unsigned 64-bit integer, little endian."""
    return _FIXED64.pack(value)


def decode_fixed32(buf, offset: int = 0) -> int:
    """Decode an unsigned 32-bit little-endian integer at ``offset``."""
    if len(buf) < offset + 4:
        raise CorruptionError("truncated fixed32")
    return _FIXED32.unpack_from(buf, offset)[0]


def decode_fixed64(buf, offset: int = 0) -> int:
    """Decode an unsigned 64-bit little-endian integer at ``offset``."""
    if len(buf) < offset + 8:
        raise CorruptionError("truncated fixed64")
    return _FIXED64.unpack_from(buf, offset)[0]


def put_length_prefixed_slice(out: bytearray, data: bytes) -> None:
    """Append ``data`` to ``out`` preceded by its varint32 length."""
    out += encode_varint32(len(data))
    out += data


def get_length_prefixed_slice(buf, offset: int = 0) -> tuple[bytes, int]:
    """Read a varint32 length followed by that many bytes.

    Returns ``(slice, next_offset)``.
    """
    length, pos = decode_varint32(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("length-prefixed slice overruns buffer")
    return bytes(buf[pos:end]), end
