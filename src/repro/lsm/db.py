"""The database façade: a single-process LevelDB-workalike.

Write path: WriteBatch → WAL record → memtable; at
``Options.write_buffer_size`` the memtable is dumped to a level-0 SSTable
(the paper's first compaction type).  Merge compactions (the second type —
the one FCAE offloads) run through a pluggable *compaction executor*, so
the same database can be driven by the CPU reference merge or by the FPGA
engine of :mod:`repro.host` without touching the storage format.

Concurrency model: deliberately single-threaded and deterministic.  Real
LevelDB interleaves foreground writes with a background thread; here the
*functional* store runs maintenance inline (``auto_compact=True``) and all
*timing* questions (write stalls, overlap of flush and FPGA kernels) are
answered by the discrete-event simulator in :mod:`repro.sim`, which is the
layer the paper's throughput experiments need.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import DBStateError, NotFoundError
from repro.lsm.batch import WriteBatch
from repro.lsm.cache import LRUCache
from repro.lsm.compaction import (
    OutputTable,
    compact,
    make_compaction_sources,
)
from repro.lsm.env import Env, MemEnv
from repro.lsm.filenames import (
    current_file_name,
    log_file_name,
    manifest_file_name,
    parse_log_number,
    parse_manifest_number,
    parse_table_number,
    table_file_name,
)
from repro.lsm.internal import (
    InternalKeyComparator,
    MAX_SEQUENCE,
    encode_internal_key,
    extract_user_key,
    parse_internal_key,
)
from repro.lsm.iterator import merging_iterator
from repro.lsm.memtable import MemTable
from repro.lsm.options import L0_STOP_TRIGGER, NUM_LEVELS, Options
from repro.lsm.sstable import TableBuilder, TableReader
from repro.lsm.version import (
    CompactionSpec,
    FileMetaData,
    VersionEdit,
    VersionSet,
)
from repro.lsm.wal import LogReader, LogWriter
from repro.util.coding import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)

from repro.obs import merge_counts, resolve_registry, resolve_tracer
from repro.obs.names import LsmMetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_db_report

#: A compaction executor turns (spec, input tables, parent tables,
#: drop_deletions) into output table images.  ``repro.host`` provides the
#: FPGA-backed implementation.
CompactionExecutor = Callable[
    [CompactionSpec, list, list, bool], list[OutputTable]]


class DbStats:
    """Operational counters, in the spirit of LevelDB's
    ``GetProperty("leveldb.stats")``.

    A read-only view over the database's metrics registry (the registry
    is the single source of truth; this class keeps the historical
    attribute names).  Counter fields resolve via ``__getattr__`` from
    :data:`FIELDS`, so exposition code can iterate :meth:`as_dict`
    instead of hand-copying field lists.
    """

    #: Counter fields, in reporting order.
    FIELDS = ("writes", "write_bytes", "reads", "read_hits", "flushes",
              "flush_bytes", "compactions", "compaction_input_bytes",
              "compaction_output_bytes", "stalls", "block_cache_hits",
              "block_cache_misses")

    def __init__(self, metrics: LsmMetrics):
        self._metrics = metrics

    def __getattr__(self, name: str):
        if name in DbStats.FIELDS:
            return int(self._metrics.value(name))
        raise AttributeError(name)

    @property
    def write_amplification(self) -> float:
        """(flushed + compacted) bytes per user byte written."""
        if self.write_bytes == 0:
            return 0.0
        return ((self.flush_bytes + self.compaction_output_bytes)
                / self.write_bytes)

    @property
    def block_cache_hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        """Counter fields as a plain dict, in :data:`FIELDS` order."""
        return {field: getattr(self, field) for field in DbStats.FIELDS}

    @staticmethod
    def merge(*stats: "DbStats | dict") -> dict[str, int]:
        """Field-wise sum across databases (shard aggregation)."""
        return merge_counts(
            s if isinstance(s, dict) else s.as_dict() for s in stats)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"DbStats({inner})"


class LsmDB:
    """Open a directory (real or in-memory) as an LSM key-value store.

    Parameters
    ----------
    dbname:
        Directory for the store's files.
    options:
        Tuning knobs; defaults follow the paper's Table IV.
    env:
        Filesystem; defaults to an in-memory one.
    compaction_executor:
        Override how merge compactions execute (CPU reference by default).
    auto_compact:
        Run flushes/compactions inline when thresholds trip.  Disable for
        manual control in tests and offload demos.
    metrics:
        A :class:`repro.obs.MetricsRegistry` to publish into; defaults to
        the process-wide registry installed by :func:`repro.obs.install`
        (benchmark CLIs), else a private one.
    tracer:
        A :class:`repro.obs.Tracer` for flush/compaction spans; defaults
        to the installed tracer, else a no-op.
    """

    def __init__(self, dbname: str = "db", options: Optional[Options] = None,
                 env: Optional[Env] = None,
                 compaction_executor: Optional[CompactionExecutor] = None,
                 auto_compact: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None):
        self.options = options or Options()
        self.env = env or MemEnv()
        self.dbname = dbname
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        self._m = LsmMetrics(self.metrics, db=dbname,
                             inst=self.metrics.instance_label())
        self._c = self._m.counters
        self.icmp = InternalKeyComparator(self.options.comparator)
        self.versions = VersionSet(self.options, self.icmp)
        self.block_cache = (
            LRUCache(self.options.block_cache_capacity,
                     hit_counter=self._c["block_cache_hits"],
                     miss_counter=self._c["block_cache_misses"],
                     usage_gauge=self._m.cache_usage)
            if self.options.block_cache_capacity > 0 else None)
        self._executor = compaction_executor or self._cpu_executor
        self.auto_compact = auto_compact
        self._mem = MemTable(self.icmp)
        self._imm: Optional[MemTable] = None
        self._readers: dict[int, TableReader] = {}
        self._closed = False
        self._log: Optional[LogWriter] = None
        self._log_file = None
        self._log_number = 0
        self.stall_events = 0
        self.stats = DbStats(self._m)

        self.env.create_dir(dbname)
        self._recover()
        self._new_log()

    # ------------------------------------------------------------------
    # Recovery & manifest
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        current = current_file_name(self.dbname)
        if self.env.file_exists(current):
            manifest_name = self.env.read_file(current).decode().strip()
            self._replay_manifest(manifest_name)
        self._replay_logs()

    def _replay_manifest(self, manifest_name: str) -> None:
        data = self.env.read_file(manifest_name)
        snapshot: Optional[bytes] = None
        for record in LogReader(data):
            snapshot = record  # last full snapshot wins
        if snapshot is None:
            return
        last_sequence = decode_fixed64(snapshot, 0)
        next_file = decode_fixed64(snapshot, 8)
        pos = 16
        edit = VersionEdit()
        num_levels = decode_fixed32(snapshot, pos)
        pos += 4
        for level in range(num_levels):
            count = decode_fixed32(snapshot, pos)
            pos += 4
            for _ in range(count):
                number = decode_fixed64(snapshot, pos)
                size = decode_fixed64(snapshot, pos + 8)
                pos += 16
                smallest, pos = get_length_prefixed_slice(snapshot, pos)
                largest, pos = get_length_prefixed_slice(snapshot, pos)
                edit.add_file(level, FileMetaData(number, size, smallest, largest))
        self.versions.apply(edit)
        self.versions.last_sequence = last_sequence
        self.versions.reuse_file_number(next_file - 1)
        for level in range(NUM_LEVELS):
            for meta in self.versions.current.files[level]:
                self._open_reader(meta)

    def _replay_logs(self) -> None:
        log_numbers = sorted(
            number for name in self.env.list_dir(self.dbname)
            if (number := parse_log_number(name)) is not None)
        for number in log_numbers:
            data = self.env.read_file(log_file_name(self.dbname, number))
            for record in LogReader(data):
                sequence, batch = WriteBatch.deserialize(record)
                next_seq = batch.apply_to_memtable(self._mem, sequence)
                self.versions.last_sequence = max(
                    self.versions.last_sequence, next_seq - 1)
            self.versions.reuse_file_number(number)
            if (self._mem.approximate_memory_usage
                    >= self.options.write_buffer_size):
                self._flush_memtable()
        if len(self._mem):
            # Like LevelDB's RecoverLogFile: recovered writes go straight
            # to a level-0 table so retiring the old WAL cannot lose them.
            self._flush_memtable()
        for number in log_numbers:
            if self.env.file_exists(log_file_name(self.dbname, number)):
                self.env.delete_file(log_file_name(self.dbname, number))

    def _write_manifest(self) -> None:
        snapshot = bytearray()
        snapshot += encode_fixed64(self.versions.last_sequence)
        snapshot += encode_fixed64(self.versions.next_file_number)
        snapshot += encode_fixed32(NUM_LEVELS)
        for level in range(NUM_LEVELS):
            files = self.versions.current.files[level]
            snapshot += encode_fixed32(len(files))
            for meta in files:
                snapshot += encode_fixed64(meta.number)
                snapshot += encode_fixed64(meta.file_size)
                put_length_prefixed_slice(snapshot, meta.smallest)
                put_length_prefixed_slice(snapshot, meta.largest)
        manifest_number = self.versions.new_file_number()
        manifest_name = manifest_file_name(self.dbname, manifest_number)
        dest = self.env.new_writable_file(manifest_name)
        writer = LogWriter(dest)
        writer.add_record(bytes(snapshot))
        dest.close()
        current = self.env.new_writable_file(current_file_name(self.dbname))
        current.append(manifest_name.encode())
        current.close()
        # Retire older manifests.
        for name in self.env.list_dir(self.dbname):
            number = parse_manifest_number(name)
            if number is not None and number != manifest_number:
                self.env.delete_file(f"{self.dbname}/{name}")

    def _new_log(self) -> None:
        if self._log_file is not None:
            self._log_file.close()
        self._log_number = self.versions.new_file_number()
        self._log_file = self.env.new_writable_file(
            log_file_name(self.dbname, self._log_number))
        self._log = LogWriter(self._log_file)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise DBStateError("database is closed")

    def put(self, key: bytes, value: bytes) -> None:
        batch = WriteBatch()
        batch.put(key, value)
        self.write(batch)

    def delete(self, key: bytes) -> None:
        batch = WriteBatch()
        batch.delete(key)
        self.write(batch)

    def write(self, batch: WriteBatch) -> None:
        """Commit a batch: WAL append, then memtable insert."""
        self._check_open()
        if not len(batch):
            return
        sequence = self.versions.last_sequence + 1
        self._c["writes"].inc(len(batch))
        self._c["write_bytes"].inc(batch.byte_size())
        self._log.add_record(batch.serialize(sequence))
        next_seq = batch.apply_to_memtable(self._mem, sequence)
        self.versions.last_sequence = next_seq - 1
        if self.auto_compact:
            self._maybe_maintain()

    def _maybe_maintain(self) -> None:
        if (self._mem.approximate_memory_usage
                >= self.options.write_buffer_size):
            if self.versions.current.num_files(0) >= L0_STOP_TRIGGER:
                # Real LevelDB blocks the writer here; inline we count the
                # event and compact before proceeding.
                self.stall_events += 1
                self._c["stalls"].inc()
                self.compact_once()
            self._flush_memtable()
        while self.versions.needs_compaction():
            if not self.compact_once():
                break

    def flush(self) -> None:
        """Force the active memtable to a level-0 SSTable."""
        self._check_open()
        if len(self._mem):
            self._flush_memtable()

    def _flush_memtable(self) -> None:
        if not len(self._mem):
            return
        with self.tracer.span("flush", db=self.dbname) as span:
            self._imm = self._mem
            self._mem = MemTable(self.icmp)
            number = self.versions.new_file_number()
            name = table_file_name(self.dbname, number)
            dest = self.env.new_writable_file(name)
            builder = TableBuilder(self.options, dest, self.icmp)
            for internal_key, value in self._imm:
                builder.add(internal_key, value)
            stats = builder.finish()
            dest.close()
            self._c["flushes"].inc()
            self._c["flush_bytes"].inc(stats.file_bytes)
            span.set(table=number, bytes=stats.file_bytes)
            meta = FileMetaData(number, stats.file_bytes,
                                builder.smallest_key, builder.largest_key)
            edit = VersionEdit()
            edit.add_file(0, meta)
            self.versions.apply(edit)
            self._open_reader(meta)
            self._imm = None
            self._write_manifest()
            self._new_log()
            # Retire WAL segments older than the new one.
            for name in list(self.env.list_dir(self.dbname)):
                log_num = parse_log_number(name)
                if log_num is not None and log_num < self._log_number:
                    self.env.delete_file(f"{self.dbname}/{name}")
            self._refresh_level_gauges()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _open_reader(self, meta: FileMetaData) -> TableReader:
        if meta.number not in self._readers:
            data = self.env.read_file(table_file_name(self.dbname, meta.number))
            self._readers[meta.number] = TableReader(
                data, self.icmp, self.options, self.block_cache, meta.number)
        return self._readers[meta.number]

    def _cpu_executor(self, spec: CompactionSpec, input_tables: list,
                      parent_tables: list,
                      drop_deletions: bool) -> list[OutputTable]:
        sources = make_compaction_sources(spec.level, input_tables,
                                          parent_tables)
        stats = compact(sources, self.options, self.icmp, drop_deletions)
        return stats.outputs

    def compact_once(self) -> bool:
        """Pick and execute one merge compaction; returns False when no
        compaction is due."""
        self._check_open()
        with self.tracer.span("compaction.pick", db=self.dbname) as span:
            spec = self.versions.pick_compaction()
            span.set(picked=spec is not None)
        if spec is None:
            return False
        self.run_compaction(spec)
        return True

    def run_compaction(self, spec: CompactionSpec) -> list[FileMetaData]:
        """Execute ``spec`` through the configured executor and install
        the result."""
        with self.tracer.span("compaction", db=self.dbname,
                              level=spec.level,
                              output_level=spec.output_level,
                              input_bytes=spec.total_input_bytes) as span:
            return self._run_compaction(spec, span)

    def _run_compaction(self, spec: CompactionSpec,
                        span) -> list[FileMetaData]:
        input_tables = [self._open_reader(m) for m in spec.inputs]
        parent_tables = [self._open_reader(m) for m in spec.parents]
        if spec.level == 0:
            # Newest-first so the merge meets newer versions first (the
            # internal-key order already guarantees it; this keeps the
            # tie-break rule aligned anyway).
            pairs = sorted(zip(spec.inputs, input_tables),
                           key=lambda p: p[0].number, reverse=True)
            input_tables = [t for _, t in pairs]
        drop = self.versions.is_bottommost_level_for(spec)
        outputs = self._executor(spec, input_tables, parent_tables, drop)
        output_bytes = sum(len(o.data) for o in outputs)
        self._c["compactions"].inc()
        self._c["compaction_input_bytes"].inc(spec.total_input_bytes)
        self._c["compaction_output_bytes"].inc(output_bytes)
        span.set(output_bytes=output_bytes, output_tables=len(outputs))
        with self.tracer.span("compaction.install"):
            edit = VersionEdit()
            for meta in spec.inputs:
                edit.delete_file(spec.level, meta.number)
            for meta in spec.parents:
                edit.delete_file(spec.output_level, meta.number)
            new_metas: list[FileMetaData] = []
            for output in outputs:
                number = self.versions.new_file_number()
                name = table_file_name(self.dbname, number)
                dest = self.env.new_writable_file(name)
                dest.append(output.data)
                dest.close()
                meta = FileMetaData(number, len(output.data),
                                    output.smallest, output.largest)
                edit.add_file(spec.output_level, meta)
                new_metas.append(meta)
            self.versions.apply(edit)
            for meta in new_metas:
                self._open_reader(meta)
            for old in spec.inputs + spec.parents:
                self._readers.pop(old.number, None)
                self.env.delete_file(table_file_name(self.dbname, old.number))
            self._write_manifest()
        self._refresh_level_gauges()
        return new_metas

    def compact_range(self) -> None:
        """Compact until no level is over budget (full maintenance)."""
        self.flush()
        while self.versions.needs_compaction():
            if not self.compact_once():
                break

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def snapshot(self) -> "Snapshot":
        """Capture a read view at the current sequence number.

        Later writes (and compactions of *newer* versions) do not affect
        reads through the snapshot.  Note: like LevelDB without an
        explicit snapshot registry, compaction may garbage-collect
        versions older than the newest one — hold snapshots only across
        read-only windows, or disable ``auto_compact``.
        """
        self._check_open()
        return Snapshot(self, self.versions.last_sequence)

    def get(self, key: bytes, snapshot: "Snapshot | None" = None) -> bytes:
        """Return the value of ``key`` (newest, or as of ``snapshot``).

        Raises :class:`NotFoundError` when absent or deleted.
        """
        self._check_open()
        if snapshot is not None:
            snapshot._check_owner(self)
            sequence = snapshot.sequence
        else:
            sequence = self.versions.last_sequence
        return self._get_at(key, sequence)

    def _get_at(self, key: bytes, snapshot: int) -> bytes:
        self._c["reads"].inc()
        try:
            value = self._mem.get(key, snapshot)
        except NotFoundError:
            raise NotFoundError(key) from None
        if value is not None:
            self._c["read_hits"].inc()
            return value
        if self._imm is not None:
            try:
                value = self._imm.get(key, snapshot)
            except NotFoundError:
                raise NotFoundError(key) from None
            if value is not None:
                self._c["read_hits"].inc()
                return value
        lookup = encode_internal_key(key, snapshot, 0x1)
        for _level, meta in self.versions.current.files_for_key(key):
            reader = self._open_reader(meta)
            if not reader.key_may_match(key):
                continue
            entry = reader.get(lookup)
            if entry is None:
                continue
            internal_key, value = entry
            if extract_user_key(internal_key) != key:
                continue
            parsed = parse_internal_key(internal_key)
            if parsed.is_deletion:
                raise NotFoundError(key)
            self._c["read_hits"].inc()
            return value
        raise NotFoundError(key)

    def scan(self, start: Optional[bytes] = None,
             end: Optional[bytes] = None,
             snapshot: "Snapshot | None" = None
             ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan over live user keys in ``[start, end)``.

        With ``snapshot``, entries newer than the snapshot's sequence are
        invisible.
        """
        self._check_open()
        if snapshot is not None:
            snapshot._check_owner(self)
            visible_sequence = snapshot.sequence
        else:
            visible_sequence = self.versions.last_sequence
        sources = []
        lookup = (encode_internal_key(start, MAX_SEQUENCE, 0x1)
                  if start is not None else None)

        def mem_source(mem: MemTable):
            for internal_key, value in mem:
                if (lookup is not None
                        and self.icmp.compare(internal_key, lookup) < 0):
                    continue
                yield internal_key, value

        sources.append(mem_source(self._mem))
        if self._imm is not None:
            sources.append(mem_source(self._imm))
        for level in range(NUM_LEVELS):
            files = self.versions.current.files[level]
            if level == 0:
                ordered = sorted(files, key=lambda f: f.number, reverse=True)
            else:
                ordered = files
            for meta in ordered:
                reader = self._open_reader(meta)
                if lookup is not None:
                    sources.append(reader.iter_from(lookup))
                else:
                    sources.append(iter(reader))
        user_cmp = self.options.comparator.compare
        last_user: Optional[bytes] = None
        for internal_key, value in merging_iterator(sources, self.icmp.compare):
            user_key = extract_user_key(internal_key)
            if end is not None and user_cmp(user_key, end) >= 0:
                return
            parsed = parse_internal_key(internal_key)
            if parsed.sequence > visible_sequence:
                continue  # newer than the snapshot: invisible
            if last_user is not None and user_cmp(user_key, last_user) == 0:
                continue
            last_user = user_key
            if parsed.is_deletion:
                continue
            yield user_key, value

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------

    def level_file_counts(self) -> list[int]:
        return [self.versions.current.num_files(level)
                for level in range(NUM_LEVELS)]

    def level_sizes(self) -> list[int]:
        return [self.versions.current.level_bytes(level)
                for level in range(NUM_LEVELS)]

    def _refresh_level_gauges(self) -> None:
        """Publish per-level file counts and sizes after shape changes."""
        for level in range(NUM_LEVELS):
            self._m.set_level(level,
                              self.versions.current.num_files(level),
                              self.versions.current.level_bytes(level))

    def property(self, name: str) -> str:
        """LevelDB-style ``GetProperty``.

        Supported names: ``repro.stats`` (the human-readable report),
        ``repro.num-files-at-level<N>``, and
        ``repro.approximate-memory-usage`` (live memtable bytes).
        Raises :class:`NotFoundError` for unknown properties.
        """
        self._check_open()
        if name == "repro.stats":
            return render_db_report(self)
        prefix = "repro.num-files-at-level"
        if name.startswith(prefix):
            try:
                level = int(name[len(prefix):])
            except ValueError:
                raise NotFoundError(name) from None
            if not 0 <= level < NUM_LEVELS:
                raise NotFoundError(name)
            return str(self.versions.current.num_files(level))
        if name == "repro.approximate-memory-usage":
            usage = self._mem.approximate_memory_usage
            if self._imm is not None:
                usage += self._imm.approximate_memory_usage
            return str(usage)
        raise NotFoundError(name)

    def approximate_size(self, start: bytes, end: bytes) -> int:
        """Approximate on-disk bytes occupied by user keys in
        ``[start, end)`` (LevelDB's ``GetApproximateSizes``).

        Counts the file-size share of every table whose range intersects
        the query, scaled by the overlap fraction assuming uniform keys
        within a table.
        """
        self._check_open()
        user_cmp = self.options.comparator.compare
        if user_cmp(start, end) >= 0:
            return 0
        total = 0
        for level in range(NUM_LEVELS):
            for meta in self.versions.current.files[level]:
                file_small, file_large = meta.user_range()
                if (user_cmp(file_large, start) < 0
                        or user_cmp(file_small, end) >= 0):
                    continue
                contained = (user_cmp(start, file_small) <= 0
                             and user_cmp(file_large, end) < 0)
                if contained:
                    total += meta.file_size
                else:
                    # Partial overlap: charge half as a coarse estimate
                    # (LevelDB uses index-block offsets; half-file keeps
                    # the estimate monotone without opening the table).
                    total += meta.file_size // 2
        return total

    def table_reader(self, number: int) -> TableReader:
        """Open reader for file ``number`` (used by the FPGA host layer)."""
        for level in range(NUM_LEVELS):
            for meta in self.versions.current.files[level]:
                if meta.number == number:
                    return self._open_reader(meta)
        raise NotFoundError(f"table {number}")

    def close(self) -> None:
        if self._closed:
            return
        if self._log_file is not None:
            self._log_file.close()
        self._closed = True

    def __enter__(self) -> "LsmDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Snapshot:
    """A consistent read view of one :class:`LsmDB`.

    Carries the sequence number observed at creation; pass it to
    :meth:`LsmDB.get` / :meth:`LsmDB.scan` to read as of that point.
    """

    __slots__ = ("_db", "sequence")

    def __init__(self, db: LsmDB, sequence: int):
        self._db = db
        self.sequence = sequence

    def _check_owner(self, db: LsmDB) -> None:
        if db is not self._db:
            raise DBStateError("snapshot belongs to a different database")

    def __repr__(self) -> str:
        return f"Snapshot(sequence={self.sequence})"
