"""Unit tests for ``tools/check_regression.py`` hardening: a baseline
row missing from the run, duplicate bench names (the name-keyed lookup's
silent last-wins hole), and empty baselines must all fail loudly."""

import importlib.util
import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO_ROOT, "tools", "check_regression.py")

spec = importlib.util.spec_from_file_location("check_regression", TOOL)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def doc(rows, columns=("bench", "p50_us", "p95_us"), name="hotpath",
        scale=1.0):
    return {"schema": 1, "scale": scale,
            "experiments": {name: {"title": name,
                                   "columns": list(columns),
                                   "rows": [list(r) for r in rows]}}}


def perf_drifts(baseline, run, rel_tol=0.25):
    return check_regression.compare_perf(baseline, run, rel_tol, 1e-9)


class TestComparePerf:
    def test_clean_against_itself(self):
        base = doc([["db_write", 10.0, 12.0], ["db_get", 5.0, 6.0]])
        assert perf_drifts(base, base) == []

    def test_missing_bench_fails_with_clear_message(self):
        base = doc([["db_write", 10.0, 12.0], ["db_get", 5.0, 6.0]])
        run = doc([["db_write", 10.0, 12.0]])
        drifts = perf_drifts(base, run)
        assert any("db_get" in d and "missing from run" in d
                   for d in drifts)

    def test_missing_experiment_fails(self):
        base = doc([["db_write", 10.0, 12.0]])
        run = {"schema": 1, "scale": 1.0, "experiments": {}}
        assert any("missing from run" in d for d in perf_drifts(base, run))

    def test_duplicate_run_rows_fail_instead_of_last_wins(self):
        """Two run rows named db_write — the slow one first — must not be
        silently shadowed by the fast duplicate."""
        base = doc([["db_write", 10.0, 12.0]])
        run = doc([["db_write", 99.0, 120.0], ["db_write", 10.0, 12.0]])
        drifts = perf_drifts(base, run)
        assert any("duplicate bench name in run" in d for d in drifts)

    def test_duplicate_baseline_rows_fail(self):
        base = doc([["db_write", 10.0, 12.0], ["db_write", 11.0, 12.0]])
        run = doc([["db_write", 10.0, 12.0]])
        drifts = perf_drifts(base, run)
        assert any("duplicate bench name in baseline" in d for d in drifts)

    def test_empty_baseline_rows_gate_nothing(self):
        base = doc([])
        run = doc([["db_write", 10.0, 12.0]])
        drifts = perf_drifts(base, run)
        assert any("gates nothing" in d for d in drifts)

    def test_empty_baseline_experiments_gate_nothing(self):
        base = {"schema": 1, "scale": 1.0, "experiments": {}}
        run = doc([["db_write", 10.0, 12.0]])
        drifts = perf_drifts(base, run)
        assert any("gates nothing" in d for d in drifts)

    def test_slower_run_fails_faster_passes(self):
        base = doc([["db_write", 10.0, 12.0]])
        slower = doc([["db_write", 20.0, 24.0]])
        faster = doc([["db_write", 1.0, 2.0]])
        assert any("slower than" in d for d in perf_drifts(base, slower))
        assert perf_drifts(base, faster) == []


class TestCompare:
    def test_empty_baseline_gates_nothing(self):
        base = {"schema": 1, "scale": 1.0, "experiments": {}}
        run = doc([["db_write", 10.0, 12.0]])
        drifts = check_regression.compare(base, run, 0.05, 1e-9)
        assert any("gates nothing" in d for d in drifts)

    def test_empty_rows_gate_nothing(self):
        base = doc([])
        drifts = check_regression.compare(base, base, 0.05, 1e-9)
        assert any("gates nothing" in d for d in drifts)

    def test_row_count_mismatch_fails(self):
        base = doc([["db_write", 10.0, 12.0], ["db_get", 5.0, 6.0]])
        run = doc([["db_write", 10.0, 12.0]])
        drifts = check_regression.compare(base, run, 0.05, 1e-9)
        assert any("baseline rows" in d for d in drifts)


class TestCliExitCodes:
    def run_tool(self, *args):
        return subprocess.run([sys.executable, TOOL, *args],
                              capture_output=True, text=True)

    @pytest.fixture()
    def paths(self, tmp_path):
        base = doc([["db_write", 10.0, 12.0], ["db_get", 5.0, 6.0]])
        run = doc([["db_write", 10.0, 12.0]])
        base_path = tmp_path / "base.json"
        run_path = tmp_path / "run.json"
        base_path.write_text(json.dumps(base))
        run_path.write_text(json.dumps(run))
        return str(base_path), str(run_path)

    def test_missing_row_exits_nonzero_with_message(self, paths):
        base_path, run_path = paths
        proc = self.run_tool("--perf", "--baseline", base_path,
                             "--run", run_path)
        assert proc.returncode == 1
        assert "db_get" in proc.stderr and "missing from run" in proc.stderr

    def test_self_diff_clean(self, paths):
        base_path, _ = paths
        proc = self.run_tool("--perf", "--baseline", base_path,
                             "--run", base_path)
        assert proc.returncode == 0, proc.stderr
