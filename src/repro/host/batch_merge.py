"""LUDA-style batched merge backend (the ``batch`` accelerator).

Where the FPGA pipeline streams pairs through fixed-function decode /
compare / encode stages, LUDA (arXiv 2004.03054) batches: decode *all*
input entries into contiguous arrays, compute the merge order and the
validity of every entry at once with data-parallel primitives, then bulk
re-encode the survivors.  This module is that engine on numpy:

1. **Bulk decode** — walk each input table's index block, checksum every
   data block in one :func:`repro.util.crc32c.crc32c_many` call, and
   materialize (internal key, value) lists per the normal block codec.
2. **Vectorized merge** — pad the user keys into one ``(n, W)`` byte
   matrix viewed as big-endian u64 columns; ``np.lexsort`` over (key
   columns, key length, inverted trailer) yields exactly the internal-key
   order.  Shadowed entries are consecutive rows with equal user keys;
   tombstones are rows whose trailer type byte is ``TYPE_DELETION`` —
   both reduce to boolean masks (LUDA's validity check).
3. **Bulk encode** — replay the survivors through the standard
   :class:`~repro.lsm.sstable.TableBuilder` cut rules with the block
   trailer CRCs deferred, then batch-fill every CRC at the end (block
   offsets never depend on checksum values).

The output is byte-identical to :func:`repro.lsm.compaction.compact`
over the same tables — the equality suite in ``tests/test_accelerator.py``
holds this across compression, bloom filters and value sizes.

Without numpy (the same optional-dependency idiom as
``repro.util.crc32c``), or for workloads the vectorized path cannot
express (non-bytewise comparators, snapshot-preserving merges), the
engine degrades to a pure-Python *chunked* pipeline: blocks are decoded
into bounded batches of ``Options.batch_merge_chunk`` entries per input
stream and merged through the ordinary streaming validity check —
byte-identical by construction, scalar speed.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CorruptionError
from repro.lsm.block import Block
from repro.lsm.compaction import (
    CompactionStats,
    OutputTable,
    _BufferFile,
    merge_entries,
)
from repro.lsm.internal import (
    InternalKeyComparator,
    MARK_FIELDS_SIZE,
    TYPE_DELETION,
)
from repro.lsm.options import Options
from repro.lsm.sstable import (
    BLOCK_TRAILER_SIZE,
    COMPRESSION_NONE,
    COMPRESSION_SNAPPY,
    BlockHandle,
    TableBuilder,
    _read_block,
)
from repro.compress import snappy
from repro.util.coding import decode_fixed32, encode_fixed32
from repro.util.crc32c import crc32c_many, mask_crc, unmask_crc

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None


class _DeferredCrcTableBuilder(TableBuilder):
    """A :class:`TableBuilder` that writes zeroed block-trailer CRCs.

    Every other byte of the image — compression decision, handles,
    separators, footer — is produced by the inherited logic, so the
    final image is byte-identical to the standard builder's once
    :func:`fill_deferred_crcs` patches the checksums in.
    """

    def __init__(self, options: Options, dest: _BufferFile,
                 comparator) -> None:
        super().__init__(options, dest, comparator)
        #: (payload offset, payload length including the type byte)
        self.deferred_crcs: list[tuple[int, int]] = []
        self._crc_dest = dest

    def _write_block(self, contents: bytes) -> BlockHandle:
        if self._options.compression == "snappy":
            compressed = snappy.compress(contents)
            if len(compressed) < len(contents) - len(contents) // 8:
                payload, block_type = compressed, COMPRESSION_SNAPPY
            else:
                payload, block_type = contents, COMPRESSION_NONE
        else:
            payload, block_type = contents, COMPRESSION_NONE
        handle = BlockHandle(self._offset, len(payload))
        self._dest.append(payload)
        self._dest.append(bytes((block_type,)))
        self._dest.append(b"\x00\x00\x00\x00")
        self.deferred_crcs.append((handle.offset, len(payload) + 1))
        self._offset += len(payload) + BLOCK_TRAILER_SIZE
        return handle


def fill_deferred_crcs(builders: list[_DeferredCrcTableBuilder]) -> None:
    """Batch-compute and patch every deferred trailer CRC."""
    regions = []
    for builder in builders:
        view = memoryview(builder._crc_dest.data)
        regions.extend(view[offset:offset + length]
                       for offset, length in builder.deferred_crcs)
    crcs = crc32c_many(regions)
    del regions  # release memoryviews before mutating the bytearrays
    pos = 0
    for builder in builders:
        data = builder._crc_dest.data
        for offset, length in builder.deferred_crcs:
            data[offset + length:offset + length + 4] = encode_fixed32(
                mask_crc(crcs[pos]))
            pos += 1


class BatchMergeEngine:
    """Merge-compaction executor over whole-input arrays.

    ``streams`` follows :meth:`repro.host.device.FcaeDevice.compact`'s
    convention: a list of input streams, each a list of TableReaders
    whose concatenation is sorted.  The vectorized path ignores the
    stream structure entirely — a global sort does not care which run a
    row came from.
    """

    def __init__(self, options: Options,
                 comparator: InternalKeyComparator,
                 force_fallback: bool = False):
        self.options = options
        self.comparator = comparator
        self.force_fallback = force_fallback

    @property
    def vectorized(self) -> bool:
        """True when compactions will take the numpy path."""
        return (_np is not None and not self.force_fallback
                and getattr(self.comparator, "_bytewise", False))

    def compact(self, streams: list[list], drop_deletions: bool,
                smallest_snapshot: Optional[int] = None) -> CompactionStats:
        tables = [t for stream in streams for t in stream]
        if self.vectorized and smallest_snapshot is None:
            return self._compact_vectorized(tables, drop_deletions)
        return self._compact_fallback(streams, drop_deletions,
                                      smallest_snapshot)

    # ------------------------------------------------------------------
    # Vectorized path
    # ------------------------------------------------------------------

    def _compact_vectorized(self, tables: list,
                            drop_deletions: bool) -> CompactionStats:
        keys, values = self._bulk_decode(tables)
        stats = CompactionStats()
        n = len(keys)
        if n == 0:
            return stats
        survivors, dropped_shadowed, dropped_tombstones = _merge_order(
            keys, drop_deletions)
        stats.input_pairs = n
        stats.dropped_shadowed = dropped_shadowed
        stats.dropped_tombstones = dropped_tombstones
        stats.output_pairs = len(survivors)
        stats.input_bytes = sum(map(len, keys)) + sum(map(len, values))
        stats.outputs = self._bulk_encode(keys, values, survivors)
        stats.output_bytes = sum(
            len(keys[i]) + len(values[i]) for i in survivors)
        return stats

    def _bulk_decode(self, tables: list) -> tuple[list, list]:
        """Decode every entry of every table; checksums are verified for
        all blocks in one batched CRC pass."""
        contents: list = []
        pending_crc: list = []  # (region, stored crc)
        for table in tables:
            data = table.image
            view = memoryview(data)
            for _, handle in table.index_entries():
                end = handle.offset + handle.size + BLOCK_TRAILER_SIZE
                if end > len(data):
                    raise CorruptionError("block handle overruns file")
                if self.options.paranoid_checks:
                    stored = unmask_crc(decode_fixed32(
                        data, handle.offset + handle.size + 1))
                    pending_crc.append((view[
                        handle.offset:handle.offset + handle.size + 1],
                        stored))
                block_type = data[handle.offset + handle.size]
                payload = data[handle.offset:handle.offset + handle.size]
                if block_type == COMPRESSION_NONE:
                    contents.append(payload)
                elif block_type == COMPRESSION_SNAPPY:
                    contents.append(snappy.decompress(payload))
                else:
                    raise CorruptionError(
                        f"unknown block compression type {block_type}")
        if pending_crc:
            checked = crc32c_many([region for region, _ in pending_crc])
            for computed, (_, stored) in zip(checked, pending_crc):
                if computed != stored:
                    raise CorruptionError("block checksum mismatch")
        keys: list = []
        values: list = []
        for image in contents:
            for key, value in Block(image):
                keys.append(key)
                values.append(value)
        return keys, values

    def _bulk_encode(self, keys: list, values: list,
                     survivors) -> list[OutputTable]:
        """Re-encode survivors with deferred, batch-filled block CRCs."""
        options, comparator = self.options, self.comparator
        sstable_size = options.sstable_size
        outputs: list[OutputTable] = []
        finished: list[_DeferredCrcTableBuilder] = []
        dest: Optional[_BufferFile] = None
        builder: Optional[_DeferredCrcTableBuilder] = None

        def finish_current() -> None:
            nonlocal dest, builder
            if builder is None or builder.smallest_key is None:
                dest, builder = None, None
                return
            table_stats = builder.finish()
            outputs.append(OutputTable(
                data=dest,  # placeholder: bytes taken after CRC fill
                smallest=builder.smallest_key,
                largest=builder.largest_key,
                stats=table_stats,
            ))
            finished.append(builder)
            dest, builder = None, None

        for i in survivors:
            if builder is None:
                dest = _BufferFile()
                builder = _DeferredCrcTableBuilder(options, dest, comparator)
            builder.add(keys[i], values[i])
            if builder.file_size >= sstable_size:
                finish_current()
        finish_current()
        fill_deferred_crcs(finished)
        for output in outputs:
            output.data = bytes(output.data.data)
        return outputs

    # ------------------------------------------------------------------
    # Pure-Python chunked fallback
    # ------------------------------------------------------------------

    def _compact_fallback(self, streams: list[list], drop_deletions: bool,
                          smallest_snapshot: Optional[int]
                          ) -> CompactionStats:
        chunk = self.options.batch_merge_chunk
        sources = [self._chunked_stream(stream, chunk)
                   for stream in streams if stream]
        stats = CompactionStats()
        survivors = merge_entries(sources, self.comparator, drop_deletions,
                                  stats, smallest_snapshot=smallest_snapshot)
        stats.outputs = self._build_outputs_deferred(survivors)
        return stats

    def _chunked_stream(self, tables: list, chunk: int) -> Iterator:
        """Bulk-decode a concatenated run, ``chunk`` entries at a time."""
        batch: list = []
        for table in tables:
            data = table.image
            for _, handle in table.index_entries():
                contents = _read_block(data, handle,
                                       self.options.paranoid_checks)
                batch.extend(Block(contents))
                if len(batch) >= chunk:
                    yield from batch
                    batch.clear()
        yield from batch

    def _build_outputs_deferred(self, entries) -> list[OutputTable]:
        """The fallback encoder: same deferred-CRC builder, fed from the
        streaming survivor iterator."""
        survivors: list[int] = []
        keys: list = []
        values: list = []
        for key, value in entries:
            survivors.append(len(keys))
            keys.append(key)
            values.append(value)
        return self._bulk_encode(keys, values, survivors)


def _merge_order(keys: list, drop_deletions: bool):
    """Vectorized merge order + validity masks over internal keys.

    Returns (survivor indices into ``keys`` in output order, shadowed
    count, dropped-tombstone count).
    """
    n = len(keys)
    lens = _np.fromiter(map(len, keys), dtype=_np.int64, count=n)
    if int(lens.min()) < MARK_FIELDS_SIZE:
        raise CorruptionError("internal key shorter than mark fields")
    ulens = lens - MARK_FIELDS_SIZE
    flat = _np.frombuffer(b"".join(keys), dtype=_np.uint8)
    starts = _np.zeros(n, dtype=_np.int64)
    starts[1:] = _np.cumsum(lens)[:-1]

    # User keys, right-zero-padded into big-endian u64 columns: the
    # column-major compare order equals bytewise order, with equal-prefix
    # ties broken by key length (a proper prefix sorts first).
    maxw = int(ulens.max())
    width = maxw + (-maxw) % 8
    mat = _np.zeros((n, width), dtype=_np.uint8)
    col = _np.arange(maxw)
    umask = col[None, :] < ulens[:, None]
    idx = starts[:, None] + col[None, :]
    mat[:, :maxw][umask] = flat[idx[umask]]
    ucols = mat.view(">u8")

    # Trailer = fixed64 LE (sequence << 8 | type) at each key's end.
    tr_idx = (starts + ulens)[:, None] + _np.arange(8)[None, :]
    powers = _np.uint64(1) << (_np.uint64(8)
                               * _np.arange(8, dtype=_np.uint64))
    trailer = flat[tr_idx].astype(_np.uint64) @ powers

    # Internal-key order: user key asc, then sequence/type desc.
    sort_keys = [_np.iinfo(_np.uint64).max - trailer, ulens]
    sort_keys += [ucols[:, j] for j in range(ucols.shape[1] - 1, -1, -1)]
    order = _np.lexsort(tuple(sort_keys))

    s_cols = ucols[order]
    s_ulen = ulens[order]
    shadowed = _np.zeros(n, dtype=bool)
    if n > 1:
        shadowed[1:] = ((s_cols[1:] == s_cols[:-1]).all(axis=1)
                        & (s_ulen[1:] == s_ulen[:-1]))
    keep = ~shadowed
    dropped_tombstones = 0
    if drop_deletions:
        is_deletion = (trailer[order] & _np.uint64(0xFF)) == TYPE_DELETION
        dropped_tombstones = int((keep & is_deletion).sum())
        keep &= ~is_deletion
    return (order[keep], int(shadowed.sum()), dropped_tombstones)
