"""Off-chip DRAM model for the FPGA card.

The KCU1500 carries 16 GB of DDR4.  What matters for the engine's timing
(paper §V-B1) is that a DRAM read costs 7-8 cycles of request latency
versus 1 cycle for on-chip memory, so the design issues *few large* reads
(whole data blocks) streamed at the AXI width rather than many small ones.
This model provides a flat byte-addressable space with read/write request
accounting; the pipeline simulator turns the counters into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FpgaProtocolError


@dataclass
class DramStats:
    """Traffic counters."""

    read_requests: int = 0
    read_bytes: int = 0
    write_requests: int = 0
    write_bytes: int = 0


class Dram:
    """Byte-addressable device memory with bounds checking."""

    def __init__(self, size: int = 16 * 1024 * 1024 * 1024,
                 materialize: bool = False):
        # A sparse region map avoids allocating 16 GB; `materialize`
        # forces a flat bytearray for small test memories.
        self.size = size
        self.stats = DramStats()
        self._flat: bytearray | None = bytearray(size) if materialize else None
        self._regions: dict[int, bytearray] = {}

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise FpgaProtocolError(
                f"DRAM access [{offset}, {offset + length}) outside "
                f"device memory of {self.size} bytes")

    def write(self, offset: int, data: bytes) -> None:
        """DMA or engine write of ``data`` at ``offset``."""
        self._check(offset, len(data))
        self.stats.write_requests += 1
        self.stats.write_bytes += len(data)
        if self._flat is not None:
            self._flat[offset:offset + len(data)] = data
        else:
            self._regions[offset] = bytearray(data)

    def read(self, offset: int, length: int) -> bytes:
        """Engine or DMA read; returns exactly ``length`` bytes."""
        self._check(offset, length)
        self.stats.read_requests += 1
        self.stats.read_bytes += length
        if self._flat is not None:
            return bytes(self._flat[offset:offset + length])
        return self._read_sparse(offset, length)

    def _read_sparse(self, offset: int, length: int) -> bytes:
        out = bytearray(length)
        end = offset + length
        for region_start, region in self._regions.items():
            region_end = region_start + len(region)
            lo = max(offset, region_start)
            hi = min(end, region_end)
            if lo < hi:
                out[lo - offset:hi - offset] = region[lo - region_start:
                                                      hi - region_start]
        return bytes(out)

    def reset_stats(self) -> None:
        self.stats = DramStats()
