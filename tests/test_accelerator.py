"""Accelerator backends: cross-backend byte-identity, bulk-codec
round-trips, cost-model routing and fault-forced failover.

The core contract under test: every backend (streaming CPU merge,
pipeline-sim device, LUDA-style batched merge — vectorized *and*
pure-python fallback) produces **byte-identical** output SSTables for
the same inputs, so routing and fault failover are pure performance
decisions that never change the key space.
"""

import dataclasses
import functools
import random

import pytest

from hypothesis import given, settings, strategies as st

import repro.host.batch_merge as batch_merge
from repro.fpga.config import CONFIG_2_INPUT, CONFIG_9_INPUT
from repro.host.accelerator import AcceleratorBackend, BackendResult
from repro.host.batch_merge import BatchMergeEngine
from repro.host.device import FcaeDevice
from repro.host.faults import FaultInjector
from repro.host.scheduler import CompactionScheduler
from repro.lsm.compaction import _BufferFile, compact, table_sources
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder, TableReader
from repro.lsm.version import CompactionSpec, FileMetaData
from repro.obs.events import EventJournal
from repro.util.comparator import BytewiseComparator

ICMP = InternalKeyComparator(BytewiseComparator())

BACKEND_NAMES = ("cpu", "fpga-sim", "batch")


def small_options(**overrides) -> Options:
    base = dict(compression="none", bloom_bits_per_key=0,
                sstable_size=32 * 1024, value_length=64)
    base.update(overrides)
    return Options(**base)


@pytest.fixture(params=[False, True], ids=["numpy", "fallback"])
def forced_fallback(request, monkeypatch):
    """Run the batch engine on both codepaths: vectorized (when numpy is
    importable) and the chunked pure-python fallback."""
    if request.param:
        monkeypatch.setattr(batch_merge, "_np", None)
    elif batch_merge._np is None:
        pytest.skip("numpy not installed; only the fallback path exists")
    return request.param


def build_table(entries, options) -> bytes:
    dest = _BufferFile()
    builder = TableBuilder(options, dest, ICMP)
    for key, value in entries:
        builder.add(key, value)
    builder.finish()
    return bytes(dest.data)


def overlapping_l0_tables(options, num_tables=3, per_table=120,
                          seed=7) -> list[bytes]:
    """Overlapping runs with shadowed versions and tombstones."""
    rng = random.Random(seed)
    universe = rng.sample(range(100_000), per_table * 2)
    images = []
    sequence = 1
    for _ in range(num_tables):
        picks = sorted(rng.sample(universe, per_table))
        entries = []
        for k in picks:
            kind = TYPE_DELETION if rng.random() < 0.1 else TYPE_VALUE
            value = (b"" if kind == TYPE_DELETION
                     else f"val-{k:08d}".encode().ljust(64, b"."))
            entries.append((encode_internal_key(f"{k:08d}".encode(),
                                                sequence, kind), value))
            sequence += 1
        images.append(build_table(entries, options))
    return images


def spec_for(images, readers, level=0) -> CompactionSpec:
    files = []
    for number, (image, reader) in enumerate(zip(images, readers)):
        entries = list(reader)
        files.append(FileMetaData(number=number, file_size=len(image),
                                  smallest=entries[0][0],
                                  largest=entries[-1][0]))
    return CompactionSpec(level=level, inputs=files, parents=[])


def output_bytes(outputs) -> list[bytes]:
    return [bytes(table.data) for table in outputs]


class TestCrossBackendEquality:
    """All three backends splice byte-identical output tables."""

    @pytest.mark.parametrize("compression,bloom", [("none", 0),
                                                   ("snappy", 10)])
    def test_backends_byte_identical(self, forced_fallback, compression,
                                     bloom):
        options = small_options(compression=compression,
                                bloom_bits_per_key=bloom)
        images = overlapping_l0_tables(options)
        outputs = {}
        for name in BACKEND_NAMES:
            readers = [TableReader(img, ICMP, options) for img in images]
            spec = spec_for(images, readers)
            run_options = dataclasses.replace(options, accelerator=name)
            device = FcaeDevice(CONFIG_9_INPUT, run_options)
            scheduler = CompactionScheduler(device, run_options)
            outputs[name] = output_bytes(
                scheduler(spec, readers, [], drop_deletions=True))
            assert scheduler.last_route() == name
            assert scheduler.stats.backend_tasks[name] == 1
        assert outputs["cpu"] == outputs["fpga-sim"] == outputs["batch"]
        assert outputs["cpu"]  # non-empty

    def test_batch_engine_matches_compact_with_parents(
            self, forced_fallback):
        options = small_options()
        images = overlapping_l0_tables(options, num_tables=2)
        parent = build_table(
            [(encode_internal_key(f"{k:08d}".encode(), 1, TYPE_VALUE),
              b"old" * 8) for k in range(0, 100_000, 500)], options)

        readers = [TableReader(img, ICMP, options) for img in images]
        parent_reader = TableReader(parent, ICMP, options)
        reference = compact(
            table_sources(readers + [parent_reader]), options, ICMP,
            drop_deletions=False)

        readers = [TableReader(img, ICMP, options) for img in images]
        engine = BatchMergeEngine(options, ICMP)
        got = engine.compact(
            [[r] for r in readers] + [[TableReader(parent, ICMP,
                                                   options)]],
            drop_deletions=False)
        assert output_bytes(got.outputs) == output_bytes(
            reference.outputs)
        assert got.input_pairs == reference.input_pairs
        assert got.dropped_shadowed == reference.dropped_shadowed


class TestBulkCodecRoundTrip:
    """Hypothesis: the batch engine's bulk decode → merge-order → bulk
    re-encode agrees with the streaming merge on arbitrary entry sets."""

    @staticmethod
    def _entry_lists():
        key = st.binary(min_size=1, max_size=24)
        value = st.binary(min_size=0, max_size=80)
        return st.lists(st.tuples(key, value,
                                  st.sampled_from([TYPE_VALUE,
                                                   TYPE_DELETION])),
                        min_size=1, max_size=60)

    @settings(max_examples=30, deadline=None)
    @given(raw_a=_entry_lists.__func__(), raw_b=_entry_lists.__func__(),
           drop=st.booleans())
    def test_two_stream_merge_round_trip(self, raw_a, raw_b, drop):
        options = small_options()
        sequence = 1
        images = []
        for raw in (raw_a, raw_b):
            entries = []
            for user_key, value, kind in sorted(raw,
                                                key=lambda e: e[0]):
                entries.append((encode_internal_key(user_key, sequence,
                                                    kind),
                                b"" if kind == TYPE_DELETION else value))
                sequence += 1
            # Internal keys with equal user keys sort by descending
            # sequence; builders require strictly ascending adds.
            entries.sort(key=functools.cmp_to_key(
                lambda a, b: ICMP.compare(a[0], b[0])))
            images.append(build_table(entries, options))

        reference = compact(
            table_sources([TableReader(img, ICMP, options)
                           for img in images]),
            options, ICMP, drop_deletions=drop)
        got = BatchMergeEngine(options, ICMP).compact(
            [[TableReader(img, ICMP, options)] for img in images],
            drop_deletions=drop)
        assert output_bytes(got.outputs) == output_bytes(
            reference.outputs)


class _StubBackend(AcceleratorBackend):
    def __init__(self, name, estimate, capable=True):
        self.name = name
        self._estimate = estimate
        self._capable = capable
        self.ran = 0

    def can_run(self, spec):
        return self._capable

    def estimate_seconds(self, spec):
        return self._estimate

    def run(self, spec, input_tables, parent_tables, drop_deletions):
        self.ran += 1
        return BackendResult(outputs=[], input_bytes=0, wall_seconds=0.0)


class TestRouting:
    @staticmethod
    def _scheduler(accelerator, estimates, capable=None):
        options = small_options(accelerator=accelerator)
        device = FcaeDevice(CONFIG_9_INPUT, options)
        capable = capable or {}
        backends = {name: _StubBackend(name, estimate,
                                       capable.get(name, True))
                    for name, estimate in estimates.items()}
        return CompactionScheduler(device, options, backends=backends)

    @staticmethod
    def _spec():
        meta = FileMetaData(
            1, 1000,
            encode_internal_key(b"a", 1, TYPE_VALUE),
            encode_internal_key(b"z", 1, TYPE_VALUE))
        return CompactionSpec(level=0, inputs=[meta], parents=[])

    def test_auto_picks_argmin_cost(self):
        scheduler = self._scheduler("auto", {"cpu": 3.0,
                                             "fpga-sim": 2.0,
                                             "batch": 1.0})
        assert scheduler.pick_backend(self._spec()) == "batch"

    def test_auto_skips_incapable_backend(self):
        scheduler = self._scheduler(
            "auto", {"cpu": 3.0, "fpga-sim": 2.0, "batch": 1.0},
            capable={"batch": False, "fpga-sim": False})
        assert scheduler.pick_backend(self._spec()) == "cpu"

    def test_forced_mode_wins_over_cost(self):
        scheduler = self._scheduler("cpu", {"cpu": 99.0,
                                            "fpga-sim": 1.0,
                                            "batch": 1.0})
        assert scheduler.pick_backend(self._spec()) == "cpu"

    def test_forced_fpga_degrades_to_cpu_when_incapable(self):
        scheduler = self._scheduler(
            "fpga-sim", {"cpu": 1.0, "fpga-sim": 1.0, "batch": 1.0},
            capable={"fpga-sim": False})
        assert scheduler.pick_backend(self._spec()) == "cpu"

    def test_registry_requires_cpu(self):
        options = small_options()
        device = FcaeDevice(CONFIG_9_INPUT, options)
        with pytest.raises(ValueError):
            CompactionScheduler(device, options,
                                backends={"batch": _StubBackend(
                                    "batch", 1.0)})

    def test_legacy_should_offload_still_fig6(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_2_INPUT, options), options)
        spec = self._spec()
        assert scheduler.should_offload(spec)
        assert scheduler.estimate_costs(spec).keys() == {
            "cpu", "fpga-sim", "batch"}


class TestFaultFallback:
    """An injected fault on any accelerator fails over to the CPU merge
    with byte-identical output, tagged with the source backend."""

    @pytest.mark.parametrize("accelerator", ["fpga-sim", "batch"])
    def test_fallback_preserves_bytes_and_tags_backend(
            self, forced_fallback, accelerator):
        options = small_options(accelerator=accelerator)
        images = overlapping_l0_tables(options)

        # Reference: the plain CPU merge.
        readers = [TableReader(img, ICMP, options) for img in images]
        reference = output_bytes(compact(
            table_sources(readers), options, ICMP,
            drop_deletions=True).outputs)

        injector = FaultInjector(protocol_error_every=1)
        device = FcaeDevice(CONFIG_9_INPUT, options,
                            fault_injector=injector)
        journal = EventJournal(keep_events=True)
        scheduler = CompactionScheduler(device, options, events=journal,
                                        max_retries=1)
        readers = [TableReader(img, ICMP, options) for img in images]
        spec = spec_for(images, readers)
        got = output_bytes(scheduler(spec, readers, [],
                                     drop_deletions=True))

        assert got == reference
        assert scheduler.last_route() == "fallback"
        assert scheduler.stats.fpga_fallbacks == 1
        assert injector.faults_by_backend == {accelerator: 2}

        fallbacks = [e for e in journal.events
                     if e["type"] == "fallback"]
        assert len(fallbacks) == 1
        assert fallbacks[0]["source"] == accelerator
        assert fallbacks[0]["target"] == "cpu"
        faults = [e for e in journal.events if e["type"] == "fault"]
        assert {e["backend"] for e in faults} == {accelerator}

    def test_fault_free_batch_route_counts(self, forced_fallback):
        options = small_options(accelerator="batch")
        images = overlapping_l0_tables(options)
        device = FcaeDevice(CONFIG_9_INPUT, options)
        scheduler = CompactionScheduler(device, options)
        readers = [TableReader(img, ICMP, options) for img in images]
        spec = spec_for(images, readers)
        scheduler(spec, readers, [], drop_deletions=True)
        stats = scheduler.stats
        assert stats.backend_tasks["batch"] == 1
        assert stats.backend_tasks["cpu"] == 0
        assert stats.backend_input_bytes["batch"] == sum(
            len(img) for img in images)
        assert stats.backend_seconds["batch"] > 0
        # Legacy alias: in-process merges fold onto the software route.
        assert stats.software_tasks == 1
        assert stats.fpga_tasks == 0
