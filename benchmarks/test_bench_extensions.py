"""Extension benches: near-storage, tiered store, write-pause tail."""

from repro.bench import near_storage, tiered, write_pause


def test_bench_near_storage(benchmark, attach_rows):
    result = benchmark.pedantic(near_storage.run, rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert all(row[5] < 1.0 for row in result.rows)


def test_bench_tiered(benchmark, attach_rows):
    result = benchmark.pedantic(tiered.run, kwargs={"scale": 0.25},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    rows = {row[0]: row for row in result.rows}
    assert rows["FCAE N=2"][2] == 0
    assert rows["FCAE N=9"][4] > rows["FCAE N=2"][4]


def test_bench_write_pause(benchmark, attach_rows):
    result = benchmark.pedantic(write_pause.run, kwargs={"scale": 0.25},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    rows = {row[0]: row for row in result.rows}
    assert rows["LevelDB-FCAE"][4] < rows["LevelDB"][4]
