"""Database file naming, LevelDB-style.

``NNNNNN.ldb`` SSTables, ``NNNNNN.log`` WAL segments, ``MANIFEST-NNNNNN``
version logs and a ``CURRENT`` pointer file.
"""

from __future__ import annotations

import os
import re

_TABLE_RE = re.compile(r"^(\d{6})\.ldb$")
_LOG_RE = re.compile(r"^(\d{6})\.log$")
_MANIFEST_RE = re.compile(r"^MANIFEST-(\d{6})$")


def table_file_name(dbname: str, number: int) -> str:
    return os.path.join(dbname, f"{number:06d}.ldb")


def log_file_name(dbname: str, number: int) -> str:
    return os.path.join(dbname, f"{number:06d}.log")


def manifest_file_name(dbname: str, number: int) -> str:
    return os.path.join(dbname, f"MANIFEST-{number:06d}")


def current_file_name(dbname: str) -> str:
    return os.path.join(dbname, "CURRENT")


def event_journal_file_name(dbname: str) -> str:
    """The flight recorder's JSONL journal (LevelDB's ``LOG`` analog)."""
    return os.path.join(dbname, "EVENTS.jsonl")


def parse_table_number(name: str) -> int | None:
    match = _TABLE_RE.match(name)
    return int(match.group(1)) if match else None


def parse_log_number(name: str) -> int | None:
    match = _LOG_RE.match(name)
    return int(match.group(1)) if match else None


def parse_manifest_number(name: str) -> int | None:
    match = _MANIFEST_RE.match(name)
    return int(match.group(1)) if match else None
