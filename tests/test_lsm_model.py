"""Statistical LSM shape model: triggers, picking, write amplification."""

import pytest

from repro.errors import SimulationError
from repro.lsm.options import (
    L0_COMPACTION_TRIGGER,
    L0_SLOWDOWN_TRIGGER,
    L0_STOP_TRIGGER,
    Options,
)
from repro.sim.lsm_model import LsmShapeModel


def options(**kwargs):
    defaults = dict(write_buffer_size=4 << 20, sstable_size=2 << 20,
                    max_level0_size=10 << 20)
    defaults.update(kwargs)
    return Options(**defaults)


MEM = 4 << 20


class TestTriggers:
    def test_fresh_model_idle(self):
        model = LsmShapeModel(options())
        assert not model.needs_compaction()
        assert not model.slowdown
        assert not model.stopped

    def test_l0_file_count_trigger(self):
        model = LsmShapeModel(options())
        for _ in range(L0_COMPACTION_TRIGGER):
            model.add_l0_file(MEM)
        assert model.needs_compaction()
        score, level = model.compaction_score()
        assert level == 0
        assert score >= 1.0

    def test_slowdown_and_stop(self):
        model = LsmShapeModel(options())
        for _ in range(L0_SLOWDOWN_TRIGGER):
            model.add_l0_file(MEM)
        assert model.slowdown
        assert not model.stopped
        for _ in range(L0_STOP_TRIGGER - L0_SLOWDOWN_TRIGGER):
            model.add_l0_file(MEM)
        assert model.stopped

    def test_size_trigger_deeper(self):
        model = LsmShapeModel(options())
        model.level_bytes[1] = 50 << 20  # 5x the 10 MB budget
        score, level = model.compaction_score()
        assert level == 1
        assert score == pytest.approx(5.0)


class TestPickApply:
    def test_l0_task_consumes_l0_and_l1(self):
        model = LsmShapeModel(options())
        for _ in range(4):
            model.add_l0_file(MEM)
        model.level_bytes[1] = 8 << 20
        task = model.pick_compaction()
        assert task.level == 0
        assert task.l0_files_consumed == 4
        assert task.fpga_input_count == 5
        assert task.input_bytes == 4 * MEM + (8 << 20)
        assert model.l0_files == 0
        model.apply(task)
        assert model.level_bytes[1] == task.output_bytes

    def test_level_busy_prevents_double_pick(self):
        model = LsmShapeModel(options())
        for _ in range(4):
            model.add_l0_file(MEM)
        first = model.pick_compaction()
        assert first is not None
        # L0 is busy and empty; nothing else due.
        assert model.pick_compaction() is None
        model.apply(first)

    def test_apply_without_pick_rejected(self):
        from repro.sim.lsm_model import ModelCompactionTask
        model = LsmShapeModel(options())
        task = ModelCompactionTask(2, 100, 0, 2, 100)
        with pytest.raises(SimulationError):
            model.apply(task)

    def test_deep_task_drains_excess(self):
        model = LsmShapeModel(options())
        model.level_bytes[1] = 35 << 20  # 25 MB over budget
        task = model.pick_compaction()
        assert task.level == 1
        assert task.input_bytes >= 25 << 20
        assert model.level_bytes[1] <= 10 << 20

    def test_deep_task_pulls_child_overlap(self):
        model = LsmShapeModel(options())
        model.level_bytes[1] = 12 << 20
        model.level_bytes[2] = 100 << 20
        task = model.pick_compaction()
        assert task.level == 1
        assert task.input_bytes > 2 << 20  # includes child overlap
        assert task.fpga_input_count == 2


class TestSteadyState:
    def test_write_amplification_grows_with_data(self):
        def run(flushes):
            model = LsmShapeModel(options())
            for _ in range(flushes):
                model.add_l0_file(MEM)
                while model.needs_compaction():
                    task = model.pick_compaction()
                    if task is None:
                        break
                    model.apply(task)
            return model.stats.write_amplification()

        small = run(64)     # 256 MB
        large = run(1024)   # 4 GB
        assert large > small > 1.0

    def test_total_bytes_conserved_up_to_survival(self):
        model = LsmShapeModel(options(), l0_survival=1.0, deep_survival=1.0)
        ingested = 0
        for _ in range(128):
            model.add_l0_file(MEM)
            ingested += MEM
            while model.needs_compaction():
                task = model.pick_compaction()
                if task is None:
                    break
                model.apply(task)
        assert model.total_bytes() == pytest.approx(ingested, rel=0.01)

    def test_depth_estimate(self):
        model = LsmShapeModel(options())
        assert model.expected_depth_for(5 << 20) == 1
        assert model.expected_depth_for(1 << 30) >= 3
