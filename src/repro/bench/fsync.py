"""WAL sync policy sweep: throughput across the durability spectrum.

Eight concurrent writers hammer one DB per ``wal_sync`` mode over a
:class:`~repro.lsm.faultenv.SlowSyncEnv` (1 ms modeled fsync — a
datacenter SSD flush), so the rows show the real cost structure the
modes trade against:

* ``none``/``flush`` — no fsyncs; the throughput ceiling (and the
  durability floor).
* ``always`` — one fsync per commit, serialized under the writer lock:
  throughput collapses to ~1/(writers × fsync latency).
* ``interval`` — periodic fsync; near-ceiling throughput, bounded loss.
* ``group`` — LevelDB-style group commit: the queue leader splices all
  waiting batches into one WAL record and pays one fsync for the whole
  group, so throughput recovers most of the gap to ``none`` while
  keeping ``always``'s guarantee.

The acceptance bar (tracked in the ``vs_always`` column and a note):
group commit sustains **>2×** the throughput of ``always`` at 8
writers.  In-memory + modeled latency keeps the crossover deterministic
in CI — real disks only widen it.
"""

from __future__ import annotations

import threading
import time

from repro.bench.common import ExperimentResult
from repro.lsm.db import LsmDB
from repro.lsm.faultenv import SlowSyncEnv
from repro.lsm.options import Options, WAL_SYNC_MODES

WRITERS = 8
OPS_PER_WRITER = 250
VALUE = b"v" * 100
#: Modeled fsync latency (seconds); ~ a datacenter SSD flush.
SYNC_LATENCY = 1e-3


def _run_mode(mode: str, ops_per_writer: int) -> dict:
    env = SlowSyncEnv(sync_latency=SYNC_LATENCY)
    options = Options(
        wal_sync=mode,
        wal_sync_interval_seconds=0.01,
        bloom_bits_per_key=0,
        compression="none",
        write_buffer_size=64 << 20,  # keep flushes out of the number
    )
    db = LsmDB(f"fsync-{mode}", options, env=env)
    barrier = threading.Barrier(WRITERS + 1)

    def worker(t: int) -> None:
        barrier.wait()
        for i in range(ops_per_writer):
            db.put(f"w{t:02d}-{i:08d}".encode(), VALUE)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(WRITERS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    ops = WRITERS * ops_per_writer
    syncs = int(db._m.wal_syncs.value)
    groups = db._m.group_commit_batches.count
    avg_group = (db._m.group_commit_batches.sum / groups) if groups else 1.0
    db.close()
    return {
        "mode": mode,
        "ops": ops,
        "wall": wall,
        "kops": ops / wall / 1e3,
        "syncs": syncs,
        "avg_group": avg_group,
    }


def run(scale: float = 1.0) -> ExperimentResult:
    ops_per_writer = max(10, int(OPS_PER_WRITER * scale))
    result = ExperimentResult(
        name="fsync",
        title=f"WAL sync modes, {WRITERS} writers, "
              f"{SYNC_LATENCY * 1e3:.0f} ms modeled fsync",
        columns=["mode", "ops", "wall_s", "kops_s", "wal_syncs",
                 "avg_group", "vs_always"],
    )
    measured = {mode: _run_mode(mode, ops_per_writer)
                for mode in WAL_SYNC_MODES}
    always_kops = measured["always"]["kops"]
    for mode in WAL_SYNC_MODES:
        row = measured[mode]
        result.add_row(mode, row["ops"], row["wall"], row["kops"],
                       row["syncs"], row["avg_group"],
                       row["kops"] / always_kops)
    group_speedup = measured["group"]["kops"] / always_kops
    result.notes.append(
        f"group commit: {group_speedup:.1f}x the throughput of "
        f"wal_sync=always at {WRITERS} writers "
        f"({measured['group']['avg_group']:.1f} batches/fsync); "
        f"acceptance bar is >2x")
    result.notes.append(
        "durability: none/flush lose unsynced tail on power loss; "
        "interval bounds loss to the sync window; always/group lose "
        "nothing acknowledged (tests/test_durability.py)")
    return result
