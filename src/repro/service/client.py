"""Blocking client for the KV service protocol.

One TCP connection, requests serialized under a lock (the protocol is
strict request/response, so a connection is a unit of ordering).  Use
one client per thread — or one per logical stream — for parallelism;
they are cheap.

::

    with KVClient("127.0.0.1", 7707) as kv:
        kv.put(b"k", b"v")
        assert kv.get(b"k") == b"v"
"""

from __future__ import annotations

import json
import socket
import threading

from repro.errors import NotFoundError, ReproError
from repro.lsm import WriteBatch
from repro.service import protocol


class ServiceError(ReproError):
    """The server answered ``ERROR``."""


class ServiceBusyError(ReproError):
    """The server answered ``BUSY`` (shard backpressure; retry later)."""


class KVClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 7707,
                 timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- calls

    def ping(self) -> None:
        self._call(protocol.encode_request(protocol.OP_PING))

    def get(self, key: bytes) -> bytes:
        return self._call(protocol.encode_request(protocol.OP_GET, key))

    def put(self, key: bytes, value: bytes) -> None:
        self._call(protocol.encode_request(protocol.OP_PUT, key, value))

    def delete(self, key: bytes) -> None:
        self._call(protocol.encode_request(protocol.OP_DELETE, key))

    def write(self, batch: WriteBatch) -> None:
        """Commit a batch (atomic per shard it touches)."""
        self._call(protocol.encode_request(
            protocol.OP_BATCH, raw=batch.serialize(0)))

    def stats(self) -> dict:
        body = self._call(protocol.encode_request(protocol.OP_STATS))
        return json.loads(body.decode())

    # ---------------------------------------------------------- plumbing

    def _call(self, request: bytes) -> bytes:
        with self._lock:
            protocol.write_frame(self._sock, request)
            response = protocol.read_frame(self._sock)
        if response is None:
            raise ServiceError("server closed the connection")
        status, body = protocol.decode_response(response)
        if status == protocol.OK:
            return body
        if status == protocol.NOT_FOUND:
            raise NotFoundError("key not found")
        if status == protocol.BUSY:
            raise ServiceBusyError(body.decode(errors="replace"))
        raise ServiceError(body.decode(errors="replace"))
