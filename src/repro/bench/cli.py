"""``python -m repro.bench`` / ``fcae-bench`` — regenerate the paper's
evaluation.

Usage::

    fcae-bench table5            # one experiment
    fcae-bench fig15a            # one sub-figure
    fcae-bench all               # everything, prints every table
    fcae-bench all --markdown results.md
    fcae-bench fig14 --scale 0.1 # smaller workloads for a quick pass
    fcae-bench fig12 --metrics-out m.prom --trace-out t.jsonl

``--metrics-out`` installs a process-wide metrics registry for the run
and writes a Prometheus text-format dump; ``--trace-out`` streams every
flush/compaction span (with modeled per-phase durations) as JSONL.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.bench import (
    ablation,
    near_storage,
    tiered,
    write_pause,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table5,
    table6,
    table7,
    table8,
)
from repro.bench.common import ExperimentResult

EXPERIMENTS = {
    "table5": table5.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "table6": table6.run,
    "fig11": fig11.run,
    "table7": table7.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "table8": table8.run,
    "fig15": fig15.run,
    "fig15a": fig15.run_a,
    "fig15b": fig15.run_b,
    "fig15c": fig15.run_c,
    "fig15d": fig15.run_d,
    "fig16": fig16.run,
    "ablation": ablation.run,
    "near_storage": near_storage.run,
    "tiered": tiered.run,
    "write_pause": write_pause.run,
}

#: `all` skips the fig15 summary (its four parts run individually).
ALL_ORDER = ("table5", "fig9", "fig10", "table6", "fig11", "table7",
             "fig12", "fig13", "fig14", "table8", "fig15a", "fig15b",
             "fig15c", "fig15d", "fig16", "ablation", "near_storage", "tiered",
             "write_pause")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fcae-bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as markdown")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a Prometheus text-format metrics dump")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="stream span traces as JSONL")
    args = parser.parse_args(argv)

    registry = tracer = None
    token = None
    if args.metrics_out or args.trace_out:
        registry = obs.MetricsRegistry()
        obs.names.register_all(registry)
        if args.trace_out:
            try:
                tracer = obs.Tracer(sink_path=args.trace_out,
                                    keep_spans=False)
            except OSError as error:
                print(f"error: cannot open {args.trace_out}: {error}",
                      file=sys.stderr)
                return 2
        token = obs.install(registry=registry, tracer=tracer)

    experiment_names = (ALL_ORDER if args.experiment == "all"
                        else (args.experiment,))
    results: list[ExperimentResult] = []
    status = 0
    try:
        for name in experiment_names:
            started = time.perf_counter()
            result = EXPERIMENTS[name](scale=args.scale)
            elapsed = time.perf_counter() - started
            results.append(result)
            print(result.format())
            print(f"[{name} regenerated in {elapsed:.1f}s]")
            print()
    finally:
        if token is not None:
            obs.uninstall(token)
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace_out}")
        if registry is not None and args.metrics_out:
            try:
                obs.write_prometheus(args.metrics_out, registry)
                print(f"metrics written to {args.metrics_out}")
            except OSError as error:
                print(f"error: cannot write {args.metrics_out}: {error}",
                      file=sys.stderr)
                status = 2
    if status:
        return status
    if args.markdown:
        with open(args.markdown, "w") as handle:
            for result in results:
                handle.write(result.to_markdown())
                handle.write("\n\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
