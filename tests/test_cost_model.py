"""Analytic cost model: the paper's Tables II/III and §V-D1 predicate."""


from repro.fpga.config import FpgaConfig
from repro.fpga import cost_model as cm


def config(n=2, v=16):
    return FpgaConfig(num_inputs=n, value_width=v,
                      w_in=max(v, 8), w_out=64)


class TestPeriods:
    def test_internal_key_length_adds_mark_fields(self):
        # Paper footnote: L_key = 16 (real) + 8 (mark fields).
        assert cm.internal_key_length(16) == 24

    def test_comparer_fanin_term(self):
        assert cm.comparer_fanin_term(2) == 3    # 2 + ceil(log2 2)
        assert cm.comparer_fanin_term(9) == 6    # 2 + ceil(log2 9)

    def test_table3_decoder(self):
        # L_key + L_value / V
        assert cm.decoder_period(24, 1024, 16) == 24 + 64

    def test_table3_comparer(self):
        # (2 + ceil(log2 N)) * L_key
        assert cm.comparer_period(24, 2) == 72
        assert cm.comparer_period(24, 9) == 144

    def test_table3_transfer(self):
        assert cm.transfer_period(24, 1024, 64) == 24  # max(24, 16)
        assert cm.transfer_period(24, 2048, 8) == 256

    def test_table3_encoder(self):
        assert cm.encoder_period(24) == 24

    def test_table2_basic_periods(self):
        assert cm.basic_decoder_period(24, 128) == 152
        assert cm.basic_transfer_period(24, 128) == 128


class TestBottleneck:
    def test_paper_footnote_case_v8(self):
        # V=8, L_value=1024: decoder period 24+128=152 > comparer 72.
        breakdown = cm.periods(config(v=8), 24, 1024)
        assert breakdown.bottleneck_module == "decoder"
        assert breakdown.bottleneck_cycles == 152

    def test_comparer_bound_at_small_values(self):
        breakdown = cm.periods(config(v=64), 24, 64)
        assert breakdown.bottleneck_module == "comparer"
        assert breakdown.bottleneck_cycles == 72

    def test_predicate_matches_paper_fig15a_analysis(self):
        # §VII-C3a: N=9, V=8, L_value=128 -> L_key < 3.2, so the decoder
        # is always the bottleneck for real key lengths.
        nine = FpgaConfig(num_inputs=9, value_width=8, w_in=8)
        assert not cm.decoder_is_bottleneck(nine, 24, 128)
        assert cm.decoder_is_bottleneck(nine, 3, 128)


class TestSpeeds:
    def test_steady_state_positive_and_monotone_in_v(self):
        speeds = [cm.steady_state_speed_mbps(config(v=v), 16, 1024)
                  for v in (8, 16, 32, 64)]
        assert all(s > 0 for s in speeds)
        assert speeds == sorted(speeds)

    def test_serialized_slower_than_ideal(self):
        cfg = config(v=16)
        ideal = cm.steady_state_speed_mbps(cfg, 16, 512)
        realistic = cm.serialized_speed_mbps(cfg, 16, 512)
        assert realistic < ideal

    def test_serialized_speed_increases_with_value_length(self):
        cfg = config(v=16)
        speeds = [cm.serialized_speed_mbps(cfg, 16, L)
                  for L in (64, 256, 1024)]
        assert speeds == sorted(speeds)

    def test_nine_input_slower_at_small_values(self):
        two = cm.serialized_speed_mbps(config(n=2, v=8), 16, 64)
        nine = cm.serialized_speed_mbps(
            FpgaConfig(num_inputs=9, value_width=8, w_in=8), 16, 64)
        assert nine < two

    def test_gap_narrows_at_long_values(self):
        def ratio(L):
            two = cm.serialized_speed_mbps(config(n=2, v=8), 16, L)
            nine = cm.serialized_speed_mbps(
                FpgaConfig(num_inputs=9, value_width=8, w_in=8), 16, L)
            return nine / two
        assert ratio(2048) > ratio(64)
