"""Unified observability: metrics registry, span tracing, exposition.

The paper's entire evaluation is internal measurement — per-phase
compaction time, the PCIe share of offload time, per-module FPGA
utilization, write-pause behavior.  This package is the telemetry
substrate those numbers flow through:

* :mod:`repro.obs.registry` — thread-safe counters / gauges /
  fixed-bucket histograms, grouped into named families;
* :mod:`repro.obs.names` — the canonical family table (``lsm_*``,
  ``scheduler_*``, ``fpga_pcie_*``, ``fpga_pipeline_*``) and binders;
* :mod:`repro.obs.tracing` — nested spans over wall-clock and simulated
  time, streamed as JSONL;
* :mod:`repro.obs.exposition` — Prometheus text format (and a parser);
* :mod:`repro.obs.report` — the LevelDB-style ``repro.stats`` property;
* :mod:`repro.obs.timeline` — bounded-memory pipeline event intervals
  with Chrome trace-event export (Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.profile` — critical-path attribution of kernel runs
  (which module bounds throughput) and the ``--profile`` report.

Instrumented components resolve their sinks in this order: an explicit
``metrics=`` / ``tracer=`` constructor argument, then the process-wide
pair installed by :func:`install` / :func:`scoped` (how the benchmark
CLIs aggregate a whole run into one dump), else a private registry and
the no-op tracer.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_counts,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    read_jsonl,
    span_children,
)
from repro.obs.exposition import (
    parse_prometheus_text,
    to_prometheus_text,
    write_prometheus,
)
from repro.obs import names
from repro.obs.report import render_db_report
from repro.obs.timeline import TimelineRecorder

_installed_registry: Optional[MetricsRegistry] = None
_installed_tracer: Optional[Tracer] = None
_installed_timeline: Optional[TimelineRecorder] = None


def install(registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None,
            timeline: Optional[TimelineRecorder] = None) -> tuple:
    """Install a process-wide default registry/tracer/timeline; returns
    a token for :func:`uninstall` (the previous triple)."""
    global _installed_registry, _installed_tracer, _installed_timeline
    token = (_installed_registry, _installed_tracer, _installed_timeline)
    if registry is not None:
        _installed_registry = registry
    if tracer is not None:
        _installed_tracer = tracer
    if timeline is not None:
        _installed_timeline = timeline
    return token


def uninstall(token: tuple = (None, None, None)) -> None:
    """Restore the defaults captured by :func:`install`."""
    global _installed_registry, _installed_tracer, _installed_timeline
    # Accept the historical two-element token for compatibility.
    registry, tracer = token[0], token[1]
    timeline = token[2] if len(token) > 2 else None
    _installed_registry, _installed_tracer = registry, tracer
    _installed_timeline = timeline


@contextmanager
def scoped(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None,
           timeline: Optional[TimelineRecorder] = None) -> Iterator[None]:
    """Temporarily install a default registry/tracer/timeline."""
    token = install(registry=registry, tracer=tracer, timeline=timeline)
    try:
        yield
    finally:
        uninstall(token)


def current_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or None (components then go private)."""
    return _installed_registry


def current_timeline() -> Optional[TimelineRecorder]:
    """The installed event timeline, or None (recording disabled)."""
    return _installed_timeline


def current_tracer() -> Tracer | NullTracer:
    """The installed tracer, or the shared no-op tracer."""
    return _installed_tracer if _installed_tracer is not None \
        else NULL_TRACER


def resolve_registry(metrics: Optional[MetricsRegistry]
                     ) -> MetricsRegistry:
    """Constructor helper: explicit argument > installed default > a
    fresh private registry."""
    if metrics is not None:
        return metrics
    installed = current_registry()
    return installed if installed is not None else MetricsRegistry()


def resolve_tracer(tracer) -> Tracer | NullTracer:
    """Constructor helper: explicit argument > installed default >
    no-op."""
    return tracer if tracer is not None else current_tracer()


__all__ = [
    "BYTES_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TimelineRecorder",
    "Tracer",
    "current_registry",
    "current_timeline",
    "current_tracer",
    "install",
    "merge_counts",
    "names",
    "parse_prometheus_text",
    "read_jsonl",
    "render_db_report",
    "resolve_registry",
    "resolve_tracer",
    "scoped",
    "span_children",
    "to_prometheus_text",
    "uninstall",
    "write_prometheus",
]
