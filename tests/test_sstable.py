"""SSTable builder/reader: format, index, filter, cache, corruption."""

import pytest

from repro.errors import CorruptionError, InvalidArgumentError
from repro.lsm.cache import LRUCache
from repro.lsm.compaction import _BufferFile
from repro.lsm.internal import encode_internal_key, TYPE_VALUE
from repro.lsm.sstable import (
    BlockHandle,
    FOOTER_SIZE,
    TABLE_MAGIC,
    TableBuilder,
    TableReader,
)
from tests.conftest import build_table_image, make_entries


class TestBlockHandle:
    def test_roundtrip(self):
        handle = BlockHandle(12345, 678)
        decoded, offset = BlockHandle.decode(handle.encode())
        assert decoded == handle
        assert offset == len(handle.encode())


class TestBuilder:
    def test_stats_accounting(self, options, icmp):
        entries = make_entries(300, value_size=64)
        dest = _BufferFile()
        builder = TableBuilder(options, dest, icmp)
        for key, value in entries:
            builder.add(key, value)
        stats = builder.finish()
        assert stats.num_entries == 300
        assert stats.num_data_blocks > 1
        assert stats.file_bytes == len(dest.data)
        assert stats.raw_value_bytes == sum(len(v) for _, v in entries)

    def test_out_of_order_rejected(self, options, icmp):
        builder = TableBuilder(options, _BufferFile(), icmp)
        builder.add(encode_internal_key(b"b", 1, TYPE_VALUE), b"v")
        with pytest.raises(InvalidArgumentError):
            builder.add(encode_internal_key(b"a", 1, TYPE_VALUE), b"v")

    def test_add_after_finish_rejected(self, options, icmp):
        builder = TableBuilder(options, _BufferFile(), icmp)
        builder.add(encode_internal_key(b"a", 1, TYPE_VALUE), b"v")
        builder.finish()
        with pytest.raises(InvalidArgumentError):
            builder.add(encode_internal_key(b"b", 1, TYPE_VALUE), b"v")

    def test_smallest_largest_tracked(self, options, icmp):
        entries = make_entries(50)
        dest = _BufferFile()
        builder = TableBuilder(options, dest, icmp)
        for key, value in entries:
            builder.add(key, value)
        builder.finish()
        assert builder.smallest_key == entries[0][0]
        assert builder.largest_key == entries[-1][0]

    def test_footer_magic(self, options, icmp, table_factory):
        image = table_factory(make_entries(10))
        magic = int.from_bytes(image[-8:], "little")
        assert magic == TABLE_MAGIC
        assert len(image) > FOOTER_SIZE


class TestReader:
    def test_full_iteration(self, options, icmp, table_factory):
        entries = make_entries(400, value_size=32)
        reader = TableReader(table_factory(entries), icmp, options)
        assert list(reader) == entries

    def test_point_get(self, options, icmp, table_factory):
        entries = make_entries(200)
        reader = TableReader(table_factory(entries), icmp, options)
        target = entries[123][0]
        assert reader.get(target) == entries[123]

    def test_get_past_end(self, options, icmp, table_factory):
        entries = make_entries(20)
        reader = TableReader(table_factory(entries), icmp, options)
        beyond = encode_internal_key(b"\xff" * 16, 1, TYPE_VALUE)
        assert reader.get(beyond) is None

    def test_iter_from_midpoint(self, options, icmp, table_factory):
        entries = make_entries(200)
        reader = TableReader(table_factory(entries), icmp, options)
        suffix = list(reader.iter_from(entries[150][0]))
        assert suffix == entries[150:]

    def test_index_entries_cover_all_blocks(self, options, icmp,
                                            table_factory):
        entries = make_entries(400, value_size=64)
        reader = TableReader(table_factory(entries), icmp, options)
        index = reader.index_entries()
        assert len(index) > 1
        # Every index key must be >= the last key of its block: re-walk.
        last_key = entries[-1][0]
        assert icmp.compare(index[-1][0], last_key) >= 0

    def test_bloom_filter_rejects_absent(self, options, icmp, table_factory):
        entries = make_entries(300)
        reader = TableReader(table_factory(entries), icmp, options)
        present_hits = sum(
            reader.key_may_match(key[:-8]) for key, _ in entries)
        assert present_hits == len(entries)
        absent_hits = sum(
            reader.key_may_match(f"zz-absent-{i}".encode())
            for i in range(500))
        assert absent_hits < 30

    def test_no_compression_mode(self, plain_options, icmp):
        entries = make_entries(100)
        image = build_table_image(entries, plain_options, icmp)
        reader = TableReader(image, icmp, plain_options)
        assert list(reader) == entries

    def test_block_cache_hits(self, options, icmp, table_factory):
        entries = make_entries(200)
        cache = LRUCache(1 << 20)
        reader = TableReader(table_factory(entries), icmp, options,
                             block_cache=cache, file_number=7)
        list(reader)
        misses_after_first = cache.misses
        list(reader)
        assert cache.misses == misses_after_first
        assert cache.hits > 0


class TestCorruption:
    def test_bad_magic(self, options, icmp, table_factory):
        image = bytearray(table_factory(make_entries(10)))
        image[-1] ^= 0xFF
        with pytest.raises(CorruptionError):
            TableReader(bytes(image), icmp, options)

    def test_too_short(self, options, icmp):
        with pytest.raises(CorruptionError):
            TableReader(b"tiny", icmp, options)

    def test_flipped_data_byte_detected(self, options, icmp, table_factory):
        image = bytearray(table_factory(make_entries(200, value_size=64)))
        image[10] ^= 0xFF  # inside the first data block
        reader = TableReader(bytes(image), icmp, options)
        with pytest.raises(CorruptionError):
            list(reader)

    def test_paranoid_off_skips_crc(self, icmp, options, table_factory):
        # Without paranoid checks a flipped byte may surface as garbage or
        # a snappy error, but the CRC itself is not consulted.
        from dataclasses import replace
        relaxed = replace(options, paranoid_checks=False)
        entries = make_entries(10)
        image = build_table_image(entries, relaxed, icmp)
        reader = TableReader(image, icmp, relaxed)
        assert list(reader) == entries
