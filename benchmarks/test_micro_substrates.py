"""Microbenchmarks of the hot substrate paths (real wall-clock time).

These are the only benchmarks measuring Python execution speed rather
than model output: snappy codec, skiplist insert, SSTable build/read,
CPU merge, and a full functional engine run.
"""

import random

from repro.compress import snappy
from repro.fpga.config import CONFIG_2_INPUT
from repro.fpga.engine import CompactionEngine, simulate_synthetic
from repro.lsm.compaction import compact
from repro.lsm.internal import InternalKeyComparator, TYPE_VALUE, \
    encode_internal_key
from repro.lsm.options import Options
from repro.lsm.skiplist import SkipList
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator

ICMP = InternalKeyComparator(BytewiseComparator())
OPTIONS = Options(compression="none", bloom_bits_per_key=0,
                  sstable_size=1 << 20)


def _entries(count, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(10 ** 9), count))
    return [(encode_internal_key(f"{k:016d}".encode(), i + 1, TYPE_VALUE),
             (f"value-{k}".encode() * 4)[:64])
            for i, k in enumerate(keys)]


def _image(entries):
    from repro.lsm.compaction import _BufferFile
    from repro.lsm.sstable import TableBuilder

    dest = _BufferFile()
    builder = TableBuilder(OPTIONS, dest, ICMP)
    for key, value in entries:
        builder.add(key, value)
    builder.finish()
    return bytes(dest.data)


def test_micro_snappy_compress(benchmark):
    data = (b"key-value store compaction " * 200)[:4096]
    compressed = benchmark(snappy.compress, data)
    assert snappy.decompress(compressed) == data


def test_micro_snappy_decompress(benchmark):
    data = (b"key-value store compaction " * 200)[:4096]
    compressed = snappy.compress(data)
    assert benchmark(snappy.decompress, compressed) == data


def test_micro_skiplist_insert(benchmark):
    keys = [f"{i:016d}".encode() for i in random.Random(1).sample(
        range(10 ** 9), 2000)]

    def insert_all():
        skiplist = SkipList(lambda a, b: (a > b) - (a < b))
        for key in keys:
            skiplist.insert(key)
        return skiplist

    result = benchmark(insert_all)
    assert len(result) == 2000


def test_micro_sstable_build(benchmark):
    entries = _entries(2000)
    image = benchmark(_image, entries)
    assert len(image) > 0


def test_micro_sstable_scan(benchmark):
    image = _image(_entries(2000))

    def scan():
        return sum(1 for _ in TableReader(image, ICMP, OPTIONS))

    assert benchmark(scan) == 2000


def test_micro_cpu_merge(benchmark):
    left = _entries(1500, seed=1)
    right = _entries(1500, seed=2)

    def merge():
        return compact([iter(left), iter(right)], OPTIONS, ICMP)

    stats = benchmark(merge)
    assert stats.input_pairs == 3000


def test_micro_engine_functional_run(benchmark):
    left = _image(_entries(800, seed=3))
    right = _image(_entries(800, seed=4))
    engine = CompactionEngine(CONFIG_2_INPUT, OPTIONS)

    def run():
        return engine.run_on_images([[left], [right]])

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.timing.comparer_rounds == 1600


def test_micro_timing_simulator(benchmark):
    def simulate():
        return simulate_synthetic(CONFIG_2_INPUT, [3000, 3000], 16, 512)

    report = benchmark(simulate)
    assert report.comparer_rounds == 6000


def test_micro_wal_append(benchmark):
    from repro.lsm.env import MemEnv
    from repro.lsm.wal import LogWriter

    record = b"batch-payload" * 30

    def append_many():
        env = MemEnv()
        writer = LogWriter(env.new_writable_file("log"))
        for _ in range(500):
            writer.add_record(record)
        return env.file_size("log")

    assert benchmark(append_many) > 500 * len(record)


def test_micro_bloom_build_and_probe(benchmark):
    from repro.lsm.filter import BloomFilterPolicy

    policy = BloomFilterPolicy(10)
    keys = [f"user{i:08d}".encode() for i in range(2000)]

    def build_and_probe():
        data = policy.create_filter(keys)
        hits = sum(policy.key_may_match(k, data) for k in keys[:200])
        return hits

    assert benchmark(build_and_probe) == 200


def test_micro_crc32c(benchmark):
    from repro.util.crc32c import crc32c

    data = bytes(range(256)) * 16

    assert benchmark(crc32c, data) >= 0


def test_micro_system_des_quarter_gb(benchmark):
    from repro.lsm.options import Options
    from repro.sim.system import SystemConfig, simulate_fillrandom

    def run_des():
        return simulate_fillrandom(SystemConfig(
            mode="fcae", options=Options(value_length=512),
            data_size_bytes=1 << 28))

    result = benchmark.pedantic(run_des, rounds=2, iterations=1)
    assert result.throughput_mbps > 0
