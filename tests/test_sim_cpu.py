"""CPU cost model: Table V CPU-column calibration and monotonicity."""

import pytest

from repro.sim.cpu import CpuCostModel

PAPER_CPU = {64: 5.3, 128: 6.9, 256: 9.0, 512: 12.2, 1024: 14.8,
             2048: 13.3}


@pytest.fixture
def cpu():
    return CpuCostModel()


class TestHarnessCalibration:
    @pytest.mark.parametrize("value_length,paper", PAPER_CPU.items())
    def test_within_20pct_of_paper(self, cpu, value_length, paper):
        speed = cpu.compaction_speed_mbps(16, value_length)
        assert paper * 0.8 < speed < paper * 1.25

    def test_cache_knee_slows_growth(self, cpu):
        # Per-byte rate beyond 1 KB carries the surcharge, bending the
        # curve the way the paper's 2048-byte row drops.
        s1024 = cpu.compaction_speed_mbps(16, 1024)
        s2048 = cpu.compaction_speed_mbps(16, 2048)
        growth = s2048 / s1024
        assert growth < 1.05

    def test_more_inputs_slower(self, cpu):
        two = cpu.compaction_speed_mbps(16, 128, num_inputs=2)
        nine = cpu.compaction_speed_mbps(16, 128, num_inputs=9)
        assert nine < two

    def test_compaction_seconds_linear_in_bytes(self, cpu):
        one = cpu.compaction_seconds(1 << 20, 16, 512)
        ten = cpu.compaction_seconds(10 << 20, 16, 512)
        assert ten == pytest.approx(10 * one)


class TestSystemCalibration:
    def test_system_merge_faster_than_harness(self, cpu):
        # See the calibration note: the in-tree path must be several
        # times faster than the paper's extracted harness.
        assert (cpu.system_merge_speed_mbps(16, 512)
                > 2 * cpu.compaction_speed_mbps(16, 512))

    def test_system_merge_weakly_value_sensitive(self, cpu):
        small = cpu.system_merge_speed_mbps(16, 64)
        large = cpu.system_merge_speed_mbps(16, 2048)
        assert large / small < 1.6


class TestWritePath:
    def test_write_cost_scales_with_size(self, cpu):
        assert cpu.write_seconds(16, 2048) > cpu.write_seconds(16, 64)

    def test_flush_linear(self, cpu):
        assert cpu.flush_seconds(8 << 20) == pytest.approx(
            2 * cpu.flush_seconds(4 << 20))

    def test_offload_overhead_small(self, cpu):
        # Dispatch bookkeeping for a 32 MB task is well under 1 s of CPU.
        assert cpu.offload_seconds(32 << 20) < 0.2

    def test_read_costs_positive(self, cpu):
        assert cpu.read_hit_seconds() > 0
        assert cpu.scan_seconds(50) > cpu.read_hit_seconds()
