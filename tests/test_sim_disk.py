"""Disk bandwidth server."""

import pytest

from repro.sim.disk import DiskModel


class TestDurations:
    def test_read_duration(self):
        disk = DiskModel(read_bandwidth=100e6, seek_seconds=1e-3)
        assert disk.read_duration(100_000_000) == pytest.approx(1.001)

    def test_write_duration(self):
        disk = DiskModel(write_bandwidth=50e6, seek_seconds=0)
        assert disk.write_duration(50_000_000) == pytest.approx(1.0)


class TestReservations:
    def test_serialized_transfers(self):
        disk = DiskModel(read_bandwidth=100e6, write_bandwidth=100e6,
                         seek_seconds=0)
        first = disk.reserve_read(0.0, 100_000_000)   # 1s: busy [0,1]
        second = disk.reserve_write(0.0, 100_000_000)  # queues behind
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_gap_respected(self):
        disk = DiskModel(read_bandwidth=100e6, seek_seconds=0)
        disk.reserve_read(0.0, 100_000_000)
        late = disk.reserve_read(10.0, 100_000_000)
        assert late == pytest.approx(11.0)

    def test_stats_accumulate(self):
        disk = DiskModel()
        disk.reserve_read(0.0, 1000)
        disk.reserve_write(0.0, 2000)
        assert disk.stats.read_bytes == 1000
        assert disk.stats.write_bytes == 2000
        assert disk.stats.busy_seconds > 0
        assert disk.free_at > 0
