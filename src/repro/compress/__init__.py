"""Compression codecs.

The paper's SSTables are Snappy-compressed; the FPGA Decoder/Encoder pair
decompresses and recompresses blocks in flight.  :mod:`repro.compress.snappy`
implements the Snappy block format (varint preamble, literal and copy
elements) in pure Python, wire-compatible with Google's implementation.
"""

from repro.compress.snappy import compress, decompress, max_compressed_length

__all__ = ["compress", "decompress", "max_compressed_length"]
