"""End-to-end system simulator: LevelDB vs LevelDB-FCAE write throughput.

A discrete-event model of the paper's §VII-B2/C2/C3/D experiments at
memtable granularity:

* the **foreground writer** fills 4 MB memtables at the CPU write-path
  rate, sleeps 1 ms per write while level 0 is in *slowdown* (>= 8 files)
  and blocks entirely in *stop* (>= 12) — LevelDB v1.1's exact throttle;
* **flushes** (compaction type 1) encode the immutable memtable to an L0
  file: on the background core for baseline LevelDB, on the single host
  core for LevelDB-FCAE (whose background core budget went to the card);
* **merge compactions** (compaction type 2) are picked by the statistical
  :class:`~repro.sim.lsm_model.LsmShapeModel` and executed by the mode's
  backend — the CPU merge model for LevelDB; disk-read -> PCIe -> kernel
  -> PCIe -> disk-write for LevelDB-FCAE, with software fallback whenever
  a task's input-stream count exceeds the engine's ``N`` (Fig 6);
* a shared :class:`~repro.sim.disk.DiskModel` carries flush writes and
  compaction I/O.

The headline effects all emerge rather than being scripted: the baseline
is CPU-merge-bound (throughput ~ merge speed / write amplification), the
FCAE system is disk-bound at scale, L0 throttling compresses the gap as
data grows (Fig 14's convergence), and PCIe stays a low single-digit
percentage of wall time (Table VIII).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.errors import InvalidArgumentError
from repro.fpga.config import CONFIG_9_INPUT, FpgaConfig
from repro.fpga.engine import simulate_synthetic
from repro.host.pcie import PcieModel
from repro.lsm.options import Options
from repro.sim.cpu import CpuCostModel
from repro.sim.disk import DiskModel
from repro.sim.lsm_model import LsmShapeModel, ModelCompactionTask

#: LevelDB's write throttle: 1 ms sleep per write during slowdown.
SLOWDOWN_SLEEP_SECONDS = 1e-3

#: Per-entry storage overhead (varints, restarts, WAL record framing).
ENTRY_OVERHEAD_BYTES = 12


@dataclass(frozen=True)
class SystemConfig:
    """One simulated system."""

    mode: str = "leveldb"              # "leveldb" | "fcae"
    options: Options = field(default_factory=Options)
    fpga: FpgaConfig = CONFIG_9_INPUT
    cpu: CpuCostModel = field(default_factory=CpuCostModel)
    pcie: PcieModel = field(default_factory=PcieModel)
    disk_read_bandwidth: float = 500e6
    disk_write_bandwidth: float = 450e6
    data_size_bytes: int = 1 << 30
    #: "leveled" (LevelDB) or "tiered" (PebblesDB/SifrDB-style lazy
    #: compaction, the paper's §VII-C motivation for multi-input FCAE).
    compaction_style: str = "leveled"
    tier_fanout: int = 8
    #: Concurrent Compaction Units on the card (fcae mode): each offloaded
    #: task occupies the earliest-free unit, so tasks overlap up to this
    #: many ways (PCIe and disk stay shared).
    num_units: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("leveldb", "fcae"):
            raise InvalidArgumentError(f"unknown mode {self.mode!r}")
        if self.data_size_bytes <= 0:
            raise InvalidArgumentError("data_size_bytes must be positive")
        if self.compaction_style not in ("leveled", "tiered"):
            raise InvalidArgumentError(
                f"unknown compaction style {self.compaction_style!r}")
        if self.num_units < 1:
            raise InvalidArgumentError("num_units must be >= 1")


@dataclass
class SystemResult:
    """Measurements of one run."""

    mode: str
    user_bytes: int
    elapsed_seconds: float
    stall_seconds: float = 0.0
    slowdown_seconds: float = 0.0
    flush_seconds: float = 0.0
    sw_compaction_seconds: float = 0.0
    kernel_seconds: float = 0.0
    pcie_seconds: float = 0.0
    fpga_tasks: int = 0
    software_tasks: int = 0
    write_amplification: float = 1.0
    memtables_flushed: int = 0
    total_writes: int = 0
    slowdown_writes: int = 0
    stall_waits: list = field(default_factory=list)

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.user_bytes / self.elapsed_seconds / 1e6

    @property
    def pcie_fraction(self) -> float:
        """Table VIII's metric: DMA time over whole-system time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.pcie_seconds / self.elapsed_seconds

    def latency_percentile(self, percentile: float,
                           base_write_seconds: float) -> float:
        """Write-latency percentile from the simulated distribution.

        The distribution has three regimes: plain writes at the CPU
        write-path cost, *slowdown* writes carrying LevelDB's 1 ms sleep,
        and the writes that absorb a full stall (flush backlog or L0
        stop) — the paper's "write pause".
        """
        if not 0 <= percentile <= 100:
            raise InvalidArgumentError("percentile must be in [0, 100]")
        total = max(1, self.total_writes)
        rank = total * (1 - percentile / 100.0)
        stalls = sorted(self.stall_waits, reverse=True)
        if rank < len(stalls):
            index = int(rank)
            return base_write_seconds + stalls[min(index, len(stalls) - 1)]
        if rank < len(stalls) + self.slowdown_writes:
            return base_write_seconds + SLOWDOWN_SLEEP_SECONDS
        return base_write_seconds

    @property
    def max_write_pause(self) -> float:
        """Longest single stall a write absorbed."""
        return max(self.stall_waits, default=0.0)


_KERNEL_SPEED_CACHE: dict[tuple, float] = {}


def fpga_kernel_speed_mbps(config: FpgaConfig, user_key_length: int,
                           value_length: int, num_streams: int) -> float:
    """Kernel throughput from the shared pipeline timing model, cached
    per (config, key, value, streams) point."""
    num_streams = max(2, min(num_streams, config.num_inputs))
    cache_key = (config.num_inputs, config.value_width, config.w_in,
                 config.w_out, config.kv_fifo_depth,
                 config.output_buffer_width, config.variant,
                 user_key_length, value_length, num_streams)
    speed = _KERNEL_SPEED_CACHE.get(cache_key)
    if speed is None:
        pairs = max(200, 60_000 // max(1, value_length))
        report = simulate_synthetic(
            config, [pairs] * num_streams, user_key_length, value_length)
        speed = report.speed_mbps(config)
        _KERNEL_SPEED_CACHE[cache_key] = speed
    return speed


@dataclass
class _Inflight:
    finish: float
    task: ModelCompactionTask


class SystemSimulator:
    """Runs one configuration to completion."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.options = config.options
        self.cpu = config.cpu
        self.disk = DiskModel(read_bandwidth=config.disk_read_bandwidth,
                              write_bandwidth=config.disk_write_bandwidth)
        if config.compaction_style == "tiered":
            from repro.sim.lsm_model import TieredShapeModel
            self.model = TieredShapeModel(self.options,
                                          tier_fanout=config.tier_fanout)
        else:
            self.model = LsmShapeModel(self.options)
        self.result = SystemResult(mode=config.mode, user_bytes=0,
                                   elapsed_seconds=0.0)
        self._writer_clock = 0.0
        self._bg_clock = 0.0       # background core (baseline only)
        # One clock per Compaction Unit; offloads take the earliest-free.
        self._fpga_clocks = [0.0] * config.num_units
        self._flush_done = 0.0
        self._inflight: list[_Inflight] = []
        registry = obs.current_registry()
        self._stall_hist = None
        self._stall_window = None
        if registry is not None:
            from repro.obs.names import stall_histogram
            from repro.obs.window import WindowedHistogram, publish_window
            self._stall_hist = stall_histogram(registry, sim=config.mode)
            # Slides on *modeled* time: the clock reader sees the writer
            # core's clock, so "p99 right now" means the last simulated
            # minute, not the wall time the simulation took to compute.
            self._stall_window = WindowedHistogram(
                window_seconds=60.0,
                clock=lambda: self._writer_clock)
            publish_window(
                registry, "sim_stall_window_seconds",
                "Sliding-window write-stall quantiles on simulated time.",
                self._stall_window, sim=config.mode)

        entry_bytes = self.options.key_length + self.options.value_length
        self._entry_bytes = entry_bytes
        self._entries_per_mem = max(
            1, self.options.write_buffer_size
            // (entry_bytes + ENTRY_OVERHEAD_BYTES))
        self._user_per_mem = self._entries_per_mem * entry_bytes
        self._l0_file_bytes = int(
            self._entries_per_mem * (entry_bytes + ENTRY_OVERHEAD_BYTES))

    # ------------------------------------------------------------------
    # Compaction completion bookkeeping
    # ------------------------------------------------------------------

    def _settle(self, until: float) -> None:
        """Apply every compaction that completes by ``until``."""
        while self._inflight:
            earliest = min(self._inflight, key=lambda j: j.finish)
            if earliest.finish > until:
                return
            self._inflight.remove(earliest)
            self.model.apply(earliest.task)
            self._schedule_compactions(earliest.finish)

    def _earliest_inflight_finish(self) -> Optional[float]:
        if not self._inflight:
            return None
        return min(job.finish for job in self._inflight)

    def _record_stall(self, waited: float) -> None:
        """One write-pause episode: result list + stall histogram."""
        self.result.stall_seconds += waited
        if waited > 0:
            self.result.stall_waits.append(waited)
            if self._stall_hist is not None:
                self._stall_hist.observe(waited)
            if self._stall_window is not None:
                self._stall_window.observe(waited)

    # ------------------------------------------------------------------
    # Compaction execution backends
    # ------------------------------------------------------------------

    def _schedule_compactions(self, now: float) -> None:
        while True:
            task = self.model.pick_compaction()
            if task is None:
                return
            if self.config.mode == "leveldb":
                finish = self._run_software_task(task, now,
                                                 on_writer_core=False)
            else:
                n = self.config.fpga.num_inputs
                if task.fpga_input_count <= n:
                    finish = self._run_fpga_task(task, now)
                else:
                    # Fig 6: too many overlapping inputs — software path,
                    # which in FCAE mode costs the single host core.
                    finish = self._run_software_task(task, now,
                                                     on_writer_core=True)
            self._inflight.append(_Inflight(finish, task))

    def _run_software_task(self, task: ModelCompactionTask, now: float,
                           on_writer_core: bool) -> float:
        duration = self.cpu.system_compaction_seconds(
            task.input_bytes, self.options.key_length,
            self.options.value_length)
        if on_writer_core:
            start = max(now, self._writer_clock)
            self._writer_clock = start + duration
            core_end = self._writer_clock
        else:
            start = max(now, self._bg_clock)
            self._bg_clock = start + duration
            core_end = self._bg_clock
        self.result.software_tasks += 1
        self.result.sw_compaction_seconds += duration
        read_done = self.disk.reserve_read(start, task.input_bytes)
        write_done = self.disk.reserve_write(max(core_end, read_done),
                                             task.output_bytes)
        finish = max(core_end, write_done)
        obs.current_tracer().record_sim_span(
            "sim.compaction", start, finish, route="software",
            level=task.level, input_bytes=task.input_bytes,
            on_writer_core=on_writer_core)
        return finish

    def _run_fpga_task(self, task: ModelCompactionTask, now: float) -> float:
        config = self.config
        speed = fpga_kernel_speed_mbps(
            config.fpga, self.options.key_length, self.options.value_length,
            task.fpga_input_count)
        kernel = task.input_bytes / (speed * 1e6)
        pcie_in = config.pcie.transfer_seconds(task.input_bytes)
        pcie_out = config.pcie.transfer_seconds(task.output_bytes)
        marshal = self.cpu.offload_seconds(task.input_bytes)

        unit = min(range(len(self._fpga_clocks)),
                   key=self._fpga_clocks.__getitem__)
        start = max(now, self._fpga_clocks[unit])
        read_done = self.disk.reserve_read(start, task.input_bytes)
        kernel_start = max(start + marshal, read_done) + pcie_in
        kernel_end = kernel_start + kernel
        out_ready = kernel_end + pcie_out
        self._fpga_clocks[unit] = out_ready
        write_done = self.disk.reserve_write(out_ready, task.output_bytes)

        self.result.fpga_tasks += 1
        self.result.kernel_seconds += kernel
        self.result.pcie_seconds += pcie_in + pcie_out
        finish = max(out_ready, write_done)
        obs.current_tracer().record_sim_span(
            "sim.compaction", start, finish, route="fpga", unit=unit,
            level=task.level, input_bytes=task.input_bytes,
            kernel_seconds=kernel, pcie_seconds=pcie_in + pcie_out,
            marshal_seconds=marshal)
        return finish

    # ------------------------------------------------------------------
    # Foreground loop
    # ------------------------------------------------------------------

    def run(self) -> SystemResult:
        config = self.config
        target = config.data_size_bytes
        write_cost = self.cpu.write_seconds(self.options.key_length,
                                            self.options.value_length)
        flush_cpu = self.cpu.flush_seconds(self._l0_file_bytes)

        user_written = 0
        while user_written < target:
            self._settle(self._writer_clock)

            # L0 stop: block until a compaction completes, as LevelDB's
            # MakeRoomForWrite does.
            while self.model.stopped:
                finish = self._earliest_inflight_finish()
                if finish is None:
                    # Nothing running that could relieve L0 — force one.
                    self._schedule_compactions(self._writer_clock)
                    finish = self._earliest_inflight_finish()
                    if finish is None:
                        break
                waited = max(0.0, finish - self._writer_clock)
                self._record_stall(waited)
                self._writer_clock = max(self._writer_clock, finish)
                self._settle(self._writer_clock)

            # Fill one memtable.
            fill = self._entries_per_mem * write_cost
            self.result.total_writes += self._entries_per_mem
            if self.model.slowdown:
                penalty = self._entries_per_mem * SLOWDOWN_SLEEP_SECONDS
                fill += penalty
                self.result.slowdown_seconds += penalty
                self.result.slowdown_writes += self._entries_per_mem
            self._writer_clock += fill

            # Swap: wait for the previous flush (one immutable memtable).
            if self._flush_done > self._writer_clock:
                waited = self._flush_done - self._writer_clock
                self._record_stall(waited)
                self._writer_clock = self._flush_done
            self._settle(self._writer_clock)

            # Flush the immutable memtable.
            if config.mode == "leveldb":
                start = max(self._writer_clock, self._bg_clock)
                cpu_done = start + flush_cpu
                self._bg_clock = cpu_done
            else:
                # Single host core: the writer itself encodes the table,
                # overlapping the FPGA kernel (the paper's co-design win).
                start = self._writer_clock
                cpu_done = start + flush_cpu
                self._writer_clock = cpu_done
            flush_finish = self.disk.reserve_write(cpu_done,
                                                   self._l0_file_bytes)
            self._flush_done = flush_finish
            self.result.flush_seconds += flush_cpu
            self.result.memtables_flushed += 1
            obs.current_tracer().record_sim_span(
                "sim.flush", start, flush_finish,
                bytes=self._l0_file_bytes)
            self.model.add_l0_file(self._l0_file_bytes)
            self._schedule_compactions(flush_finish)

            user_written += self._user_per_mem

        # Drain outstanding work.
        end = self._writer_clock
        end = max(end, self._flush_done)
        while self._inflight:
            finish = self._earliest_inflight_finish()
            end = max(end, finish)
            self._settle(finish)
        self.result.user_bytes = user_written
        self.result.elapsed_seconds = end
        self.result.write_amplification = (
            self.model.stats.write_amplification())
        return self.result


def simulate_fillrandom(config: SystemConfig) -> SystemResult:
    """Run db_bench's fillrandom under ``config`` and return measurements."""
    return SystemSimulator(config).run()


# ----------------------------------------------------------------------
# YCSB mixed workloads (paper §VII-D / Fig 16)
# ----------------------------------------------------------------------

@dataclass
class YcsbSimResult:
    """Throughput of one YCSB workload under one system."""

    workload: str
    mode: str
    ops: int
    elapsed_seconds: float
    write_result: Optional[SystemResult]

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.ops / self.elapsed_seconds


def _cache_hit_rate(distribution: str, record_count: int,
                    db_bytes: int, cache_bytes: float) -> float:
    """Fraction of reads served without disk, from the access skew and
    the effective cache (block cache + OS page cache) coverage."""
    from repro.workloads.distributions import estimate_hot_fraction

    cached_fraction = min(1.0, cache_bytes / max(1, db_bytes))
    if distribution == "uniform":
        return cached_fraction
    if distribution == "latest":
        # The hottest items are the newest — still memtable/cache resident.
        return min(0.98, 0.5 + estimate_hot_fraction(
            0.99, record_count, cached_fraction) / 2 + 0.25)
    return estimate_hot_fraction(0.99, record_count, cached_fraction)


def simulate_ycsb(config: SystemConfig, workload, record_count: int,
                  op_count: int, cache_bytes: float = 4e9) -> YcsbSimResult:
    """Simulate one YCSB workload phase over a pre-loaded store.

    Client reads run on the foreground core between writes; read misses
    touch the shared disk.  The write stream reuses the fillrandom
    machinery — a simulator instance whose foreground loop is charged the
    interleaved read time via an inflated per-write cost.
    """
    options = config.options
    entry_bytes = options.key_length + options.value_length
    db_bytes = record_count * entry_bytes
    hit_rate = _cache_hit_rate(workload.distribution, record_count,
                               db_bytes, cache_bytes)
    cpu = config.cpu

    reads = int(op_count * (workload.read_fraction + workload.rmw_fraction))
    scans = int(op_count * workload.scan_fraction)
    writes = int(op_count * workload.write_fraction)

    disk_read_per_miss = (options.block_size / config.disk_read_bandwidth
                          + 150e-6)  # block + seek/index amortization
    read_cost_hit = cpu.read_hit_seconds()
    read_cost_miss = read_cost_hit + disk_read_per_miss
    avg_read = hit_rate * read_cost_hit + (1 - hit_rate) * read_cost_miss
    scan_blocks = max(1, (workload.max_scan_length // 2 * entry_bytes)
                      // options.block_size)
    avg_scan = (cpu.scan_seconds(workload.max_scan_length // 2)
                + (1 - hit_rate) * scan_blocks * disk_read_per_miss)

    read_seconds = reads * avg_read + scans * avg_scan

    if writes == 0:
        # Pure-read workloads never touch the compaction machinery; both
        # systems behave identically (the paper's Workload C point).
        return YcsbSimResult(workload.name, config.mode, op_count,
                             read_seconds, None)

    write_bytes = writes * entry_bytes
    write_config = SystemConfig(
        mode=config.mode, options=options, fpga=config.fpga, cpu=cpu,
        pcie=config.pcie,
        disk_read_bandwidth=config.disk_read_bandwidth,
        disk_write_bandwidth=config.disk_write_bandwidth,
        data_size_bytes=max(options.write_buffer_size, write_bytes))
    simulator = SystemSimulator(write_config)
    # Interleave: each write is preceded, on average, by reads/writes
    # read operations whose time rides the foreground clock.
    reads_per_write = (reads * avg_read + scans * avg_scan) / writes
    base_write = cpu.write_seconds(options.key_length, options.value_length)

    # Inflate the writer cost by patching the cpu model's write path via a
    # wrapper (keeps SystemSimulator generic).
    class _InterleavedCpu(CpuCostModel):
        def write_seconds(inner, key_length: int, value_length: int) -> float:  # noqa: N805
            return base_write + reads_per_write

    simulator.cpu = _InterleavedCpu()
    write_result = simulator.run()
    elapsed = write_result.elapsed_seconds

    # Read-side contention: while the baseline's background core is
    # saturated by software merges, client reads lose LLC/memory
    # bandwidth; offloading the merge to the card removes this (one of
    # the paper's qualitative claims for the read-mixed workloads).
    if config.mode == "leveldb" and elapsed > 0:
        merge_utilization = min(1.0, write_result.sw_compaction_seconds
                                / elapsed)
        elapsed += (read_seconds * cpu.read_contention_factor
                    * merge_utilization)

    return YcsbSimResult(workload.name, config.mode, op_count,
                         elapsed, write_result)


# ----------------------------------------------------------------------
# Open-loop arrival mode (multi-tenant SLO observatory)
# ----------------------------------------------------------------------
#
# The fillrandom loop above is *closed-loop*: the writer issues the next
# operation the instant the previous one returns, so a stall slows the
# arrival stream down and the latency distribution only ever sees
# service time — the classic coordinated-omission blind spot.  The
# open-loop mode below draws Poisson arrivals per tenant at a fixed
# offered rate and measures arrival-to-completion, so an op that arrives
# *during* a write stall is charged the queueing delay it actually
# suffered.  Compactions, flushes and stalls are additionally emitted
# into the flight-recorder journal with synthetic trace ids, so an SLO
# exemplar captured on a tail latency walks back to the maintenance work
# that caused it.


@dataclass(frozen=True)
class TenantSpec:
    """One open-loop client stream.

    Attributes
    ----------
    name:
        Tenant label carried on metrics, SLO accounting and journal
        events.
    arrival_rate:
        Offered load in operations/second; inter-arrival gaps are
        exponential (Poisson process).
    workload:
        YCSB mix name (``load``/``a``..``f``) deciding the read/write
        split and the default key distribution.
    distribution:
        Optional override of the mix's key distribution
        (``uniform`` | ``zipfian`` | ``latest``).
    record_count:
        Keyspace size the distribution samples over (drives the cache
        hit rate together with ``cache_bytes``).
    seed:
        Per-tenant RNG seed (arrivals, op mix and key choice).
    """

    name: str
    arrival_rate: float
    workload: str = "a"
    distribution: Optional[str] = None
    record_count: int = 100_000
    seed: int = 1

    def __post_init__(self) -> None:
        from repro.workloads import YCSB_WORKLOADS
        if not self.name:
            raise InvalidArgumentError("tenant needs a name")
        if self.arrival_rate <= 0:
            raise InvalidArgumentError("arrival_rate must be positive")
        if self.workload not in YCSB_WORKLOADS:
            raise InvalidArgumentError(
                f"unknown YCSB workload {self.workload!r}")
        if self.distribution not in (None, "uniform", "zipfian", "latest"):
            raise InvalidArgumentError(
                f"unknown distribution {self.distribution!r}")
        if self.record_count <= 0:
            raise InvalidArgumentError("record_count must be positive")


def _percentile(values: list, percentile: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not 0 <= percentile <= 100:
        raise InvalidArgumentError("percentile must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = int(percentile / 100.0 * len(ordered))
    return ordered[min(rank, len(ordered) - 1)]


@dataclass
class OpenLoopTenantStats:
    """Per-tenant measurements of one open-loop run."""

    name: str
    ops: int = 0
    reads: int = 0
    writes: int = 0
    stalled_ops: int = 0
    stall_seconds: float = 0.0
    #: Arrival-to-completion times (queueing + service) — the
    #: coordinated-omission-free distribution.
    latencies: list = field(default_factory=list)
    #: Service times alone, for comparison against the closed-loop view.
    service_seconds: list = field(default_factory=list)

    def latency_percentile(self, percentile: float) -> float:
        return _percentile(self.latencies, percentile)

    def service_percentile(self, percentile: float) -> float:
        return _percentile(self.service_seconds, percentile)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def mean_queue_delay(self) -> float:
        """Mean (latency − service): pure queueing/stall delay."""
        if not self.latencies:
            return 0.0
        total = sum(self.latencies) - sum(self.service_seconds)
        return max(0.0, total / len(self.latencies))


@dataclass
class OpenLoopResult:
    """Measurements of one multi-tenant open-loop run."""

    mode: str
    duration_seconds: float
    tenants: dict  # name -> OpenLoopTenantStats
    system: SystemResult
    #: ``(slo, tenant, policy)`` triples still firing at the end.
    slo_firing: list = field(default_factory=list)
    #: Every burn-rate alert transition, in order (mirrors the
    #: ``slo_alert`` journal events).
    alert_transitions: list = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(t.ops for t in self.tenants.values())

    @property
    def ops_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.total_ops / self.duration_seconds


class _TenantState:
    """Runtime RNG + key-chooser + stats for one tenant."""

    def __init__(self, spec: TenantSpec, entry_bytes: int,
                 cache_bytes: float):
        from repro.workloads import (LatestGenerator, UniformGenerator,
                                     YCSB_WORKLOADS, ZipfianGenerator)
        self.spec = spec
        mix = YCSB_WORKLOADS[spec.workload]
        self.write_fraction = mix.write_fraction
        self.rng = random.Random(spec.seed)
        distribution = spec.distribution or mix.distribution
        self.distribution = distribution
        db_bytes = spec.record_count * entry_bytes
        cached_fraction = min(1.0, cache_bytes / max(1, db_bytes))
        self.hot_count = max(1, int(cached_fraction * spec.record_count))
        if distribution == "zipfian":
            self.generator = ZipfianGenerator(spec.record_count,
                                              seed=spec.seed + 1)
        elif distribution == "latest":
            self.generator = LatestGenerator(spec.record_count,
                                             seed=spec.seed + 1)
        else:
            self.generator = UniformGenerator(spec.record_count,
                                              seed=spec.seed + 1)
        self.stats = OpenLoopTenantStats(spec.name)

    def next_is_write(self) -> bool:
        return self.rng.random() < self.write_fraction

    def next_read_hits(self) -> bool:
        """Sample one key; hit iff it falls in the cached hot set."""
        if self.distribution == "zipfian":
            # Popularity rank 0 is hottest — cache holds the top ranks.
            return self.generator.next_rank() < self.hot_count
        if self.distribution == "latest":
            # Hottest = newest; cache holds the most recent inserts.
            age = self.generator.insert_count - 1 - self.generator.next()
            return age < self.hot_count
        return self.generator.next() < self.hot_count


class OpenLoopSimulator(SystemSimulator):
    """Open-loop, multi-tenant variant of :class:`SystemSimulator`.

    Differences from the closed-loop ``run()``:

    * operations arrive per-tenant as Poisson processes and queue on the
      single foreground core; latency = completion − arrival;
    * the memtable fills one entry at a time, so stalls land on the
      exact ops that suffered them;
    * compactions/flushes/stalls are emitted as journal events carrying
      synthetic ``trace`` ids (``sim-N``) and simulated-time ``sim_ts``
      fields, and the op delayed by a stall hands that trace to the SLO
      engine as its exemplar — the journal then links a tail latency to
      the maintenance episode that caused it;
    * per-tenant arrival-to-completion quantiles slide on simulated time
      (``sim_op_latency_window_seconds``), and an optional
      :class:`~repro.obs.slo.SloEngine` on the simulated clock scores
      every op and raises burn-rate alerts mid-run.
    """

    def __init__(self, config: SystemConfig, tenants,
                 duration_seconds: float, slo_specs=(), events=None,
                 cache_bytes: float = 64e6,
                 latency_window_seconds: float = 60.0):
        super().__init__(config)
        self.tenants = tuple(tenants)
        if not self.tenants:
            raise InvalidArgumentError("open-loop run needs >= 1 tenant")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise InvalidArgumentError("tenant names must be unique")
        if duration_seconds <= 0:
            raise InvalidArgumentError("duration_seconds must be positive")
        self.duration_seconds = float(duration_seconds)
        self.cache_bytes = cache_bytes
        self.events = obs.resolve_events(events)
        self._registry = obs.current_registry()
        self._latency_window_seconds = latency_window_seconds
        self.slo = None
        if slo_specs:
            from repro.obs.slo import build_engine
            self.slo = build_engine(slo_specs, registry=self._registry,
                                    events=self.events,
                                    clock=lambda: self._writer_clock)
        self._trace_seq = 0
        self._task_trace: dict[int, str] = {}   # id(task) -> trace
        self._task_start: dict[int, float] = {}
        self._flush_trace: Optional[str] = None
        #: Trace of the stall episode that delayed the op currently (or
        #: next) being recorded; consumed by ``_record_op``.
        self._pending_stall_trace: Optional[str] = None
        self._tenant_windows: dict = {}
        self._mem_entries = 0

    # -- journal plumbing ----------------------------------------------

    def _next_trace(self) -> str:
        self._trace_seq += 1
        return f"sim-{self._trace_seq:04d}"

    def _emit_stall(self, reason: str, start: float, waited: float,
                    trace: Optional[str]) -> None:
        fields = {"reason": reason}
        if trace is not None:
            fields["trace"] = trace
        self.events.emit("stall_start", sim_ts=round(start, 9), **fields)
        self.events.emit("stall_finish", sim_ts=round(start + waited, 9),
                         seconds=round(waited, 9), **fields)

    def _earliest_inflight_trace(self) -> Optional[str]:
        if not self._inflight:
            return None
        earliest = min(self._inflight, key=lambda j: j.finish)
        return self._task_trace.get(id(earliest.task))

    # -- compaction hooks (journal events around the base backends) ----

    def _note_compaction_start(self, task, start: float, finish: float,
                               backend: str) -> None:
        trace = self._next_trace()
        self._task_trace[id(task)] = trace
        self._task_start[id(task)] = start
        self.events.emit(
            "compaction_start", trace=trace, backend=backend,
            level=task.level, output_level=task.output_level,
            input_bytes=task.input_bytes, sim_ts=round(start, 9))

    def _run_software_task(self, task, now, on_writer_core):
        finish = super()._run_software_task(task, now, on_writer_core)
        self._note_compaction_start(task, now, finish, "software")
        return finish

    def _run_fpga_task(self, task, now):
        finish = super()._run_fpga_task(task, now)
        self._note_compaction_start(task, now, finish, "fpga")
        return finish

    def _settle(self, until: float) -> None:
        # Base loop plus a compaction_finish event per applied task.
        while self._inflight:
            earliest = min(self._inflight, key=lambda j: j.finish)
            if earliest.finish > until:
                return
            self._inflight.remove(earliest)
            self.model.apply(earliest.task)
            task = earliest.task
            trace = self._task_trace.pop(id(task), None)
            start = self._task_start.pop(id(task), earliest.finish)
            if trace is not None:
                self.events.emit(
                    "compaction_finish", trace=trace, level=task.level,
                    output_level=task.output_level,
                    input_bytes=task.input_bytes,
                    output_bytes=task.output_bytes,
                    seconds=round(earliest.finish - start, 9),
                    sim_ts=round(earliest.finish, 9))
            self._schedule_compactions(earliest.finish)

    # -- per-tenant metric plumbing ------------------------------------

    def _tenant_window(self, tenant: str, op: str):
        if self._registry is None:
            return None
        key = (tenant, op)
        window = self._tenant_windows.get(key)
        if window is None:
            from repro.obs.window import WindowedHistogram, publish_window
            threshold = (self.slo.threshold_for(op, tenant)
                         if self.slo is not None else None)
            window = WindowedHistogram(
                window_seconds=self._latency_window_seconds,
                clock=lambda: self._writer_clock,
                exemplar_threshold=threshold)
            publish_window(
                self._registry, "sim_op_latency_window_seconds",
                "Sliding-window open-loop arrival-to-completion latency "
                "quantiles on *simulated* time, by tenant/op/quantile — "
                "coordinated-omission free (includes queueing delay).",
                window, sim=self.config.mode, tenant=tenant, op=op)
            self._tenant_windows[key] = window
        return window

    def _record_op(self, state: _TenantState, op: str, arrival: float,
                   completion: float, service: float,
                   stalled: bool) -> None:
        stats = state.stats
        latency = completion - arrival
        stats.ops += 1
        if op == "get":
            stats.reads += 1
        else:
            stats.writes += 1
        if stalled:
            stats.stalled_ops += 1
        stats.latencies.append(latency)
        stats.service_seconds.append(service)
        trace = self._pending_stall_trace
        self._pending_stall_trace = None
        window = self._tenant_window(state.spec.name, op)
        if window is not None:
            window.observe(latency, trace_id=trace)
        if self.slo is not None:
            self.slo.record(op, latency, tenant=state.spec.name,
                            trace_id=trace)

    # -- the foreground loop -------------------------------------------

    def _do_read(self, state: _TenantState, arrival: float,
                 read_hit_cost: float, read_miss_extra: float) -> None:
        start = max(self._writer_clock, arrival)
        self._settle(start)
        service = read_hit_cost
        if not state.next_read_hits():
            service += read_miss_extra
        self._writer_clock = start + service
        self._record_op(state, "get", arrival, self._writer_clock,
                        service, stalled=False)

    def _do_write(self, state: _TenantState, arrival: float,
                  write_cost: float, flush_cpu: float) -> None:
        self._settle(max(self._writer_clock, arrival))
        stalled = False
        # L0 stop: block until a compaction completes (MakeRoomForWrite).
        while self.model.stopped:
            finish = self._earliest_inflight_finish()
            if finish is None:
                self._schedule_compactions(self._writer_clock)
                finish = self._earliest_inflight_finish()
                if finish is None:
                    break
            relief = self._earliest_inflight_trace()
            waited = max(0.0, finish - self._writer_clock)
            self._record_stall(waited)
            state.stats.stall_seconds += waited
            stalled = True
            self._emit_stall("l0_stop", self._writer_clock, waited, relief)
            if relief is not None:
                self._pending_stall_trace = relief
            self._writer_clock = max(self._writer_clock, finish)
            self._settle(self._writer_clock)

        start = max(self._writer_clock, arrival)
        service = write_cost
        self.result.total_writes += 1
        if self.model.slowdown:
            service += SLOWDOWN_SLEEP_SECONDS
            self.result.slowdown_seconds += SLOWDOWN_SLEEP_SECONDS
            self.result.slowdown_writes += 1
        self._writer_clock = start + service
        self._record_op(state, "put", arrival, self._writer_clock,
                        service, stalled)

        self._mem_entries += 1
        if self._mem_entries >= self._entries_per_mem:
            self._mem_entries = 0
            self.result.user_bytes += self._user_per_mem
            self._flush_memtable(state, flush_cpu)

    def _flush_memtable(self, state: _TenantState,
                        flush_cpu: float) -> None:
        # Swap: wait for the previous flush (one immutable memtable).
        # The wait delays the *next* op via the writer clock; hand it
        # that flush's trace for exemplar attribution.
        if self._flush_done > self._writer_clock:
            waited = self._flush_done - self._writer_clock
            self._record_stall(waited)
            state.stats.stall_seconds += waited
            self._emit_stall("flush_backlog", self._writer_clock, waited,
                             self._flush_trace)
            if self._flush_trace is not None:
                self._pending_stall_trace = self._flush_trace
            self._writer_clock = self._flush_done
        self._settle(self._writer_clock)

        trace = self._next_trace()
        if self.config.mode == "leveldb":
            start = max(self._writer_clock, self._bg_clock)
            cpu_done = start + flush_cpu
            self._bg_clock = cpu_done
        else:
            # Single host core: the writer itself encodes the table.
            start = self._writer_clock
            cpu_done = start + flush_cpu
            self._writer_clock = cpu_done
        flush_finish = self.disk.reserve_write(cpu_done,
                                               self._l0_file_bytes)
        self._flush_done = flush_finish
        self._flush_trace = trace
        self.result.flush_seconds += flush_cpu
        self.result.memtables_flushed += 1
        self.events.emit("flush_start", trace=trace,
                         sim_ts=round(start, 9))
        self.events.emit("flush_finish", trace=trace,
                         bytes=self._l0_file_bytes,
                         seconds=round(flush_finish - start, 9),
                         sim_ts=round(flush_finish, 9))
        obs.current_tracer().record_sim_span(
            "sim.flush", start, flush_finish, bytes=self._l0_file_bytes)
        self.model.add_l0_file(self._l0_file_bytes)
        self._schedule_compactions(flush_finish)

    def run(self) -> OpenLoopResult:
        options = self.options
        write_cost = self.cpu.write_seconds(options.key_length,
                                            options.value_length)
        flush_cpu = self.cpu.flush_seconds(self._l0_file_bytes)
        read_hit_cost = self.cpu.read_hit_seconds()
        read_miss_extra = (options.block_size
                           / self.config.disk_read_bandwidth + 150e-6)

        entry_bytes = self._entry_bytes
        states = [_TenantState(spec, entry_bytes, self.cache_bytes)
                  for spec in self.tenants]

        # (arrival time, tiebreak, tenant index) min-heap of next
        # arrivals — one outstanding arrival per tenant stream.
        heap: list = []
        seq = 0
        for index, state in enumerate(states):
            gap = state.rng.expovariate(state.spec.arrival_rate)
            heapq.heappush(heap, (gap, seq, index))
            seq += 1
        while heap:
            arrival, _, index = heapq.heappop(heap)
            if arrival >= self.duration_seconds:
                continue  # stream done: no further arrivals scheduled
            state = states[index]
            gap = state.rng.expovariate(state.spec.arrival_rate)
            heapq.heappush(heap, (arrival + gap, seq, index))
            seq += 1
            if state.next_is_write():
                self._do_write(state, arrival, write_cost, flush_cpu)
            else:
                self._do_read(state, arrival, read_hit_cost,
                              read_miss_extra)

        # Drain outstanding background work.
        end = max(self._writer_clock, self._flush_done)
        while self._inflight:
            finish = self._earliest_inflight_finish()
            end = max(end, finish)
            self._settle(finish)
        self.result.elapsed_seconds = end
        self.result.write_amplification = (
            self.model.stats.write_amplification())

        firing: list = []
        transitions: list = []
        if self.slo is not None:
            self.slo.evaluate()
            firing = self.slo.firing()
            transitions = list(self.slo.alert_log)
        return OpenLoopResult(
            mode=self.config.mode,
            duration_seconds=self.duration_seconds,
            tenants={state.spec.name: state.stats for state in states},
            system=self.result,
            slo_firing=firing,
            alert_transitions=transitions)


def simulate_open_loop(config: SystemConfig, tenants,
                       duration_seconds: float, slo_specs=(),
                       events=None, cache_bytes: float = 64e6,
                       latency_window_seconds: float = 60.0
                       ) -> OpenLoopResult:
    """Run the open-loop multi-tenant simulation and return measurements."""
    return OpenLoopSimulator(
        config, tenants, duration_seconds, slo_specs=slo_specs,
        events=events, cache_bytes=cache_bytes,
        latency_window_seconds=latency_window_seconds).run()
