"""Comparer: Key Compare + Validity Check (paper §V-A).

Each selection round reads the head key of every input's key FIFO,
selects the smallest through a ``ceil(log2 N)``-deep compare tree, then
checks the winner's mark fields:

* an entry whose user key equals one already emitted is *shadowed* (an
  older version) — Drop;
* a deletion tombstone is Drop'd when the engine compacts into the
  bottommost level (no older data below could resurface);
* otherwise Keep, and the winner's ``Input No.`` plus the Drop flag go to
  the Key-Value Transfer module.

The round costs ``(2 + ceil(log2 N)) * L_key`` cycles — key read,
compare tree, existence check (Table II/III) — charged by the engine's
pipeline simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lsm.internal import (
    InternalKeyComparator,
    extract_user_key,
    parse_internal_key,
)


@dataclass(frozen=True)
class Selection:
    """Outcome of one Comparer round."""

    input_no: int
    internal_key: bytes
    drop: bool
    reason: str  # "keep" | "shadowed" | "tombstone"


class KeyCompare:
    """Selects the smallest head key among inputs."""

    def __init__(self, comparator: InternalKeyComparator):
        self._comparator = comparator
        self.rounds = 0

    def select(self, heads: dict[int, bytes]) -> int:
        """Given ``input_no -> head key`` for non-exhausted inputs, return
        the winning input number."""
        if not heads:
            raise ValueError("select with no live inputs")
        self.rounds += 1
        best_input, best_key = None, None
        for input_no in sorted(heads):
            key = heads[input_no]
            if best_key is None or self._comparator.compare(key, best_key) < 0:
                best_input, best_key = input_no, key
        return best_input


class ValidityCheck:
    """Drops shadowed versions and (at the bottom level) tombstones."""

    def __init__(self, comparator: InternalKeyComparator,
                 drop_deletions: bool):
        self._user_compare = comparator.user_comparator.compare
        self._drop_deletions = drop_deletions
        self._last_user_key: bytes | None = None
        self.dropped_shadowed = 0
        self.dropped_tombstones = 0

    def check(self, internal_key: bytes) -> tuple[bool, str]:
        """Return ``(drop, reason)`` and update the duplicate tracker."""
        user_key = extract_user_key(internal_key)
        if (self._last_user_key is not None
                and self._user_compare(user_key, self._last_user_key) == 0):
            self.dropped_shadowed += 1
            return True, "shadowed"
        self._last_user_key = user_key
        if self._drop_deletions and parse_internal_key(internal_key).is_deletion:
            self.dropped_tombstones += 1
            return True, "tombstone"
        return False, "keep"


class Comparer:
    """Key Compare and Validity Check composed, as in Fig 2."""

    def __init__(self, comparator: InternalKeyComparator,
                 drop_deletions: bool):
        self.key_compare = KeyCompare(comparator)
        self.validity = ValidityCheck(comparator, drop_deletions)

    def round(self, heads: dict[int, bytes]) -> Selection:
        input_no = self.key_compare.select(heads)
        internal_key = heads[input_no]
        drop, reason = self.validity.check(internal_key)
        return Selection(input_no=input_no, internal_key=internal_key,
                         drop=drop, reason=reason)
