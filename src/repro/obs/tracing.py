"""Span-based tracing with a JSONL event log.

A :class:`Tracer` records nested phases of the write path — write →
flush → compaction pick → route → fpga kernel/pcie/marshal or software
merge — against **both** clocks that matter in this repo:

* **wall clock** (``time.perf_counter``): what the host actually spent;
* **simulated time**: either read from a :class:`repro.sim.clock.
  VirtualClock` attached to the tracer, or supplied as a *modeled*
  duration by the cost models (PCIe transfer seconds, kernel cycles →
  seconds) via :meth:`Tracer.phase`.

Finished spans stream to a JSONL sink (one object per line, children
before parents because spans are emitted at completion) and/or accumulate
in memory for assertions.  The schema per line::

    {"type": "span", "id": 7, "parent": 5, "name": "phase:kernel",
     "start_wall": ..., "end_wall": ..., "wall_seconds": ...,
     "start_sim": ..., "end_sim": ..., "sim_seconds": ...,
     "attrs": {"level": 1, "route": "fpga"}}

``sim_seconds`` is the modeled duration when one was recorded, else the
simulated-clock interval, else ``null``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Iterator, Optional


class Span:
    """One traced phase.  Mutable until its ``with`` block exits."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start_wall",
                 "end_wall", "start_sim", "end_sim", "sim_seconds")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 attrs: dict):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_sim: Optional[float] = None
        self.end_sim: Optional[float] = None
        self.sim_seconds: Optional[float] = None

    def set(self, **attrs) -> None:
        """Attach attributes to the span (route decision, byte counts)."""
        self.attrs.update(attrs)

    @property
    def wall_seconds(self) -> float:
        return self.end_wall - self.start_wall

    def to_dict(self) -> dict:
        sim_seconds = self.sim_seconds
        if sim_seconds is None and self.start_sim is not None:
            sim_seconds = (self.end_sim or self.start_sim) - self.start_sim
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "wall_seconds": self.wall_seconds,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "sim_seconds": sim_seconds,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`; accepts the same
    calls and discards them."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    sim_seconds = None
    wall_seconds = 0.0

    def set(self, **attrs) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer: the default when no trace sink is installed,
    so instrumentation costs one method call on hot paths."""

    spans: list = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def phase(self, name: str, seconds: float, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record_sim_span(self, name: str, sim_start: float, sim_end: float,
                        **attrs) -> _NullSpan:
        return _NULL_SPAN

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans; optionally streams them to a JSONL file.

    Parameters
    ----------
    sim_clock:
        A ``repro.sim.clock.VirtualClock`` (anything with a ``.now``
        float attribute); when present, spans record simulated start/end
        timestamps alongside wall-clock ones.
    sink_path / sink:
        Stream finished spans to a file as JSON lines.  ``sink_path`` is
        opened (and closed by :meth:`close`); ``sink`` is any writable
        text handle the caller owns.
    keep_spans:
        Retain finished spans in :attr:`spans` (on by default; turn off
        for long streaming runs to bound memory).
    """

    def __init__(self, sim_clock=None, sink_path: Optional[str] = None,
                 sink: Optional[IO[str]] = None, keep_spans: bool = True):
        self.sim_clock = sim_clock
        self.spans: list[Span] = []
        self.keep_spans = keep_spans
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._owns_sink = sink_path is not None
        self._sink: Optional[IO[str]] = sink
        if sink_path is not None:
            self._sink = open(sink_path, "w")

    # ------------------------------------------------------------------
    # Span stack (per thread)
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _sim_now(self) -> Optional[float]:
        return self.sim_clock.now if self.sim_clock is not None else None

    def _record(self, span: Span) -> None:
        with self._lock:
            if self.keep_spans:
                self.spans.append(span)
            if self._sink is not None:
                self._sink.write(json.dumps(span.to_dict()) + "\n")

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; attributes may be added via ``span.set``."""
        parent = self.current_span
        span = Span(next(self._ids),
                    parent.span_id if parent else None, name, attrs)
        span.start_wall = time.perf_counter()
        span.start_sim = self._sim_now()
        self._stack().append(span)
        try:
            yield span
        finally:
            self._stack().pop()
            span.end_wall = time.perf_counter()
            span.end_sim = self._sim_now()
            self._record(span)

    def phase(self, name: str, seconds: float, **attrs) -> Span:
        """Record a *modeled* phase under the current span: a completed
        child whose duration comes from a cost model (PCIe DMA time,
        kernel cycles → seconds) rather than from a clock."""
        parent = self.current_span
        span = Span(next(self._ids),
                    parent.span_id if parent else None, name, attrs)
        now = time.perf_counter()
        span.start_wall = span.end_wall = now
        span.start_sim = span.end_sim = self._sim_now()
        span.sim_seconds = float(seconds)
        self._record(span)
        return span

    def record_sim_span(self, name: str, sim_start: float, sim_end: float,
                        **attrs) -> Span:
        """Record a completed span positioned on the simulated timeline
        (used by the discrete-event system simulator, whose phases do
        not occupy wall-clock time)."""
        parent = self.current_span
        span = Span(next(self._ids),
                    parent.span_id if parent else None, name, attrs)
        now = time.perf_counter()
        span.start_wall = span.end_wall = now
        span.start_sim = float(sim_start)
        span.end_sim = float(sim_end)
        span.sim_seconds = float(sim_end) - float(sim_start)
        self._record(span)
        return span

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """Dump retained spans as JSON lines."""
        with open(path, "w") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()) + "\n")

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None


def read_jsonl(path: str) -> list[dict]:
    """Load a trace file back into dicts (tests, analysis scripts)."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def span_children(events: list[dict], parent_id: int) -> list[dict]:
    """Direct children of ``parent_id`` within one trace."""
    return [e for e in events if e.get("parent") == parent_id]
