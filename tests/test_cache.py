"""LRU cache: eviction order, byte accounting, hit/miss counters."""

import pytest

from repro.lsm.cache import LRUCache


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(100)
        cache.put("a", b"12345")
        assert cache.get("a") == b"12345"

    def test_miss_returns_none(self):
        cache = LRUCache(100)
        assert cache.get("missing") is None

    def test_usage_tracks_bytes(self):
        cache = LRUCache(100)
        cache.put("a", b"x" * 30)
        cache.put("b", b"y" * 20)
        assert cache.usage == 50
        assert len(cache) == 2

    def test_overwrite_replaces_bytes(self):
        cache = LRUCache(100)
        cache.put("a", b"x" * 30)
        cache.put("a", b"y" * 10)
        assert cache.usage == 10
        assert cache.get("a") == b"y" * 10

    def test_erase(self):
        cache = LRUCache(100)
        cache.put("a", b"abc")
        cache.erase("a")
        assert cache.get("a") is None
        assert cache.usage == 0

    def test_erase_missing_is_noop(self):
        cache = LRUCache(100)
        cache.erase("nothing")

    def test_clear(self):
        cache = LRUCache(100)
        cache.put("a", b"abc")
        cache.clear()
        assert len(cache) == 0
        assert cache.usage == 0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(30)
        cache.put("a", b"x" * 10)
        cache.put("b", b"x" * 10)
        cache.put("c", b"x" * 10)
        cache.put("d", b"x" * 10)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") is not None

    def test_get_refreshes_recency(self):
        cache = LRUCache(30)
        cache.put("a", b"x" * 10)
        cache.put("b", b"x" * 10)
        cache.put("c", b"x" * 10)
        cache.get("a")             # a is now most recent
        cache.put("d", b"x" * 10)  # evicts "b"
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_oversized_entry_evicts_everything_else(self):
        cache = LRUCache(50)
        cache.put("a", b"x" * 20)
        cache.put("big", b"y" * 45)
        assert cache.get("a") is None
        assert cache.get("big") is not None

    def test_entry_larger_than_capacity(self):
        cache = LRUCache(10)
        cache.put("huge", b"z" * 100)
        # Nothing can hold it; the put is rejected outright.
        assert cache.get("huge") is None
        assert cache.usage == 0
        assert len(cache) == 0

    def test_oversized_put_keeps_existing_entries(self):
        """Regression: an oversized value used to evict the whole cache
        (and then itself) — it must leave resident entries alone."""
        cache = LRUCache(50)
        cache.put("a", b"x" * 20)
        cache.put("b", b"y" * 20)
        cache.put("huge", b"z" * 100)
        assert cache.get("a") == b"x" * 20
        assert cache.get("b") == b"y" * 20
        assert cache.get("huge") is None
        assert cache.usage == 40
        assert len(cache) == 2

    def test_zero_capacity_stores_nothing(self):
        cache = LRUCache(0)
        cache.put("a", b"data")
        assert cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestCounters:
    def test_hits_and_misses(self):
        cache = LRUCache(100)
        cache.put("a", b"1")
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.hits == 2
        assert cache.misses == 1


class TestThreadSafety:
    def test_concurrent_put_get_erase(self):
        """The cache is shared by background flush/compaction workers;
        hammer it from several threads and check it stays consistent."""
        import threading

        cache = LRUCache(4096)
        errors = []

        def worker(seed):
            try:
                for i in range(400):
                    k = f"k{(seed * 31 + i) % 64}"
                    cache.put(k, bytes(32))
                    cache.get(k)
                    if i % 7 == 0:
                        cache.erase(k)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert 0 <= cache.usage <= 4096
        assert len(cache) <= 64
