"""SLO engine: declarative objectives, error budgets, burn-rate alerts.

This module turns the raw observability substrate (metrics registry,
windowed histograms, flight-recorder journal) into an opinionated
answer to "are we violating the SLO, and how fast?":

* :class:`SloSpec` — a declarative objective: *latency* ("99% of gets
  under 5 ms") or *availability* ("99.9% of ops succeed"), scoped to an
  operation and a tenant (``"*"`` wildcards).  Specs parse from plain
  dicts, from TOML (``[[slo]]`` array-of-tables), and ride into the
  store via ``Options.slo_specs``.
* :class:`SloEngine` — per-(spec, tenant) good/bad accounting over a
  sliding window ring, Google-SRE-style **multi-window multi-burn-rate**
  alerting (the default policies pair a 5m/1h fast burn at 14.4x with a
  1h/6h slow burn at 6x), and error-budget-remaining gauges.  Alert
  transitions are emitted as ``slo_alert`` events into the journal;
  tail violations that carry a trace id are emitted as ``exemplar``
  events, closing the loop from "p99 violated" to the compaction or
  stall span that caused it.

The engine runs on a pluggable clock: wall time in a live store,
simulated time in the discrete-event simulators — burn windows slide on
modeled seconds, so a 5-minute fast burn can be exercised in
milliseconds of real time.

Burn rate follows the SRE workbook definition::

    burn = (bad_fraction over window) / (1 - target)

A burn rate of 1.0 consumes exactly the error budget over the SLO
period; an alert policy fires when *both* its short and long windows
burn at >= ``factor`` (the short window makes the alert fast, the long
window makes it not flap).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Optional, Sequence

from repro.errors import InvalidArgumentError
from repro.obs.events import NULL_JOURNAL

__all__ = [
    "BurnPolicy", "DEFAULT_POLICIES", "SloSpec", "SloEngine",
    "WindowedCounter", "parse_slo_specs", "parse_slo_toml",
    "load_slo_file",
]


class BurnPolicy:
    """One multi-window burn-rate alerting rule.

    Fires when the burn rate over *both* ``short_seconds`` and
    ``long_seconds`` is at least ``factor``.  The canonical fast-burn
    policy (5m/1h at 14.4x) pages on a budget that would be gone in two
    hours; the slow-burn policy (1h/6h at 6x) tickets on sustained
    slow bleed."""

    __slots__ = ("name", "short_seconds", "long_seconds", "factor")

    def __init__(self, name: str, short_seconds: float,
                 long_seconds: float, factor: float):
        if short_seconds <= 0 or long_seconds <= 0:
            raise InvalidArgumentError("burn windows must be positive")
        if long_seconds < short_seconds:
            raise InvalidArgumentError(
                f"policy {name!r}: long window {long_seconds} shorter "
                f"than short window {short_seconds}")
        if factor <= 0:
            raise InvalidArgumentError("burn factor must be positive")
        self.name = str(name)
        self.short_seconds = float(short_seconds)
        self.long_seconds = float(long_seconds)
        self.factor = float(factor)

    def __repr__(self) -> str:
        return (f"BurnPolicy({self.name!r}, {self.short_seconds}, "
                f"{self.long_seconds}, {self.factor})")


#: Google-SRE-workbook default pairing: fast page, slow ticket.
DEFAULT_POLICIES = (
    BurnPolicy("fast", 300.0, 3600.0, 14.4),
    BurnPolicy("slow", 3600.0, 21600.0, 6.0),
)

_OBJECTIVES = ("latency", "availability")


class SloSpec:
    """One declarative objective.

    Parameters
    ----------
    name:
        Unique id, used in metric labels and journal events.
    objective:
        ``"latency"`` — an op is *bad* when it fails or exceeds
        ``threshold_seconds``; ``"availability"`` — bad only on failure.
    target:
        Fraction of ops that must be good, in (0, 1); the error budget
        is ``1 - target``.
    threshold_seconds:
        Latency threshold (required for latency objectives).
    op:
        Operation this spec scores (``"get"``, ``"put"``, ...) or
        ``"*"`` for all.
    tenant:
        Tenant this spec scores, or ``"*"`` to account each tenant
        against its own budget.
    policies:
        Burn-rate alert policies (defaults to :data:`DEFAULT_POLICIES`).
    """

    __slots__ = ("name", "objective", "target", "threshold_seconds",
                 "op", "tenant", "policies")

    def __init__(self, name: str, objective: str = "latency",
                 target: float = 0.99,
                 threshold_seconds: Optional[float] = None,
                 op: str = "*", tenant: str = "*",
                 policies: Sequence[BurnPolicy] = DEFAULT_POLICIES):
        if not name:
            raise InvalidArgumentError("SLO spec needs a name")
        if objective not in _OBJECTIVES:
            raise InvalidArgumentError(
                f"unknown objective {objective!r} (expected one of "
                f"{_OBJECTIVES})")
        if not 0.0 < target < 1.0:
            raise InvalidArgumentError(
                f"SLO target must be in (0, 1), got {target}")
        if objective == "latency":
            if threshold_seconds is None or threshold_seconds <= 0:
                raise InvalidArgumentError(
                    "latency objective requires threshold_seconds > 0")
        if not policies:
            raise InvalidArgumentError("SLO spec needs >= 1 burn policy")
        self.name = str(name)
        self.objective = objective
        self.target = float(target)
        self.threshold_seconds = (None if threshold_seconds is None
                                  else float(threshold_seconds))
        self.op = str(op)
        self.tenant = str(tenant)
        # Accept dict policies everywhere (not just from_dict) so call
        # sites can write literal policy tables inline.
        self.policies = tuple(
            p if isinstance(p, BurnPolicy) else BurnPolicy(
                p["name"], p["short_seconds"], p["long_seconds"],
                p["factor"])
            for p in policies)

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction: ``1 - target``."""
        return 1.0 - self.target

    def matches(self, op: str, tenant: str) -> bool:
        return (self.op in ("*", op)) and (self.tenant in ("*", tenant))

    def __repr__(self) -> str:
        return (f"SloSpec({self.name!r}, {self.objective!r}, "
                f"target={self.target}, op={self.op!r}, "
                f"tenant={self.tenant!r})")

    @classmethod
    def from_dict(cls, data: dict) -> "SloSpec":
        """Build a spec from a plain mapping (dict literal or one TOML
        ``[[slo]]`` table).

        Policies come either as ``policies = [{name=..., short_seconds=...,
        long_seconds=..., factor=...}, ...]`` or as flat scalar keys
        (``fast_short``/``fast_long``/``fast_factor`` and the ``slow_*``
        trio) so the mini-TOML fallback parser, which only understands
        scalars, can still configure them."""
        data = dict(data)
        policies = data.pop("policies", None)
        if policies is not None:
            built = tuple(
                p if isinstance(p, BurnPolicy) else BurnPolicy(
                    p["name"], p["short_seconds"], p["long_seconds"],
                    p["factor"])
                for p in policies)
        else:
            built = _policies_from_flat(data)
        known = ("name", "objective", "target", "threshold_seconds",
                 "op", "tenant")
        unknown = set(data) - set(known)
        if unknown:
            raise InvalidArgumentError(
                f"unknown SLO spec keys: {sorted(unknown)}")
        return cls(policies=built,
                   **{key: data[key] for key in known if key in data})


def _policies_from_flat(data: dict) -> tuple:
    """Pop ``fast_*``/``slow_*`` scalar keys into policies; absent keys
    fall back to the matching default window/factor."""
    out = []
    touched = False
    for default in DEFAULT_POLICIES:
        prefix = default.name
        short = data.pop(f"{prefix}_short", None)
        long_ = data.pop(f"{prefix}_long", None)
        factor = data.pop(f"{prefix}_factor", None)
        if short is None and long_ is None and factor is None:
            out.append(default)
            continue
        touched = True
        out.append(BurnPolicy(
            prefix,
            default.short_seconds if short is None else float(short),
            default.long_seconds if long_ is None else float(long_),
            default.factor if factor is None else float(factor)))
    return tuple(out) if touched else DEFAULT_POLICIES


def parse_slo_specs(specs) -> tuple:
    """Normalize a heterogeneous sequence of ``SloSpec`` / dict entries
    (what ``Options.slo_specs`` accepts) into a tuple of specs."""
    out = []
    seen = set()
    for entry in specs:
        spec = (entry if isinstance(entry, SloSpec)
                else SloSpec.from_dict(entry))
        if spec.name in seen:
            raise InvalidArgumentError(
                f"duplicate SLO spec name {spec.name!r}")
        seen.add(spec.name)
        out.append(spec)
    return tuple(out)


# ----------------------------------------------------------------------
# TOML loading.  Python 3.11+ ships tomllib; on 3.10 we fall back to a
# deliberately tiny parser that understands exactly the subset the SLO
# file format needs: ``[[slo]]`` array-of-tables with scalar values.
# ----------------------------------------------------------------------

try:  # pragma: no cover - which branch runs depends on the interpreter
    import tomllib as _tomllib
except ImportError:  # pragma: no cover
    _tomllib = None


def _parse_scalar(raw: str, lineno: int):
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in ("'", '"'):
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        if any(ch in raw for ch in ".eE") and not raw.startswith("0x"):
            return float(raw)
        return int(raw)
    except ValueError:
        raise InvalidArgumentError(
            f"SLO TOML line {lineno}: unsupported value {raw!r} "
            f"(mini parser accepts strings, numbers, booleans)") from None


def _mini_toml_slo(text: str) -> list:
    """``[[slo]]`` tables of scalar ``key = value`` pairs, nothing else."""
    tables: list[dict] = []
    current: Optional[dict] = None
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "[[slo]]":
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            raise InvalidArgumentError(
                f"SLO TOML line {lineno}: only [[slo]] tables are "
                f"supported, got {line!r}")
        if "=" not in line:
            raise InvalidArgumentError(
                f"SLO TOML line {lineno}: expected key = value, got "
                f"{line!r}")
        if current is None:
            raise InvalidArgumentError(
                f"SLO TOML line {lineno}: key outside a [[slo]] table")
        key, raw = line.split("=", 1)
        current[key.strip()] = _parse_scalar(raw, lineno)
    return tables


def parse_slo_toml(text: str) -> tuple:
    """Parse SLO specs from TOML text (``[[slo]]`` array-of-tables)."""
    if _tomllib is not None:
        tables = _tomllib.loads(text).get("slo", [])
    else:
        tables = _mini_toml_slo(text)
    return parse_slo_specs(tables)


def load_slo_file(path: str) -> tuple:
    """Read ``path`` and parse it with :func:`parse_slo_toml`."""
    with open(path) as handle:
        return parse_slo_toml(handle.read())


# ----------------------------------------------------------------------
# Sliding good/bad accounting
# ----------------------------------------------------------------------


class _CounterSlice:
    __slots__ = ("slot", "good", "bad")

    def __init__(self):
        self.slot = -1
        self.good = 0
        self.bad = 0


class WindowedCounter:
    """Slot-stamped ring of good/bad counts over a pluggable clock.

    One ring covers the longest burn window at the resolution of the
    shortest; :meth:`totals` then reads any sub-window out of the same
    ring, so the fast and slow policies share storage.  Not internally
    locked — the :class:`SloEngine` serializes access."""

    __slots__ = ("_slice_seconds", "_clock", "_ring")

    def __init__(self, horizon_seconds: float, slice_seconds: float,
                 clock):
        if horizon_seconds <= 0 or slice_seconds <= 0:
            raise InvalidArgumentError(
                "horizon and slice width must be positive")
        self._slice_seconds = float(slice_seconds)
        self._clock = clock
        n = int(math.ceil(horizon_seconds / slice_seconds)) + 1
        self._ring = [_CounterSlice() for _ in range(n)]

    def _slice_for(self, slot: int) -> _CounterSlice:
        entry = self._ring[slot % len(self._ring)]
        if entry.slot != slot:
            entry.slot = slot
            entry.good = 0
            entry.bad = 0
        return entry

    def add(self, good: int = 0, bad: int = 0) -> None:
        slot = int(self._clock() / self._slice_seconds)
        entry = self._slice_for(slot)
        entry.good += good
        entry.bad += bad

    def totals(self, window_seconds: float) -> tuple[int, int]:
        """``(good, bad)`` over the trailing ``window_seconds``."""
        now_slot = int(self._clock() / self._slice_seconds)
        span = int(math.ceil(window_seconds / self._slice_seconds))
        span = min(span, len(self._ring))
        oldest = now_slot - span + 1
        good = bad = 0
        for entry in self._ring:
            if oldest <= entry.slot <= now_slot:
                good += entry.good
                bad += entry.bad
        return good, bad

    def bad_fraction(self, window_seconds: float) -> Optional[float]:
        """Bad fraction over the window, ``None`` when no samples."""
        good, bad = self.totals(window_seconds)
        total = good + bad
        if total == 0:
            return None
        return bad / total


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class SloEngine:
    """Error-budget accounting and burn-rate alerting over live traffic.

    The hot-path entry point is :meth:`record` — classify one operation
    against every matching spec and bucket it good/bad.  Evaluation
    (:meth:`evaluate`) recomputes burn rates, updates the gauges, and
    emits ``slo_alert`` journal events on firing/resolved transitions;
    :meth:`record` self-triggers it at most every ``eval_interval``
    clock seconds so callers never need a background thread.

    Parameters
    ----------
    specs:
        ``SloSpec`` instances (or dicts; normalized via
        :func:`parse_slo_specs`).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when set,
        the engine publishes ``slo_events_total``, ``slo_burn_rate``,
        ``slo_error_budget_remaining`` and ``slo_alerts_total``.
    events:
        Journal for ``slo_alert`` / ``exemplar`` events (defaults to the
        null journal).
    clock:
        Seconds callable (defaults to ``time.monotonic``); simulators
        pass their virtual clock.
    eval_interval:
        Minimum clock seconds between self-triggered evaluations.
    exemplar_min_interval:
        Per-(spec, tenant) rate limit on ``exemplar`` journal events so
        a storm of violations does not flood the journal.
    """

    def __init__(self, specs, registry=None, events=None, clock=None,
                 eval_interval: float = 1.0,
                 exemplar_min_interval: float = 1.0):
        self.specs = parse_slo_specs(specs)
        if not self.specs:
            raise InvalidArgumentError("SloEngine needs >= 1 spec")
        self._registry = registry
        self._events = events if events is not None else NULL_JOURNAL
        self._clock = clock if clock is not None else time.monotonic
        self._eval_interval = float(eval_interval)
        self._exemplar_min_interval = float(exemplar_min_interval)
        self._lock = threading.Lock()
        shortest = min(p.short_seconds for s in self.specs
                       for p in s.policies)
        self._horizon = max(p.long_seconds for s in self.specs
                            for p in s.policies)
        self._slice_seconds = shortest / 5.0
        # (spec index, tenant) -> WindowedCounter
        self._counters: dict[tuple[int, str], WindowedCounter] = {}
        # (spec index, tenant, policy name) -> currently firing?
        self._alert_state: dict[tuple[int, str, str], bool] = {}
        self._last_eval = float("-inf")
        self._last_exemplar: dict[tuple[int, str], float] = {}
        # Cached metric children (get-or-create once, inc forever).
        self._event_children: dict = {}
        self._alert_children: dict = {}
        #: Every alert transition ever emitted, in order — the in-memory
        #: mirror of the ``slo_alert`` journal stream, for callers
        #: (simulators, tests) that have no journal attached.
        self.alert_log: list = []

    # -- recording ------------------------------------------------------

    def threshold_for(self, op: str,
                      tenant: str = "*") -> Optional[float]:
        """Tightest latency threshold any matching spec applies — what a
        windowed histogram should use as its exemplar threshold."""
        thresholds = [s.threshold_seconds for s in self.specs
                      if s.objective == "latency"
                      and s.threshold_seconds is not None
                      and s.matches(op, tenant)]
        return min(thresholds) if thresholds else None

    def _counter_for(self, index: int, tenant: str) -> WindowedCounter:
        key = (index, tenant)
        counter = self._counters.get(key)
        if counter is None:
            counter = WindowedCounter(self._horizon, self._slice_seconds,
                                      self._clock)
            self._counters[key] = counter
        return counter

    def _count_event(self, spec: SloSpec, tenant: str,
                     outcome: str) -> None:
        if self._registry is None:
            return
        key = (spec.name, tenant, outcome)
        child = self._event_children.get(key)
        if child is None:
            child = self._registry.counter(
                "slo_events_total",
                "Operations classified against an SLO, by outcome.",
                slo=spec.name, tenant=tenant, outcome=outcome)
            self._event_children[key] = child
        child.inc()

    def record(self, op: str, seconds: float, ok: bool = True,
               tenant: str = "default",
               trace_id: Optional[str] = None) -> None:
        """Score one operation against every matching spec."""
        emit_exemplars = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if not spec.matches(op, tenant):
                    continue
                if spec.objective == "latency":
                    bad = (not ok) or seconds > spec.threshold_seconds
                else:
                    bad = not ok
                self._counter_for(index, tenant).add(
                    good=0 if bad else 1, bad=1 if bad else 0)
                self._count_event(spec, tenant,
                                  "bad" if bad else "good")
                if (bad and trace_id is not None
                        and spec.objective == "latency"):
                    now = self._clock()
                    key = (index, tenant)
                    last = self._last_exemplar.get(key, float("-inf"))
                    if now - last >= self._exemplar_min_interval:
                        self._last_exemplar[key] = now
                        emit_exemplars.append(
                            {"slo": spec.name, "tenant": tenant,
                             "op": op, "trace": trace_id,
                             "value": seconds,
                             "threshold": spec.threshold_seconds})
        for fields in emit_exemplars:
            self._events.emit("exemplar", **fields)
        now = self._clock()
        if now - self._last_eval >= self._eval_interval:
            self.evaluate()

    # -- evaluation -----------------------------------------------------

    def _burn_rate(self, counter: WindowedCounter, spec: SloSpec,
                   window_seconds: float) -> Optional[float]:
        fraction = counter.bad_fraction(window_seconds)
        if fraction is None:
            return None
        return fraction / spec.error_budget

    def _count_alert(self, spec: SloSpec, tenant: str, policy: str,
                     state: str) -> None:
        if self._registry is None:
            return
        key = (spec.name, tenant, policy, state)
        child = self._alert_children.get(key)
        if child is None:
            child = self._registry.counter(
                "slo_alerts_total",
                "Burn-rate alert transitions.",
                slo=spec.name, tenant=tenant, policy=policy, state=state)
            self._alert_children[key] = child
        child.inc()

    def evaluate(self) -> list[dict]:
        """Recompute burn rates, publish gauges, emit alert transitions.

        Returns the ``slo_alert`` records emitted by this evaluation
        (empty when no state changed)."""
        transitions = []
        with self._lock:
            self._last_eval = self._clock()
            for (index, tenant), counter in self._counters.items():
                spec = self.specs[index]
                longest = max(p.long_seconds for p in spec.policies)
                long_burn = self._burn_rate(counter, spec, longest)
                if self._registry is not None and long_burn is not None:
                    self._registry.gauge(
                        "slo_error_budget_remaining",
                        "Fraction of the error budget left over the "
                        "longest policy window.",
                        slo=spec.name, tenant=tenant,
                    ).set(max(0.0, 1.0 - long_burn))
                for policy in spec.policies:
                    burn_short = self._burn_rate(counter, spec,
                                                 policy.short_seconds)
                    burn_long = self._burn_rate(counter, spec,
                                                policy.long_seconds)
                    if self._registry is not None:
                        for window, burn in (("short", burn_short),
                                             ("long", burn_long)):
                            if burn is None:
                                continue
                            self._registry.gauge(
                                "slo_burn_rate",
                                "Error-budget burn rate (1.0 consumes "
                                "the budget exactly over the SLO "
                                "period).",
                                slo=spec.name, tenant=tenant,
                                policy=policy.name, window=window,
                            ).set(burn)
                    firing = (burn_short is not None
                              and burn_long is not None
                              and burn_short >= policy.factor
                              and burn_long >= policy.factor)
                    key = (index, tenant, policy.name)
                    was_firing = self._alert_state.get(key, False)
                    if firing == was_firing:
                        continue
                    self._alert_state[key] = firing
                    state = "firing" if firing else "resolved"
                    self._count_alert(spec, tenant, policy.name, state)
                    transitions.append(
                        {"slo": spec.name, "tenant": tenant,
                         "policy": policy.name, "state": state,
                         "burn_short": 0.0 if burn_short is None
                         else burn_short,
                         "burn_long": 0.0 if burn_long is None
                         else burn_long,
                         "factor": policy.factor})
        self.alert_log.extend(transitions)
        for fields in transitions:
            self._events.emit("slo_alert", **fields)
        return transitions

    # -- introspection --------------------------------------------------

    def firing(self) -> list[tuple[str, str, str]]:
        """``(slo, tenant, policy)`` triples currently in firing state."""
        with self._lock:
            return sorted(
                (self.specs[index].name, tenant, policy)
                for (index, tenant, policy), live
                in self._alert_state.items() if live)

    def tenants(self) -> list[str]:
        """Tenants that have recorded at least one scored operation."""
        with self._lock:
            return sorted({tenant for _, tenant in self._counters})


def build_engine(specs, registry=None, events=None, clock=None,
                 **kwargs) -> Optional[SloEngine]:
    """``SloEngine`` when ``specs`` is non-empty, else ``None`` — the
    shape instrumented code wants (one ``is None`` check on the hot
    path when SLOs are not configured)."""
    specs = tuple(specs or ())
    if not specs:
        return None
    return SloEngine(specs, registry=registry, events=events,
                     clock=clock, **kwargs)
