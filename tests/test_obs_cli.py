"""End-to-end observability through the CLIs (the ISSUE's acceptance
check): ``--metrics-out`` dumps parse, advertise all subsystem families,
and trace spans nest with phase totals matching the metrics."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.lsm.cli import main as lsm_main
from repro.obs.exposition import parse_prometheus_text
from repro.obs.tracing import read_jsonl


@pytest.fixture(scope="module")
def fig12_outputs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fig12obs")
    metrics_path = str(tmp / "m.prom")
    trace_path = str(tmp / "t.jsonl")
    assert bench_main(["fig12", "--scale", "0.05",
                       "--metrics-out", metrics_path,
                       "--trace-out", trace_path]) == 0
    return metrics_path, trace_path


class TestBenchAcceptance:
    def test_metrics_dump_parses_with_all_families(self, fig12_outputs):
        metrics_path, _ = fig12_outputs
        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        families = parsed["families"]
        for prefix in ("lsm_", "scheduler_", "fpga_pipeline_"):
            assert any(name.startswith(prefix) for name in families), prefix
        assert parsed["samples"]["fpga_pipeline_runs_total"][()] > 0

    def test_trace_spans_nest(self, fig12_outputs):
        _, trace_path = fig12_outputs
        events = read_jsonl(trace_path)
        assert events, "trace is empty"
        by_id = {e["id"]: e for e in events}
        compactions = [e for e in events if e["name"] == "compaction"]
        assert compactions
        kernels = [e for e in events if e["name"] == "phase:kernel"]
        assert kernels
        for kernel in kernels:
            assert by_id[kernel["parent"]]["name"] == "compaction"

    def test_phase_totals_match_metrics_within_1pct(self, fig12_outputs):
        metrics_path, trace_path = fig12_outputs
        events = read_jsonl(trace_path)
        traced = sum(e["sim_seconds"] for e in events
                     if e["name"] == "phase:kernel")
        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        reported = sum(
            parsed["samples"]["fpga_pipeline_kernel_seconds_total"].values())
        assert reported > 0
        assert traced == pytest.approx(reported, rel=0.01)


class TestLsmCli:
    def test_fill_and_compact_with_observability(self, tmp_path):
        db = str(tmp_path / "db")
        metrics_path = str(tmp_path / "m.prom")
        trace_path = str(tmp_path / "t.jsonl")
        for _ in range(4):
            assert lsm_main(["fill", db, "--entries", "4000",
                             "--value-size", "256"]) == 0
        assert lsm_main(["compact", db, "--fpga", "4",
                         "--metrics-out", metrics_path,
                         "--trace-out", trace_path]) == 0

        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        samples = parsed["samples"]
        tasks = samples["scheduler_tasks_total"]
        assert sum(tasks.values()) >= 1
        assert sum(samples["lsm_compactions_total"].values()) >= 1

        events = read_jsonl(trace_path)
        by_id = {e["id"]: e for e in events}
        routes = [e for e in events if e["name"] == "compaction.route"]
        assert routes
        for route in routes:
            assert by_id[route["parent"]]["name"] == "compaction"
        phases = [e for e in events if e["name"].startswith("phase:")]
        assert phases
        traced = sum(p["sim_seconds"] for p in phases)
        reported = sum(samples["scheduler_phase_seconds_total"].values())
        assert traced == pytest.approx(reported, rel=0.01)

    def test_stats_command_uses_property_report(self, tmp_path, capsys):
        db = str(tmp_path / "db")
        assert lsm_main(["fill", db, "--entries", "500"]) == 0
        capsys.readouterr()
        assert lsm_main(["stats", db]) == 0
        out = capsys.readouterr().out
        assert "level 0" in out
        assert "sequence" in out
        assert "block_cache" in out

    def test_metrics_out_without_trace(self, tmp_path):
        db = str(tmp_path / "db")
        metrics_path = str(tmp_path / "m.prom")
        assert lsm_main(["fill", db, "--entries", "200",
                         "--metrics-out", metrics_path]) == 0
        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        assert sum(parsed["samples"]["lsm_writes_total"].values()) == 200

    def test_trace_is_valid_json_lines(self, tmp_path):
        db = str(tmp_path / "db")
        trace_path = str(tmp_path / "t.jsonl")
        assert lsm_main(["fill", db, "--entries", "2000",
                         "--trace-out", trace_path]) == 0
        with open(trace_path) as handle:
            for line in handle:
                event = json.loads(line)
                assert event["type"] == "span"
