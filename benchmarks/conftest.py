"""Benchmark-suite configuration.

Each ``test_bench_*`` file regenerates one of the paper's tables or
figures through :mod:`repro.bench` at a reduced scale (the full scale is
available via ``python -m repro.bench all``), plus microbenchmarks of the
hot substrate paths.  All timing-model outputs are deterministic; what
pytest-benchmark measures here is the *harness* cost, while the
experiment's scientific output (MB/s, speedups) is attached to
``benchmark.extra_info``.
"""

import pytest


@pytest.fixture
def attach_rows():
    """Stash experiment rows on the benchmark record."""

    def attach(benchmark, result):
        benchmark.extra_info["experiment"] = result.name
        benchmark.extra_info["rows"] = [
            [str(value) for value in row] for row in result.rows]
        return result

    return attach
