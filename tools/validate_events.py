#!/usr/bin/env python3
"""Validate a flight-recorder event journal produced by ``--events-out``
or ``Options.event_journal`` (stdlib only, so CI can run it without the
package).

Checks:

* every line is a JSON object with schema version ``v == 1``, a known
  ``type``, an integer ``seq`` and a numeric ``ts``;
* the journal is a sequence of *segments*, each opened by a
  ``journal_open`` record (a reopened database appends a new segment);
  within a segment ``seq`` starts at 1 and is strictly increasing and
  gap-free, and ``ts`` is monotonically non-decreasing;
* start/finish pairs (``flush_*``, ``compaction_*``, ``stall_*``)
  balance across the whole file: every finish is preceded by a matching
  start, and no start is left open at the end;
* finish events carry the payload fields replay needs (``bytes`` on
  ``flush_finish``; ``input_bytes``/``output_bytes`` on
  ``compaction_finish``).

Unknown event types are *tolerated* by default (counted and reported,
but seq/ts discipline is still enforced on them) so journals written by
newer code still validate.  ``--strict`` rejects unknown types and
additionally requires the SLO observatory payloads: ``slo_alert`` must
carry ``slo``/``tenant``/``policy``/``state``/``burn_short``/
``burn_long`` and ``exemplar`` must carry ``slo``/``tenant``/``trace``/
``value``.

Exit status 0 when the journal passes, 1 with a report when it does not.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 1

#: The event-type schema table — single source of truth, imported by
#: ``repro.analysis`` (CT002/CT004) so the analyzer and this validator
#: can never drift apart.  Each entry::
#:
#:     type -> {"pairs_with": finish type or None,
#:              "required": fields checked on every such event,
#:              "strict_required": fields checked only under --strict}
EVENT_SCHEMA = {
    "journal_open": {},
    "flush_start": {"pairs_with": "flush_finish"},
    "flush_finish": {"required": ("bytes",)},
    "compaction_start": {"pairs_with": "compaction_finish"},
    "compaction_finish": {"required": ("level", "output_level",
                                       "input_bytes", "output_bytes")},
    "stall_start": {"pairs_with": "stall_finish"},
    "stall_finish": {},
    "fault": {},
    "retry": {},
    "fallback": {"strict_required": ("source", "target")},
    "slo_alert": {"strict_required": ("slo", "tenant", "policy", "state",
                                      "burn_short", "burn_long")},
    "exemplar": {"strict_required": ("slo", "tenant", "trace", "value")},
    # Lock watchdog reports (repro.analysis.watchdog): a detected
    # lock-order cycle and a long-hold outlier.
    "lock_cycle": {"strict_required": ("locks", "closing_edge",
                                       "thread")},
    "lock_long_hold": {"strict_required": ("lock", "seconds", "thread")},
}


def event_schema() -> dict:
    """Exported schema table for external consumers (the analyzer)."""
    return {etype: dict(spec) for etype, spec in EVENT_SCHEMA.items()}


EVENT_TYPES = frozenset(EVENT_SCHEMA)

#: ``start`` event type -> matching ``finish`` type.
PAIRED_TYPES = {etype: spec["pairs_with"]
                for etype, spec in EVENT_SCHEMA.items()
                if spec.get("pairs_with")}

#: Required payload fields per finish type.
REQUIRED_FIELDS = {etype: spec["required"]
                   for etype, spec in EVENT_SCHEMA.items()
                   if spec.get("required")}

#: Extra payload requirements enforced only under ``--strict``.
STRICT_REQUIRED_FIELDS = {etype: spec["strict_required"]
                          for etype, spec in EVENT_SCHEMA.items()
                          if spec.get("strict_required")}


def validate(events: list[dict], strict: bool = False) -> list[str]:
    errors: list[str] = []
    if not events:
        return ["empty journal"]

    open_pairs: dict[str, int] = {}
    last_seq = 0
    last_ts = float("-inf")
    segments = 0
    counts: dict[str, int] = {}

    for index, event in enumerate(events):
        where = f"line {index + 1}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        if event.get("v") != SCHEMA_VERSION:
            errors.append(f"{where}: schema version {event.get('v')!r} "
                          f"(expected {SCHEMA_VERSION})")
        etype = event.get("type")
        known = etype in EVENT_TYPES
        if not known:
            if strict or not isinstance(etype, str):
                errors.append(f"{where}: unknown event type {etype!r}")
                continue
            # Tolerant mode: a journal from newer code still validates;
            # seq/ts discipline is enforced below regardless.
            counts["<unknown>"] = counts.get("<unknown>", 0) + 1
        else:
            counts[etype] = counts.get(etype, 0) + 1
        seq = event.get("seq")
        ts = event.get("ts")
        if not isinstance(seq, int) or seq < 1:
            errors.append(f"{where}: bad seq {seq!r}")
            continue
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric ts")
            continue

        if etype == "journal_open":
            # A new segment: seq restarts at 1 and the wall clock may
            # step backwards relative to the previous run.
            segments += 1
            if seq != 1:
                errors.append(
                    f"{where}: journal_open with seq {seq} (expected 1)")
            last_seq = seq
            last_ts = ts
            continue
        if segments == 0:
            errors.append(f"{where}: event before any journal_open")
            segments = 1  # report once, keep checking the rest
        if seq != last_seq + 1:
            errors.append(f"{where}: seq {seq} after {last_seq} "
                          f"(strictly increasing, gap-free expected)")
        last_seq = max(last_seq, seq)
        if ts < last_ts:
            errors.append(f"{where}: ts {ts} goes backwards "
                          f"(previous {last_ts})")
        last_ts = max(last_ts, ts)

        if etype in PAIRED_TYPES:
            finish = PAIRED_TYPES[etype]
            open_pairs[finish] = open_pairs.get(finish, 0) + 1
        elif etype in PAIRED_TYPES.values():
            if open_pairs.get(etype, 0) > 0:
                open_pairs[etype] -= 1
            else:
                errors.append(f"{where}: {etype} without a matching start")
            for required in REQUIRED_FIELDS.get(etype, ()):
                if required not in event:
                    errors.append(
                        f"{where}: {etype} missing field {required!r}")
        if strict:
            for required in STRICT_REQUIRED_FIELDS.get(etype, ()):
                if required not in event:
                    errors.append(
                        f"{where}: {etype} missing field {required!r}")

    for finish, pending in sorted(open_pairs.items()):
        if pending > 0:
            start = next(s for s, f in PAIRED_TYPES.items() if f == finish)
            errors.append(f"{pending} {start} event(s) never finished")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", help="flight-recorder JSONL journal")
    parser.add_argument("--require", action="append", default=[],
                        metavar="TYPE",
                        help="fail unless at least one event of TYPE is "
                             "present (repeatable, e.g. --require "
                             "flush_finish)")
    parser.add_argument("--strict", action="store_true",
                        help="reject unknown event types and require the "
                             "slo_alert / exemplar payload fields")
    args = parser.parse_args(argv)

    events: list[dict] = []
    try:
        with open(args.journal) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError as error:
                    print(f"FAIL: {args.journal}:{lineno}: torn or "
                          f"malformed JSON line: {error}", file=sys.stderr)
                    return 1
    except OSError as error:
        print(f"FAIL: cannot read {args.journal}: {error}", file=sys.stderr)
        return 1

    errors = validate(events, strict=args.strict)
    present = {e.get("type") for e in events if isinstance(e, dict)}
    for required in args.require:
        if required not in present:
            errors.append(f"no {required} event present")
    if errors:
        print(f"FAIL: {args.journal}: {len(errors)} problem(s)",
              file=sys.stderr)
        for error in errors[:50]:
            print(f"  - {error}", file=sys.stderr)
        return 1
    segments = sum(1 for e in events if e.get("type") == "journal_open")
    unknown = sum(1 for e in events
                  if isinstance(e, dict)
                  and e.get("type") not in EVENT_TYPES)
    extra = f", {unknown} unknown-type (tolerated)" if unknown else ""
    print(f"OK: {args.journal}: {len(events)} events in {segments} "
          f"segment(s), seq gap-free, ts monotone, pairs balanced"
          f"{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
