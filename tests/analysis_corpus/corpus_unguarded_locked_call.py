"""LD001: a ``*_locked`` method called without holding the mutex."""

import threading


class Store:
    def __init__(self):
        self._mutex = threading.Lock()
        self._items = []

    def _append_locked(self, item):
        self._items.append(item)

    def add_ok(self, item):
        with self._mutex:
            self._append_locked(item)

    def add_broken(self, item):
        self._append_locked(item)  # VIOLATION LD001
