"""CPU compaction: merge semantics, validity rules, table rollover.

Includes the model-based oracle property: compaction of sorted runs must
equal "sort everything, keep the newest version per user key, drop
tombstones when asked".
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.compaction import (
    CompactionStats,
    compact,
    concatenating_iterator,
    make_compaction_sources,
    merge_entries,
)
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
    extract_user_key,
    parse_internal_key,
)
from repro.lsm.options import Options
from repro.util.comparator import BytewiseComparator

ICMP = InternalKeyComparator(BytewiseComparator())


def entry(user: bytes, seq: int, value: bytes = b"v",
          deletion: bool = False):
    value_type = TYPE_DELETION if deletion else TYPE_VALUE
    return (encode_internal_key(user, seq, value_type),
            b"" if deletion else value)


class TestMergeEntries:
    def test_newest_version_wins(self):
        newer = [entry(b"k", 10, b"new")]
        older = [entry(b"k", 5, b"old")]
        merged = list(merge_entries([iter(newer), iter(older)], ICMP,
                                    drop_deletions=False))
        assert len(merged) == 1
        assert merged[0][1] == b"new"

    def test_tombstone_kept_when_not_bottom(self):
        run = [entry(b"k", 10, deletion=True)]
        merged = list(merge_entries([iter(run)], ICMP,
                                    drop_deletions=False))
        assert len(merged) == 1
        assert parse_internal_key(merged[0][0]).is_deletion

    def test_tombstone_dropped_at_bottom(self):
        run = [entry(b"k", 10, deletion=True)]
        merged = list(merge_entries([iter(run)], ICMP, drop_deletions=True))
        assert merged == []

    def test_tombstone_shadows_older_value(self):
        newer = [entry(b"k", 10, deletion=True)]
        older = [entry(b"k", 5, b"old")]
        merged = list(merge_entries([iter(newer), iter(older)], ICMP,
                                    drop_deletions=True))
        assert merged == []

    def test_stats_counters(self):
        newer = [entry(b"a", 10), entry(b"b", 11, deletion=True)]
        older = [entry(b"a", 1), entry(b"b", 2), entry(b"c", 3)]
        stats = CompactionStats()
        merged = list(merge_entries([iter(newer), iter(older)], ICMP,
                                    drop_deletions=True, stats=stats))
        assert stats.input_pairs == 5
        assert stats.dropped_shadowed == 2
        assert stats.dropped_tombstones == 1
        assert stats.output_pairs == len(merged) == 2


class TestCompact:
    def test_output_tables_roll_over(self):
        options = Options(block_size=512, sstable_size=4096,
                          compression="none", bloom_bits_per_key=0)
        run = [entry(f"{i:016d}".encode(), i + 1, b"x" * 100)
               for i in range(200)]
        stats = compact([iter(run)], options, ICMP)
        assert len(stats.outputs) > 1
        total = sum(o.stats.num_entries for o in stats.outputs)
        assert total == 200
        # Ranges must be disjoint and ordered.
        for prev, cur in zip(stats.outputs, stats.outputs[1:]):
            assert ICMP.compare(prev.largest, cur.smallest) < 0

    def test_empty_inputs(self):
        options = Options()
        stats = compact([iter([])], options, ICMP)
        assert stats.outputs == []
        assert stats.input_pairs == 0

    def test_all_dropped_produces_no_tables(self):
        options = Options()
        run = [entry(b"k", 5, deletion=True)]
        stats = compact([iter(run)], options, ICMP, drop_deletions=True)
        assert stats.outputs == []


class TestSources:
    def test_concatenation(self):
        a = [entry(b"a", 1), entry(b"b", 2)]
        b = [entry(b"c", 3)]
        assert list(concatenating_iterator([a, b])) == a + b

    def test_level0_each_table_is_a_source(self):
        t1, t2 = [entry(b"a", 1)], [entry(b"b", 2)]
        parents = [entry(b"c", 3)]
        sources = make_compaction_sources(0, [t1, t2], [parents])
        assert len(sources) == 3

    def test_sorted_level_concatenates(self):
        t1, t2 = [entry(b"a", 1)], [entry(b"b", 2)]
        parents = [entry(b"c", 3)]
        sources = make_compaction_sources(2, [t1, t2], [parents])
        assert len(sources) == 2


def oracle(runs, drop_deletions):
    """Reference semantics: newest version per user key."""
    best = {}
    for run in runs:
        for internal_key, value in run:
            parsed = parse_internal_key(internal_key)
            user = parsed.user_key
            if user not in best or parsed.sequence > best[user][0]:
                best[user] = (parsed.sequence, parsed.is_deletion,
                              internal_key, value)
    survivors = []
    for user in sorted(best):
        _, is_deletion, internal_key, value = best[user]
        if is_deletion and drop_deletions:
            continue
        survivors.append((internal_key, value))
    return survivors


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6), st.booleans(),
       st.integers(min_value=1, max_value=4))
def test_merge_matches_oracle_property(seed, drop_deletions, num_runs):
    rng = random.Random(seed)
    sequence = 1
    runs = []
    for _ in range(num_runs):
        count = rng.randrange(0, 40)
        users = sorted(rng.sample(range(60), min(count, 60)))
        run = []
        for user in users:
            deletion = rng.random() < 0.25
            run.append(entry(f"{user:05d}".encode(), sequence,
                             f"s{sequence}".encode(), deletion))
            sequence += 1
        runs.append(run)
    merged = list(merge_entries([iter(r) for r in runs], ICMP,
                                drop_deletions))
    assert merged == oracle(runs, drop_deletions)
    users = [extract_user_key(k) for k, _ in merged]
    assert users == sorted(set(users))
