"""WAL record format: fragmentation, padding, recovery semantics."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.env import MemEnv
from repro.lsm.wal import BLOCK_SIZE, HEADER_SIZE, LogReader, LogWriter


def write_records(records):
    env = MemEnv()
    dest = env.new_writable_file("log")
    writer = LogWriter(dest)
    for record in records:
        writer.add_record(record)
    return env.read_file("log")


class TestRoundtrip:
    def test_single_record(self):
        data = write_records([b"hello"])
        assert list(LogReader(data)) == [b"hello"]

    def test_empty_record(self):
        data = write_records([b""])
        assert list(LogReader(data)) == [b""]

    def test_many_records(self):
        records = [f"record-{i}".encode() * (i + 1) for i in range(50)]
        data = write_records(records)
        assert list(LogReader(data)) == records

    def test_record_spanning_blocks(self):
        big = b"x" * (BLOCK_SIZE * 2 + 12345)
        data = write_records([b"before", big, b"after"])
        assert list(LogReader(data)) == [b"before", big, b"after"]

    def test_record_exactly_filling_block(self):
        payload = b"y" * (BLOCK_SIZE - HEADER_SIZE)
        data = write_records([payload, b"next"])
        assert list(LogReader(data)) == [payload, b"next"]

    def test_block_tail_padding(self):
        # Leave < HEADER_SIZE room at a block end; writer must pad.
        first = b"z" * (BLOCK_SIZE - HEADER_SIZE - 3)
        data = write_records([first, b"second"])
        assert list(LogReader(data)) == [first, b"second"]


class TestRecovery:
    def test_truncated_tail_is_clean_eof(self):
        data = write_records([b"good", b"partial"])
        truncated = data[:-3]
        assert list(LogReader(truncated)) == [b"good"]

    def test_corrupt_crc_stops_replay(self):
        data = bytearray(write_records([b"first", b"second"]))
        # Flip a payload byte of the second record.
        data[-1] ^= 0xFF
        assert list(LogReader(bytes(data))) == [b"first"]

    def test_corrupt_crc_strict_raises(self):
        data = bytearray(write_records([b"only"]))
        data[-1] ^= 0xFF
        with pytest.raises(CorruptionError):
            list(LogReader(bytes(data), strict=True))

    def test_zeroed_region_is_eof(self):
        data = write_records([b"rec"]) + b"\x00" * 64
        assert list(LogReader(data)) == [b"rec"]

    def test_empty_log(self):
        assert list(LogReader(b"")) == []

    def test_unknown_record_type_strict(self):
        from repro.util.coding import encode_fixed32
        from repro.util.crc32c import crc32c, mask_crc
        payload = b"zz"
        bad_type = 9
        crc = mask_crc(crc32c(bytes([bad_type]) + payload))
        frame = (encode_fixed32(crc) + len(payload).to_bytes(2, "little")
                 + bytes([bad_type]) + payload)
        with pytest.raises(CorruptionError):
            list(LogReader(frame, strict=True))


class TestAppendSeeding:
    """Regression: a LogWriter opened on a non-empty log assumed it was
    at a block boundary (``_block_offset = 0``), so records appended
    near a real block tail produced misaligned fragments that replay
    dropped or mis-framed."""

    @pytest.mark.parametrize(
        "first_len",
        [1, 100, BLOCK_SIZE - HEADER_SIZE - 3, BLOCK_SIZE - HEADER_SIZE,
         BLOCK_SIZE, BLOCK_SIZE * 2 + 7],
    )
    def test_append_to_existing_log_replays_all(self, first_len):
        env = MemEnv()
        dest = env.new_writable_file("log")
        first = b"a" * first_len
        LogWriter(dest).add_record(first)
        dest.close()

        dest = env.new_appendable_file("log")
        writer = LogWriter(dest)
        appended = [b"b" * 10, b"c" * (BLOCK_SIZE + 5), b"d"]
        for record in appended:
            writer.add_record(record)
        dest.close()

        assert list(LogReader(env.read_file("log"))) == [first] + appended

    def test_block_offset_seeded_from_dest_size(self):
        env = MemEnv()
        dest = env.new_writable_file("log")
        dest.append(b"x" * (BLOCK_SIZE + 123))
        writer = LogWriter(dest)
        assert writer._block_offset == 123

    def test_sync_reaches_destination(self):
        env = MemEnv()
        dest = env.new_writable_file("log")
        writer = LogWriter(dest)
        writer.add_record(b"r")
        writer.sync()
        assert dest.sync_count == 1


class TestBatchedWrites:
    def test_interleaved_sizes(self):
        records = [bytes([i % 256]) * (i * 97 % 5000) for i in range(1, 80)]
        data = write_records(records)
        assert list(LogReader(data)) == records
