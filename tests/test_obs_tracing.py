"""Span tracing: nesting, JSONL round trips, modeled and simulated time."""

import pytest

from repro import obs
from repro.lsm import LsmDB
from repro.lsm.env import MemEnv
from repro.obs.tracing import (
    NULL_TRACER,
    Tracer,
    read_jsonl,
    span_children,
)


class TestSpans:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children complete (and record) before their parents.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == outer.span_id

    def test_attrs_via_set(self):
        tracer = Tracer()
        with tracer.span("s", level=1) as span:
            span.set(output_bytes=42)
        assert tracer.spans[0].attrs == {"level": 1, "output_bytes": 42}

    def test_wall_clock_advances(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert tracer.spans[0].wall_seconds >= 0.0

    def test_phase_records_modeled_duration(self):
        tracer = Tracer()
        with tracer.span("compaction") as parent:
            tracer.phase("phase:kernel", 0.25, cycles=1000)
        phase = tracer.spans[0]
        assert phase.name == "phase:kernel"
        assert phase.parent_id == parent.span_id
        assert phase.sim_seconds == 0.25
        assert phase.wall_seconds == 0.0

    def test_record_sim_span_positions_on_sim_timeline(self):
        tracer = Tracer()
        span = tracer.record_sim_span("sim.flush", 2.0, 3.5, bytes=10)
        assert span.start_sim == 2.0
        assert span.end_sim == 3.5
        assert span.sim_seconds == 1.5

    def test_sim_clock_intervals(self):
        class FakeClock:
            now = 0.0

        clock = FakeClock()
        tracer = Tracer(sim_clock=clock)
        with tracer.span("s"):
            clock.now = 4.0
        data = tracer.spans[0].to_dict()
        assert data["start_sim"] == 0.0
        assert data["end_sim"] == 4.0
        assert data["sim_seconds"] == 4.0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sink_path=path, keep_spans=False)
        with tracer.span("outer", level=1):
            tracer.phase("phase:kernel", 0.5)
        tracer.close()
        assert tracer.spans == []

        events = read_jsonl(path)
        assert [e["name"] for e in events] == ["phase:kernel", "outer"]
        outer = events[1]
        children = span_children(events, outer["id"])
        assert [c["name"] for c in children] == ["phase:kernel"]
        assert children[0]["sim_seconds"] == 0.5
        assert outer["attrs"] == {"level": 1}

    def test_write_jsonl_dumps_retained_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = str(tmp_path / "out.jsonl")
        tracer.write_jsonl(path)
        assert read_jsonl(path)[0]["name"] == "s"


class TestNullTracer:
    def test_noop_surface(self):
        with NULL_TRACER.span("x", a=1) as span:
            span.set(b=2)
        assert span.to_dict() == {}
        assert NULL_TRACER.phase("p", 1.0).sim_seconds is None
        assert NULL_TRACER.record_sim_span("s", 0, 1).wall_seconds == 0.0
        NULL_TRACER.close()


class TestDbTraceNesting:
    """The ISSUE's span-nesting check: flush and compaction spans from a
    real store nest correctly and carry their byte attributes."""

    def test_flush_then_compaction_spans(self, options):
        tracer = Tracer()
        with obs.scoped(tracer=tracer):
            db = LsmDB("tracedb", options, env=MemEnv())
            for i in range(3000):
                db.put(f"k{i:010d}".encode(), b"x" * 40)
            db.compact_range()

        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["flush"]) == db.stats.flushes
        assert len(by_name["compaction"]) == db.stats.compactions

        ids = {s.span_id: s for s in tracer.spans}
        for flush in by_name["flush"]:
            assert flush.parent_id is None
            assert flush.attrs["bytes"] > 0
        assert sum(f.attrs["bytes"] for f in by_name["flush"]) \
            == db.stats.flush_bytes

        for compaction in by_name["compaction"]:
            assert compaction.parent_id is None
            assert compaction.attrs["input_bytes"] > 0
            assert compaction.attrs["output_bytes"] > 0
        assert sum(c.attrs["input_bytes"] for c in by_name["compaction"]) \
            == db.stats.compaction_input_bytes

        # Every install span nests under a compaction span.
        for install in by_name["compaction.install"]:
            assert ids[install.parent_id].name == "compaction"

    def test_offloaded_compaction_nests_route_and_phases(self, options):
        from repro.fpga.resources import best_feasible_config
        from repro.host.device import FcaeDevice
        from repro.host.scheduler import CompactionScheduler

        tracer = Tracer()
        registry = obs.MetricsRegistry()
        with obs.scoped(registry=registry, tracer=tracer):
            device = FcaeDevice(best_feasible_config(4), options)
            scheduler = CompactionScheduler(device, options)
            db = LsmDB("offdb", options, env=MemEnv(),
                       compaction_executor=scheduler)
            for i in range(3000):
                db.put(f"k{i:010d}".encode(), b"x" * 40)
            db.compact_range()

        assert scheduler.stats.fpga_tasks > 0
        ids = {s.span_id: s for s in tracer.spans}
        routes = [s for s in tracer.spans if s.name == "compaction.route"]
        assert routes
        for route in routes:
            assert ids[route.parent_id].name == "compaction"
        phases = [s for s in tracer.spans if s.name.startswith("phase:")]
        assert {ids[p.parent_id].name for p in phases} \
            == {"compaction.route"}
        # Modeled kernel time in the trace equals the scheduler's total.
        kernel = sum(p.sim_seconds for p in phases
                     if p.name == "phase:kernel")
        assert kernel == pytest.approx(scheduler.stats.fpga_kernel_seconds)
