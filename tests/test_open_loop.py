"""Open-loop arrival mode: coordinated-omission-free latencies, tenant
isolation of the accounting, SLO alerts and exemplars landing in one
journal whose traces resolve to the causing maintenance events, and the
strict journal validator accepting the whole stream."""

import importlib.util
import io
import os

import pytest

from repro import obs
from repro.errors import InvalidArgumentError
from repro.lsm.options import Options
from repro.obs.events import EventJournal
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloSpec
from repro.sim.system import (
    OpenLoopSimulator,
    SystemConfig,
    TenantSpec,
    simulate_open_loop,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_spec = importlib.util.spec_from_file_location(
    "validate_events",
    os.path.join(REPO_ROOT, "tools", "validate_events.py"))
validate_events = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_events)


def small_config(mode="leveldb"):
    # Tiny memtables + incompressible sim bytes keep maintenance churn
    # high so short runs exercise flushes, compactions and stalls.
    options = Options(value_length=1024, write_buffer_size=256 * 1024,
                      compression="none")
    return SystemConfig(mode=mode, options=options,
                        data_size_bytes=1 << 20)


STORM = TenantSpec("storm", arrival_rate=100_000, workload="load", seed=7)
GOLD = TenantSpec("gold", arrival_rate=10_000, workload="b", seed=3)

TIGHT_SLO = (
    SloSpec("put-tight", "latency", target=0.999, threshold_seconds=5e-4,
            op="put", policies=[
                {"name": "fast", "short_seconds": 2.0,
                 "long_seconds": 10.0, "factor": 10.0}]),
)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            TenantSpec("", arrival_rate=1.0)
        with pytest.raises(InvalidArgumentError):
            TenantSpec("t", arrival_rate=0.0)
        with pytest.raises(InvalidArgumentError):
            TenantSpec("t", arrival_rate=1.0, workload="nope")
        with pytest.raises(InvalidArgumentError):
            TenantSpec("t", arrival_rate=1.0, distribution="gaussian")

    def test_unique_tenant_names_required(self):
        with pytest.raises(InvalidArgumentError, match="unique"):
            OpenLoopSimulator(small_config(),
                              [TenantSpec("a", 10.0),
                               TenantSpec("a", 20.0)], 1.0)

    def test_at_least_one_tenant(self):
        with pytest.raises(InvalidArgumentError):
            OpenLoopSimulator(small_config(), [], 1.0)


class TestCoordinatedOmission:
    def test_open_loop_p99_exceeds_service_only_under_saturation(self):
        # Offered write load far above what the throttled foreground
        # core sustains: arrival-to-completion must dwarf service time.
        result = simulate_open_loop(small_config(), [STORM], 1.0)
        storm = result.tenants["storm"]
        assert storm.writes > 1000
        assert storm.latency_percentile(99) > \
            10 * storm.service_percentile(99)
        assert storm.mean_queue_delay > 0.0

    def test_unloaded_tenant_sees_service_time_only(self):
        calm = TenantSpec("calm", arrival_rate=50.0, workload="load",
                          seed=5)
        result = simulate_open_loop(small_config(), [calm], 1.0)
        stats = result.tenants["calm"]
        assert stats.ops > 10
        # 50 writes/s against a ~200k ops/s core: no queueing.
        assert stats.latency_percentile(99) == pytest.approx(
            stats.service_percentile(99), rel=0.01)

    def test_deterministic_across_runs(self):
        a = simulate_open_loop(small_config(), [STORM, GOLD], 0.5)
        b = simulate_open_loop(small_config(), [STORM, GOLD], 0.5)
        assert a.total_ops == b.total_ops
        assert a.system.elapsed_seconds == b.system.elapsed_seconds
        for name in a.tenants:
            assert a.tenants[name].latencies == b.tenants[name].latencies


class TestTenantAccounting:
    def test_read_write_split_follows_workload(self):
        result = simulate_open_loop(small_config(), [GOLD], 0.5)
        gold = result.tenants["gold"]
        # YCSB B: 95% reads.
        assert gold.reads > gold.writes * 5
        assert gold.ops == gold.reads + gold.writes

    def test_per_tenant_windows_published(self):
        registry = MetricsRegistry()
        with obs.scoped(registry=registry):
            simulate_open_loop(small_config(), [STORM, GOLD], 0.5)
        snapshot = registry.snapshot()
        latency = snapshot["sim_op_latency_window_seconds"]
        tenants = {dict(key).get("tenant") for key in latency}
        assert {"storm", "gold"} <= tenants


class TestSloObservatoryEndToEnd:
    def run_demo(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink, keep_events=True)
        registry = MetricsRegistry()
        with obs.scoped(registry=registry):
            result = simulate_open_loop(
                small_config(), [STORM, GOLD], 1.0,
                slo_specs=TIGHT_SLO, events=journal)
        return result, journal, registry

    def test_burn_alerts_fire_and_land_in_journal(self):
        result, journal, _ = self.run_demo()
        assert result.slo_firing, "saturated run must fire the tight SLO"
        alerts = [e for e in journal.events if e["type"] == "slo_alert"]
        assert alerts
        assert alerts[0]["state"] == "firing"
        assert alerts[0]["slo"] == "put-tight"
        assert result.alert_transitions[0]["slo"] == "put-tight"

    def test_exemplar_traces_resolve_to_maintenance_events(self):
        _, journal, _ = self.run_demo()
        exemplars = [e for e in journal.events if e["type"] == "exemplar"]
        assert exemplars, "tail ops above threshold must emit exemplars"
        maintenance_traces = {
            e.get("trace") for e in journal.events
            if e["type"] in ("compaction_start", "flush_start",
                             "stall_start")}
        resolved = [e for e in exemplars
                    if e["trace"] in maintenance_traces]
        assert resolved, ("at least one exemplar must walk back to the "
                          "compaction/flush/stall that delayed it")

    def test_journal_passes_strict_validation(self):
        _, journal, _ = self.run_demo()
        errors = validate_events.validate(journal.events, strict=True)
        assert errors == []

    def test_compaction_events_balance_with_payloads(self):
        _, journal, _ = self.run_demo()
        starts = [e for e in journal.events
                  if e["type"] == "compaction_start"]
        finishes = [e for e in journal.events
                    if e["type"] == "compaction_finish"]
        assert starts
        assert len(starts) == len(finishes)
        for event in finishes:
            assert event["output_level"] == event["level"] + 1
            assert event["input_bytes"] > 0
            assert "sim_ts" in event

    def test_burn_gauges_and_slo_counters_in_registry(self):
        _, _, registry = self.run_demo()
        snapshot = registry.snapshot()
        assert any(sum(1 for _ in snapshot.get(family, {}))
                   for family in ("slo_burn_rate", "slo_events_total"))
        events = snapshot["slo_events_total"]
        bad = sum(v for key, v in events.items()
                  if dict(key).get("outcome") == "bad")
        assert bad > 0


class TestValidatorModes:
    def base_events(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink, keep_events=True)
        journal.emit("flush_start")
        journal.emit("flush_finish", bytes=1024)
        return journal.events

    def test_tolerant_mode_accepts_unknown_types(self):
        events = [dict(e) for e in self.base_events()]
        events.append({"v": 1, "type": "from_the_future",
                       "seq": events[-1]["seq"] + 1,
                       "ts": events[-1]["ts"]})
        assert validate_events.validate(events) == []
        errors = validate_events.validate(events, strict=True)
        assert any("unknown event type" in e for e in errors)

    def test_strict_requires_slo_alert_payload(self):
        events = [dict(e) for e in self.base_events()]
        events.append({"v": 1, "type": "slo_alert",
                       "seq": events[-1]["seq"] + 1,
                       "ts": events[-1]["ts"], "slo": "x"})
        assert validate_events.validate(events) == []
        errors = validate_events.validate(events, strict=True)
        assert any("missing field" in e for e in errors)

    def test_strict_requires_exemplar_payload(self):
        events = [dict(e) for e in self.base_events()]
        events.append({"v": 1, "type": "exemplar",
                       "seq": events[-1]["seq"] + 1,
                       "ts": events[-1]["ts"], "trace": "t-1"})
        errors = validate_events.validate(events, strict=True)
        missing = {e.split()[-1] for e in errors if "missing field" in e}
        assert missing == {"'slo'", "'tenant'", "'value'"}

    def test_unknown_still_checked_for_seq_discipline(self):
        events = [dict(e) for e in self.base_events()]
        events.append({"v": 1, "type": "from_the_future",
                       "seq": 99, "ts": events[-1]["ts"]})
        errors = validate_events.validate(events)
        assert any("seq" in e for e in errors)
