"""Low-level wire-format primitives shared by the LSM store and the FPGA
engine: variable-length integers, fixed-width little-endian coding, the
masked CRC32C used by LevelDB's file formats, and byte-string comparators.
"""

from repro.util.coding import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)
from repro.util.comparator import BytewiseComparator, Comparator
from repro.util.crc32c import crc32c, crc32c_many, mask_crc, unmask_crc
from repro.util.varint import (
    MAX_VARINT32_BYTES,
    MAX_VARINT64_BYTES,
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
)

__all__ = [
    "BytewiseComparator",
    "Comparator",
    "MAX_VARINT32_BYTES",
    "MAX_VARINT64_BYTES",
    "crc32c",
    "crc32c_many",
    "decode_fixed32",
    "decode_fixed64",
    "decode_varint32",
    "decode_varint64",
    "encode_fixed32",
    "encode_fixed64",
    "encode_varint32",
    "encode_varint64",
    "get_length_prefixed_slice",
    "mask_crc",
    "put_length_prefixed_slice",
    "unmask_crc",
]
