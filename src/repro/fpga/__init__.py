"""Behavioral model of the paper's FPGA compaction engine (FCAE).

The engine is both *functional* — it decodes real SSTable images, merges
them with validity checking, and encodes standard SSTables — and *timed* —
every module charges cycles per the paper's Tables II/III, composed by an
item-granularity pipeline simulator with bounded FIFOs, DRAM read latency
and AXI-width streaming.  Cycle counts convert to seconds at the
configured clock (the paper's KCU1500 runs at 200 MHz).

Module map (paper Figs 2-5):

* :mod:`repro.fpga.config` — ``FpgaConfig`` (N, V, W_in, W_out, clock).
* :mod:`repro.fpga.fifo` — bounded FIFO primitive.
* :mod:`repro.fpga.dram` — off-chip DRAM with request latency accounting.
* :mod:`repro.fpga.decoder` — Index Block Decoder + Data Block Decoder.
* :mod:`repro.fpga.comparer` — Key Compare + Validity Check.
* :mod:`repro.fpga.transfer` — Key-Value Transfer.
* :mod:`repro.fpga.encoder` — Data Block Encoder + Index Block Encoder.
* :mod:`repro.fpga.stream` — Stream Downsizer / Upsizer.
* :mod:`repro.fpga.cost_model` — the analytic periods of Tables II/III.
* :mod:`repro.fpga.pipeline_sim` — item-granularity timing composition.
* :mod:`repro.fpga.resources` — BRAM/FF/LUT estimator (Table VII).
* :mod:`repro.fpga.engine` — the assembled compaction engine.
"""

from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.engine import CompactionEngine, EngineResult
from repro.fpga.resources import ResourceReport, estimate_resources

__all__ = [
    "CompactionEngine",
    "EngineResult",
    "FpgaConfig",
    "PipelineVariant",
    "ResourceReport",
    "estimate_resources",
]
