"""Compaction-thread workflow (paper Fig 6).

The scheduler is an :class:`LsmDB`-compatible compaction executor that
routes each merge compaction:

* to the **FPGA** when the compaction's input-stream count fits the
  engine (``fpga_input_count() <= N``) — for level >= 1 that count is at
  most 2 (the sorted level concatenates into one input); for level 0 it
  is the number of overlapping L0 files plus one;
* to **software** otherwise ("when S_0 > N - 1, the compaction task will
  be processed completely by the software").

It verifies every FPGA result against the storage contract (sorted,
disjoint output ranges) and accumulates the statistics the experiments
report: task/byte routing, per-phase time, and the PCIe share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FpgaProtocolError
from repro.host.device import FcaeDevice
from repro.lsm.compaction import OutputTable, compact, make_compaction_sources
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.version import CompactionSpec
from repro.sim.cpu import CpuCostModel


@dataclass
class SchedulerStats:
    """Routing and timing accumulators over a database run."""

    fpga_tasks: int = 0
    software_tasks: int = 0
    fpga_input_bytes: int = 0
    software_input_bytes: int = 0
    fpga_kernel_seconds: float = 0.0
    fpga_pcie_seconds: float = 0.0
    fpga_marshal_seconds: float = 0.0
    software_seconds: float = 0.0

    @property
    def total_offload_seconds(self) -> float:
        return (self.fpga_kernel_seconds + self.fpga_pcie_seconds
                + self.fpga_marshal_seconds)

    @property
    def pcie_fraction_of_offload(self) -> float:
        total = self.total_offload_seconds
        return self.fpga_pcie_seconds / total if total > 0 else 0.0


class CompactionScheduler:
    """Pluggable executor for :class:`repro.lsm.db.LsmDB`.

    Pass an instance as ``LsmDB(compaction_executor=scheduler)``; it then
    receives every merge compaction the database picks.
    """

    def __init__(self, device: FcaeDevice, options: Options | None = None,
                 cpu_model: CpuCostModel | None = None,
                 verify_outputs: bool = True):
        self.device = device
        self.options = options or device.options
        self.comparator = InternalKeyComparator(self.options.comparator)
        self.cpu_model = cpu_model or device.cpu_model
        self.verify_outputs = verify_outputs
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def should_offload(self, spec: CompactionSpec) -> bool:
        """Fig 6's branch: FPGA iff the input-stream count fits N."""
        return spec.fpga_input_count() <= self.device.config.num_inputs

    def __call__(self, spec: CompactionSpec, input_tables: list,
                 parent_tables: list,
                 drop_deletions: bool) -> list[OutputTable]:
        if self.should_offload(spec):
            return self._run_fpga(spec, input_tables, parent_tables,
                                  drop_deletions)
        return self._run_software(spec, input_tables, parent_tables,
                                  drop_deletions)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _run_fpga(self, spec: CompactionSpec, input_tables: list,
                  parent_tables: list,
                  drop_deletions: bool) -> list[OutputTable]:
        if spec.level == 0:
            streams = [[t] for t in input_tables]
        else:
            streams = [input_tables] if input_tables else []
        if parent_tables:
            streams.append(parent_tables)
        result = self.device.compact(streams, drop_deletions)
        self.stats.fpga_tasks += 1
        self.stats.fpga_input_bytes += result.input_bytes
        self.stats.fpga_kernel_seconds += result.kernel_seconds
        self.stats.fpga_pcie_seconds += result.pcie_seconds
        self.stats.fpga_marshal_seconds += result.host_marshal_seconds
        if self.verify_outputs:
            self._verify(result.outputs)
        return result.outputs

    def _run_software(self, spec: CompactionSpec, input_tables: list,
                      parent_tables: list,
                      drop_deletions: bool) -> list[OutputTable]:
        sources = make_compaction_sources(spec.level, input_tables,
                                          parent_tables)
        stats = compact(sources, self.options, self.comparator,
                        drop_deletions)
        self.stats.software_tasks += 1
        self.stats.software_input_bytes += spec.total_input_bytes
        self.stats.software_seconds += self.cpu_model.compaction_seconds(
            spec.total_input_bytes,
            self.options.key_length,
            self.options.value_length,
            num_inputs=max(2, spec.fpga_input_count()),
        )
        return stats.outputs

    # ------------------------------------------------------------------
    # Contract checks
    # ------------------------------------------------------------------

    def _verify(self, outputs: list[OutputTable]) -> None:
        """The FPGA result must honor the storage format's invariants:
        per-table sorted ranges and cross-table disjointness."""
        for prev, cur in zip(outputs, outputs[1:]):
            if self.comparator.compare(prev.largest, cur.smallest) >= 0:
                raise FpgaProtocolError(
                    "FPGA produced overlapping output tables")
        for output in outputs:
            if self.comparator.compare(output.smallest, output.largest) > 0:
                raise FpgaProtocolError(
                    "FPGA produced an inverted table key range")
