"""Fault injection for the FPGA offload path.

A :class:`FaultInjector` attaches to :class:`repro.host.device.FcaeDevice`
and makes ``compact`` fail in controlled ways, so the scheduler's retry /
software-fallback machinery (and the driver's "never surface a device
fault to a writer" guarantee) can be exercised deterministically:

* ``protocol_error_every=N`` — every Nth offload raises
  :class:`~repro.errors.FpgaProtocolError` (a MetaOut contract
  violation);
* ``timeout_every=N`` — every Nth offload raises
  :class:`~repro.errors.FpgaTimeoutError` (hung kernel / lost
  completion);
* ``dma_error_rate=p`` — each offload additionally fails with
  probability ``p`` with :class:`~repro.errors.FpgaDmaError` (flaky
  link), from a seeded RNG so runs replay.

Counters distinguish deterministic schedules from the random DMA faults;
``injected_faults`` is the total, which fault-injection tests compare to
``scheduler_fallbacks_total``.

One injector can serve several accelerator backends (the scheduler
shares the device's injector with the batch backend): each ``check``
call carries a ``backend`` tag, ``faults_by_backend`` splits the injected
totals per backend, and the raised error remembers its source backend in
``error.backend`` so fallback events can record the source→target pair.
"""

from __future__ import annotations

import random
import threading

from repro.errors import FpgaDmaError, FpgaProtocolError, FpgaTimeoutError


class FaultInjector:
    """Deterministic fault schedule for one device.

    The ``every`` counters are 1-based on the device's task counter: with
    ``protocol_error_every=3`` tasks 3, 6, 9, ... fail.  A task that
    matches several schedules raises the first in (protocol, timeout,
    dma) order — one fault per task, so callers can equate injected
    faults with failed attempts.
    """

    def __init__(self, protocol_error_every: int = 0,
                 timeout_every: int = 0,
                 dma_error_rate: float = 0.0,
                 seed: int = 0):
        if protocol_error_every < 0 or timeout_every < 0:
            raise ValueError("fault periods must be >= 0")
        if not 0.0 <= dma_error_rate <= 1.0:
            raise ValueError("dma_error_rate must be in [0, 1]")
        self.protocol_error_every = protocol_error_every
        self.timeout_every = timeout_every
        self.dma_error_rate = dma_error_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.tasks_seen = 0
        self.injected_faults = 0
        self.faults_by_kind = {"protocol": 0, "timeout": 0, "dma": 0}
        self.faults_by_backend: dict[str, int] = {}

    def check(self, input_bytes: int = 0,
              backend: str = "fpga-sim") -> None:
        """Called by a backend at the start of each offload; raises the
        scheduled fault, if any, tagged with the offloading backend."""
        with self._lock:
            self.tasks_seen += 1
            task = self.tasks_seen
            if (self.protocol_error_every
                    and task % self.protocol_error_every == 0):
                kind, error = "protocol", FpgaProtocolError(
                    f"injected protocol error on task {task} "
                    f"({backend})")
            elif self.timeout_every and task % self.timeout_every == 0:
                kind, error = "timeout", FpgaTimeoutError(
                    f"injected timeout on task {task} ({backend})")
            elif (self.dma_error_rate
                    and self._rng.random() < self.dma_error_rate):
                kind, error = "dma", FpgaDmaError(
                    f"injected DMA failure on task {task} "
                    f"({input_bytes} bytes, {backend})")
            else:
                return
            self.injected_faults += 1
            self.faults_by_kind[kind] += 1
            self.faults_by_backend[backend] = (
                self.faults_by_backend.get(backend, 0) + 1)
        error.backend = backend
        raise error

    def __repr__(self) -> str:
        return (f"FaultInjector(seen={self.tasks_seen}, "
                f"injected={self.injected_faults}, "
                f"by_kind={self.faults_by_kind}, "
                f"by_backend={self.faults_by_backend})")
