"""Write-pause latency tracking and its bench target."""

import pytest

from repro.bench.common import N9_CONFIG
from repro.errors import InvalidArgumentError
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom


@pytest.fixture(scope="module")
def results():
    options = Options(value_length=512)
    nbytes = 1 << 28
    base = simulate_fillrandom(SystemConfig(
        mode="leveldb", options=options, data_size_bytes=nbytes))
    fcae = simulate_fillrandom(SystemConfig(
        mode="fcae", options=options, fpga=N9_CONFIG,
        data_size_bytes=nbytes))
    return base, fcae


class TestLatencyTracking:
    def test_write_counts_match_data(self, results):
        base, _ = results
        entry = 16 + 512
        assert base.total_writes * entry >= base.user_bytes * 0.95

    def test_pauses_recorded(self, results):
        base, _ = results
        assert len(base.stall_waits) > 0
        assert base.max_write_pause > 0
        assert sum(base.stall_waits) <= base.stall_seconds + 1e-9

    def test_percentile_monotone(self, results):
        base, _ = results
        write_cost = 3e-6
        p50 = base.latency_percentile(50, write_cost)
        p999 = base.latency_percentile(99.9, write_cost)
        p9999 = base.latency_percentile(99.99, write_cost)
        assert p50 <= p999 <= p9999

    def test_percentile_floor_is_base_cost(self, results):
        base, _ = results
        assert base.latency_percentile(0, 3e-6) == pytest.approx(3e-6)

    def test_bad_percentile_rejected(self, results):
        base, _ = results
        with pytest.raises(InvalidArgumentError):
            base.latency_percentile(101, 3e-6)

    def test_fcae_tail_shorter(self, results):
        base, fcae = results
        write_cost = 3e-6
        assert (fcae.latency_percentile(99.99, write_cost)
                < base.latency_percentile(99.99, write_cost))
        assert fcae.max_write_pause < base.max_write_pause


class TestBenchTarget:
    def test_write_pause_bench(self):
        from repro.bench import write_pause
        result = write_pause.run(scale=0.25)
        rows = {row[0]: row for row in result.rows}
        base = rows["LevelDB"]
        fcae = rows["LevelDB-FCAE"]
        assert fcae[2] < base[2]      # p99.99
        assert fcae[4] < base[4]      # max pause
        assert fcae[5] < base[5]      # stall share
