"""Extension bench: synchronous vs asynchronous compaction driver.

The paper's premise is that compaction work on the write path is what
stalls writers (§III's "write pause").  This target measures it directly
on the *functional* store: the same fillrandom workload runs against a
synchronous database (maintenance inline in ``write``, the seed's
behavior) and against the background driver with 1 and 2 compaction
units.  Both modes publish write-stall durations to the
``lsm_write_stall_seconds`` histogram — the synchronous mode observes
every inline maintenance episode (foreground time a writer lost), the
background mode only actual waits (imm backlog / L0 stop) — so the
stall columns are directly comparable: background stall time must come
out strictly below synchronous.
"""

from __future__ import annotations

import random
import time

from repro.bench.common import ExperimentResult
from repro.lsm.db import LsmDB
from repro.lsm.options import Options
from repro.obs.registry import MetricsRegistry

#: Small memtable so the workload cycles many flush/compaction rounds.
WRITE_BUFFER = 32 * 1024
VALUE_LENGTH = 256
NUM_KEYS = 4000


def _workload(num_keys: int) -> list[tuple[bytes, bytes]]:
    order = list(range(num_keys))
    random.Random(1234).shuffle(order)
    return [(f"key{i:08d}".encode(),
             f"v{i:06d}".encode() * (VALUE_LENGTH // 8))
            for i in order]


def _run_mode(label: str, pairs: list[tuple[bytes, bytes]],
              **db_kwargs) -> dict:
    registry = MetricsRegistry()
    options = Options(write_buffer_size=WRITE_BUFFER,
                      value_length=VALUE_LENGTH)
    db = LsmDB(f"bench-{label}", options=options, metrics=registry,
               **db_kwargs)
    start = time.perf_counter()
    for key, value in pairs:
        db.put(key, value)
    write_wall = time.perf_counter() - start
    db.compact_range()
    total_wall = time.perf_counter() - start
    stall_hist = db._m.stall_seconds
    row = {
        "write_wall": write_wall,
        "total_wall": total_wall,
        "stall_episodes": stall_hist.count,
        "stall_seconds": stall_hist.sum,
        "compactions": db.stats.compactions,
        "flushes": db.stats.flushes,
    }
    db.close()
    return row


def run(scale: float = 1.0) -> ExperimentResult:
    num_keys = max(200, int(NUM_KEYS * scale))
    pairs = _workload(num_keys)
    result = ExperimentResult(
        name="Compaction driver",
        title="Write-path stall time: inline maintenance vs background "
              "units",
        columns=["system", "write_wall_s", "total_wall_s",
                 "stall_episodes", "stall_s", "stall_share_pct",
                 "flushes", "compactions"],
    )
    systems = (
        ("Synchronous", dict(auto_compact=True)),
        ("Background (1 unit)", dict(background_compaction=True,
                                     num_units=1)),
        ("Background (2 units)", dict(background_compaction=True,
                                      num_units=2)),
    )
    for label, kwargs in systems:
        row = _run_mode(label, pairs, **kwargs)
        result.add_row(
            label,
            row["write_wall"],
            row["total_wall"],
            row["stall_episodes"],
            row["stall_seconds"],
            100 * row["stall_seconds"] / max(1e-9, row["write_wall"]),
            row["flushes"],
            row["compactions"],
        )
    result.notes.append(
        "synchronous 'stall' time is every inline maintenance episode "
        "blocking the writer; background counts only real waits (full "
        "immutable memtable or L0 at the stop trigger)")
    return result
