"""Fig 10 — write throughput vs data size (0.2-2 GB), 2-input FCAE.

db_bench fillrandom through the system simulator with the paper's fixed
factors: L_value = 512, V = 16.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, scale_bytes, two_input_config
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_fillrandom

DATA_SIZES_GB = (0.2, 0.5, 1.0, 1.5, 2.0)
VALUE_LENGTH = 512
VALUE_WIDTH = 16


def run(scale: float = 1.0) -> ExperimentResult:
    options = Options(value_length=VALUE_LENGTH)
    fpga = two_input_config(VALUE_WIDTH)
    result = ExperimentResult(
        name="Fig 10",
        title="Write throughput vs data size (L_value=512, V=16)",
        columns=["data_GB", "LevelDB_MBps", "FCAE_MBps", "speedup"],
    )
    for gigabytes in DATA_SIZES_GB:
        nbytes = scale_bytes(int(gigabytes * (1 << 30)), scale)
        base = simulate_fillrandom(SystemConfig(
            mode="leveldb", options=options, data_size_bytes=nbytes))
        fcae = simulate_fillrandom(SystemConfig(
            mode="fcae", options=options, fpga=fpga,
            data_size_bytes=nbytes))
        result.add_row(gigabytes, base.throughput_mbps, fcae.throughput_mbps,
                       fcae.throughput_mbps / base.throughput_mbps)
    result.notes.append(
        "paper shape: LevelDB decreases dramatically with data size while "
        "LevelDB-FCAE degrades gently")
    return result
