"""Bounded FIFO primitive."""

import pytest

from repro.fpga.fifo import Fifo


class TestFifo:
    def test_fifo_order(self):
        fifo = Fifo(4)
        fifo.extend([1, 2, 3])
        assert fifo.pop() == 1
        assert fifo.pop() == 2
        assert fifo.pop() == 3

    def test_capacity_enforced(self):
        fifo = Fifo(2)
        fifo.push("a")
        fifo.push("b")
        assert fifo.is_full
        with pytest.raises(OverflowError):
            fifo.push("c")

    def test_peek_does_not_consume(self):
        fifo = Fifo(2)
        fifo.push(7)
        assert fifo.peek() == 7
        assert len(fifo) == 1
        assert fifo.pop() == 7

    def test_empty_operations_raise(self):
        fifo = Fifo(1)
        with pytest.raises(IndexError):
            fifo.pop()
        with pytest.raises(IndexError):
            fifo.peek()

    def test_try_peek(self):
        fifo = Fifo(1)
        assert fifo.try_peek() is None
        fifo.push(1)
        assert fifo.try_peek() == 1

    def test_high_water_and_count(self):
        fifo = Fifo(3)
        fifo.extend([1, 2])
        fifo.pop()
        fifo.push(3)
        fifo.push(4)
        assert fifo.high_water == 3
        assert fifo.total_pushed == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Fifo(0)

    def test_clear(self):
        fifo = Fifo(2)
        fifo.extend([1, 2])
        fifo.clear()
        assert fifo.is_empty
