"""Data/index block format with restart-point prefix compression.

A block is a run of entries

    varint32 shared_key_len | varint32 unshared_key_len | varint32 value_len
    | key_delta | value

followed by an array of fixed32 restart offsets and a fixed32 restart
count.  Every ``restart_interval``-th key is stored in full (shared = 0) so
a reader can binary-search the restart points and scan at most one
interval.  This is LevelDB's exact layout — both SSTable data blocks and
index blocks use it, and it is what the FPGA Data/Index Block Decoders
parse.

This module is on the hot path of every compaction and read, so the codec
trades a little clarity for bulk decoding: the restart array is unpacked
in a single ``struct`` call, the three per-entry varints take an inlined
single-byte fast path (lengths < 128 cover virtually every real entry),
and keys are rebuilt by slice concatenation instead of a mutable
scratch ``bytearray``.  Block images may be ``bytes``, ``bytearray`` or
``memoryview`` — decoding never copies the image, only the yielded
entries are materialized as ``bytes``.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.errors import CorruptionError
from repro.util.coding import decode_fixed32
from repro.util.comparator import Comparator
from repro.util.varint import decode_varint32, encode_varint32


class BlockBuilder:
    """Accumulates sorted key/value entries into a block image."""

    def __init__(self, restart_interval: int = 16):
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self._restart_interval = restart_interval
        self._buffer = bytearray()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._finished = False

    @property
    def is_empty(self) -> bool:
        return not self._buffer

    def current_size_estimate(self) -> int:
        """Bytes the finished block would occupy."""
        return len(self._buffer) + 4 * len(self._restarts) + 4

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry; keys must arrive in strictly increasing order
        relative to previous ``add`` calls (enforced by the table builder)."""
        if self._finished:
            raise ValueError("add after finish")
        shared = 0
        if self._counter < self._restart_interval:
            last_key = self._last_key
            min_len = min(len(last_key), len(key))
            if last_key[:min_len] == key[:min_len]:
                shared = min_len
            else:
                while last_key[shared] == key[shared]:
                    shared += 1
        else:
            self._restarts.append(len(self._buffer))
            self._counter = 0
        non_shared = len(key) - shared
        value_len = len(value)
        buffer = self._buffer
        if shared < 0x80 and non_shared < 0x80 and value_len < 0x80:
            # Single-byte varints: the overwhelmingly common case.
            buffer.append(shared)
            buffer.append(non_shared)
            buffer.append(value_len)
        else:
            buffer += encode_varint32(shared)
            buffer += encode_varint32(non_shared)
            buffer += encode_varint32(value_len)
        buffer += key[shared:]
        buffer += value
        self._last_key = key
        self._counter += 1

    def finish(self) -> bytes:
        """Seal the block and return its image."""
        if self._finished:
            raise ValueError("finish called twice")
        self._finished = True
        restarts = self._restarts
        return bytes(self._buffer) + struct.pack(
            f"<{len(restarts) + 1}I", *restarts, len(restarts))

    def reset(self) -> None:
        self._buffer.clear()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._finished = False


class Block:
    """Read-side view of a block image.

    ``contents`` may be ``bytes``, ``bytearray`` or ``memoryview``; the
    image is never copied, and yielded keys/values are always ``bytes``.
    """

    __slots__ = ("_data", "_is_bytes", "_num_restarts", "_restarts_offset",
                 "_restarts")

    def __init__(self, contents):
        size = len(contents)
        if size < 4:
            raise CorruptionError("block too small for restart count")
        self._data = contents
        self._is_bytes = isinstance(contents, bytes)
        self._num_restarts = decode_fixed32(contents, size - 4)
        self._restarts_offset = size - 4 - 4 * self._num_restarts
        if self._restarts_offset < 0 or self._num_restarts == 0:
            raise CorruptionError("bad restart array")
        # One bulk unpack replaces a fixed32 decode per binary-search probe.
        self._restarts = struct.unpack_from(
            f"<{self._num_restarts}I", contents, self._restarts_offset)

    def _restart_point(self, index: int) -> int:
        return self._restarts[index]

    def _parse_entry(self, offset: int) -> tuple[int, int, int, int]:
        """Return (shared, non_shared, value_len, key_delta_offset)."""
        shared, pos = decode_varint32(self._data, offset)
        non_shared, pos = decode_varint32(self._data, pos)
        value_len, pos = decode_varint32(self._data, pos)
        if pos + non_shared + value_len > self._restarts_offset:
            raise CorruptionError("block entry overruns restart array")
        return shared, non_shared, value_len, pos

    def _iter_from_offset(self, offset: int,
                          last_key: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        data = self._data
        limit = self._restarts_offset
        materialize = not self._is_bytes
        key = last_key
        try:
            while offset < limit:
                # Inlined varint32 x3; multi-byte lengths fall back to the
                # shared decoder.
                byte = data[offset]
                if byte < 0x80:
                    shared = byte
                    pos = offset + 1
                else:
                    shared, pos = decode_varint32(data, offset)
                byte = data[pos]
                if byte < 0x80:
                    non_shared = byte
                    pos += 1
                else:
                    non_shared, pos = decode_varint32(data, pos)
                byte = data[pos]
                if byte < 0x80:
                    value_len = byte
                    pos += 1
                else:
                    value_len, pos = decode_varint32(data, pos)
                value_start = pos + non_shared
                offset = value_start + value_len
                if offset > limit:
                    raise CorruptionError(
                        "block entry overruns restart array")
                if materialize:
                    delta = bytes(data[pos:value_start])
                    value = bytes(data[value_start:offset])
                else:
                    delta = data[pos:value_start]
                    value = data[value_start:offset]
                if shared:
                    if shared > len(key):
                        raise CorruptionError(
                            "shared prefix longer than previous key")
                    key = key[:shared] + delta
                else:
                    key = delta
                yield key, value
        except IndexError:
            raise CorruptionError("truncated block entry") from None

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` in stored order."""
        if self._restarts_offset == 0:
            return
        yield from self._iter_from_offset(0)

    def _key_at_restart(self, index: int) -> bytes:
        offset = self._restarts[index]
        shared, non_shared, _, pos = self._parse_entry(offset)
        if shared != 0:
            raise CorruptionError("restart entry has shared bytes")
        return bytes(self._data[pos:pos + non_shared])

    def seek(self, target: bytes,
             comparator: Comparator) -> Optional[tuple[bytes, bytes]]:
        """First entry with key >= ``target`` under ``comparator``."""
        for key, value in self.iter_from(target, comparator):
            return key, value
        return None

    def iter_from(self, target: bytes,
                  comparator: Comparator) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries with key >= ``target``."""
        # Binary search restart points for the last one with key < target.
        lo, hi = 0, self._num_restarts - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if comparator.compare(self._key_at_restart(mid), target) < 0:
                lo = mid
            else:
                hi = mid - 1
        compare = comparator.compare
        for key, value in self._iter_from_offset(self._restarts[lo]):
            if compare(key, target) >= 0:
                yield key, value
