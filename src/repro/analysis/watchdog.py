"""Runtime lock-order watchdog: instrumented locks with cycle detection.

The static pass in :mod:`repro.analysis.lockdiscipline` proves lexical
discipline; this module watches the *dynamic* order in which threads
actually acquire locks.  Each instrumented lock acquisition while
another instrumented lock is held adds an edge ``held -> acquired`` to
a global lock-order graph.  A cycle in that graph means two threads can
acquire the same locks in opposite orders — the classic ABBA deadlock —
even if the test run never interleaved badly enough to hang.  The
watchdog also flags long-hold outliers (a mutex held across an fsync is
exactly the bug class group commit exists to avoid).

Design constraints:

* **Zero overhead when disabled.**  The factory functions return plain
  ``threading`` primitives unless the watchdog is enabled (env var
  ``REPRO_LOCK_WATCHDOG=1`` or :func:`enable`).
* **Never deadlock the thing it watches.**  Bookkeeping uses one plain
  internal ``threading.Lock`` that is never held while user code runs,
  and journal emission is deferred until the reporting thread holds no
  instrumented locks (the journal's own lock may be instrumented —
  emitting from inside acquire bookkeeping would self-deadlock).
* **Condition-compatible.**  ``WatchdogRLock`` implements the private
  ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` protocol so
  ``threading.Condition(wrapped_lock).wait()`` fully releases and
  correctly restores both the real lock and the watchdog's books.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "LockWatchdog",
    "WatchdogLock",
    "WatchdogRLock",
    "get",
    "enabled",
    "enable",
    "disable",
    "reset",
    "make_lock",
    "make_rlock",
    "make_condition",
    "held_by_current_thread",
]

#: Default threshold for the long-hold report, in seconds.  CI boxes
#: are noisy; anything below ~100 ms flags GC pauses, not bugs.
DEFAULT_LONG_HOLD_SECONDS = 0.5


class _Held:
    """One entry in a thread's held-lock stack (reentrant-aware)."""

    __slots__ = ("serial", "name", "count", "since")

    def __init__(self, serial: int, name: str, since: float):
        self.serial = serial
        self.name = name
        self.count = 1
        self.since = since


class LockWatchdog:
    """Global acquisition-order graph plus per-thread held stacks."""

    def __init__(self, long_hold_seconds: float = DEFAULT_LONG_HOLD_SECONDS,
                 clock: Callable[[], float] = time.monotonic):
        self.long_hold_seconds = long_hold_seconds
        self._clock = clock
        # Internal bookkeeping lock: plain, never instrumented, never
        # held while calling out to user code or the journal.
        self._lock = threading.Lock()
        self._next_serial = 1
        self._tl = threading.local()
        # serial -> set of serials acquired while it was held
        self._edges: Dict[int, Set[int]] = {}
        self._names: Dict[int, str] = {}
        self._cycles: List[dict] = []
        self._cycle_keys: Set[Tuple[str, ...]] = set()
        self._long_holds: List[dict] = []
        self._acquires: Dict[str, int] = {}
        # (event_type, fields) reports awaiting a safe moment to emit.
        self._pending: List[Tuple[str, dict]] = []
        self._journal: Optional[Any] = None

    # ------------------------------------------------------------ wiring

    def new_serial(self) -> int:
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            return serial

    def attach_journal(self, journal: Any) -> None:
        """Route cycle/long-hold reports to an ``EventJournal``-like
        object (anything with ``emit(type, **fields)``)."""
        with self._lock:
            self._journal = journal

    def reset_state(self) -> None:
        """Drop the graph, findings, and every thread's held stack.
        Only call when no instrumented lock is held (e.g. between
        tests); existing wrapper objects stay valid."""
        with self._lock:
            self._edges.clear()
            self._names.clear()
            self._cycles.clear()
            self._cycle_keys.clear()
            self._long_holds.clear()
            self._acquires.clear()
            self._pending.clear()
            self._tl = threading.local()

    # ------------------------------------------------ per-thread helpers

    def _stack(self) -> List[_Held]:
        stack = getattr(self._tl, "stack", None)
        if stack is None:
            stack = []
            self._tl.stack = stack
            self._tl.seen_edges = set()
        return stack

    def held_names(self) -> List[str]:
        """Names of instrumented locks the current thread holds, in
        acquisition order (innermost last)."""
        return [entry.name for entry in self._stack()]

    # ------------------------------------------------------- bookkeeping

    def note_acquire(self, serial: int, name: str, count: int = 1) -> None:
        stack = self._stack()
        for entry in reversed(stack):
            if entry.serial == serial:
                entry.count += count
                return
        entry = _Held(serial, name, self._clock())
        entry.count = count
        if stack:
            self._note_edge(stack[-1], entry)
        stack.append(entry)
        with self._lock:
            self._acquires[name] = self._acquires.get(name, 0) + 1

    def note_release(self, serial: int, *, full: bool = False) -> int:
        """Pop one (or all, when ``full``) reentrant holds of ``serial``
        for this thread; returns the reentry count released."""
        stack = self._stack()
        released = 0
        for i in range(len(stack) - 1, -1, -1):
            entry = stack[i]
            if entry.serial != serial:
                continue
            if full:
                released = entry.count
                entry.count = 0
            else:
                released = 1
                entry.count -= 1
            if entry.count == 0:
                stack.pop(i)
                self._note_hold_time(entry)
            break
        if not stack:
            self._drain_reports()
        return released

    def _note_hold_time(self, entry: _Held) -> None:
        held_for = self._clock() - entry.since
        if held_for < self.long_hold_seconds:
            return
        report = {
            "lock": entry.name,
            "seconds": round(held_for, 6),
            "thread": threading.current_thread().name,
        }
        with self._lock:
            self._long_holds.append(report)
            self._pending.append(("lock_long_hold", dict(report)))

    def _note_edge(self, outer: _Held, inner: _Held) -> None:
        key = (outer.serial, inner.serial)
        seen: Set[Tuple[int, int]] = self._tl.seen_edges
        if key in seen:
            return
        seen.add(key)
        with self._lock:
            self._names.setdefault(outer.serial, outer.name)
            self._names.setdefault(inner.serial, inner.name)
            successors = self._edges.setdefault(outer.serial, set())
            if inner.serial in successors:
                return
            path = self._find_path(inner.serial, outer.serial)
            successors.add(inner.serial)
            if path is None:
                return
            # path runs inner -> ... -> outer; closing edge outer->inner
            # completes the cycle.
            cycle_names = tuple(self._names.get(s, f"lock-{s}")
                                for s in path)
            canonical = min(cycle_names[i:] + cycle_names[:i]
                            for i in range(len(cycle_names)))
            if canonical in self._cycle_keys:
                return
            self._cycle_keys.add(canonical)
            report = {
                "locks": list(cycle_names),
                "closing_edge": [outer.name, inner.name],
                "thread": threading.current_thread().name,
            }
            self._cycles.append(report)
            self._pending.append(("lock_cycle", {
                "locks": ",".join(cycle_names),
                "closing_edge": f"{outer.name}->{inner.name}",
                "thread": report["thread"],
            }))

    def _find_path(self, src: int, dst: int) -> Optional[List[int]]:
        """DFS path src -> dst in the edge graph (caller holds _lock)."""
        stack = [(src, [src])]
        visited = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    # --------------------------------------------------------- reporting

    def _drain_reports(self) -> None:
        """Emit queued reports once this thread holds no instrumented
        locks.  Re-entrancy guard: emit() itself acquires the (possibly
        instrumented) journal lock, whose release re-enters here."""
        if getattr(self._tl, "draining", False):
            return
        with self._lock:
            journal = self._journal
            if journal is None or not self._pending:
                return
            pending, self._pending = self._pending, []
        self._tl.draining = True
        try:
            for event_type, fields in pending:
                try:
                    journal.emit(event_type, **fields)
                except Exception:
                    # Diagnostics must never take down the store; a
                    # closed/invalid journal just drops the report.
                    pass
        finally:
            self._tl.draining = False

    def cycles(self) -> List[dict]:
        with self._lock:
            return [dict(c) for c in self._cycles]

    def long_holds(self) -> List[dict]:
        with self._lock:
            return [dict(h) for h in self._long_holds]

    def acquires(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._acquires)

    def edge_count(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._edges.values())

    def report(self) -> dict:
        """Machine-readable summary of everything observed so far."""
        with self._lock:
            return {
                "acquires": dict(self._acquires),
                "edges": sum(len(s) for s in self._edges.values()),
                "cycles": [dict(c) for c in self._cycles],
                "long_holds": [dict(h) for h in self._long_holds],
            }

    def publish(self, registry: Any) -> None:
        """Export counts as gauges on a ``MetricsRegistry``."""
        report = self.report()
        registry.gauge("lockwatch_acquires").set(
            float(sum(report["acquires"].values())))
        registry.gauge("lockwatch_edges").set(float(report["edges"]))
        registry.gauge("lockwatch_cycles").set(float(len(report["cycles"])))
        registry.gauge("lockwatch_long_holds").set(
            float(len(report["long_holds"])))


class _WatchdogLockBase:
    """Shared acquire/release plumbing for both wrapper flavours."""

    def __init__(self, watchdog: LockWatchdog, name: str, inner):
        self._watchdog = watchdog
        self.name = name
        self._inner = inner
        self._serial = watchdog.new_serial()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchdog.note_acquire(self._serial, self.name)
        return acquired

    def release(self) -> None:
        # Real release first: the bookkeeping may drain queued reports
        # once this thread's held stack empties, and that must not run
        # while the lock is still physically held.
        self._inner.release()
        self._watchdog.note_release(self._serial)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"serial={self._serial}>")


class WatchdogLock(_WatchdogLockBase):
    """Instrumented ``threading.Lock``."""

    def locked(self) -> bool:
        return self._inner.locked()


class WatchdogRLock(_WatchdogLockBase):
    """Instrumented ``threading.RLock``, Condition-compatible."""

    # Condition protocol -------------------------------------------------
    def _release_save(self):
        # Physically release first so any report drain triggered by the
        # bookkeeping below runs without the real lock held.
        inner_state = self._inner._release_save()
        count = self._watchdog.note_release(self._serial, full=True)
        return (inner_state, count)

    def _acquire_restore(self, state) -> None:
        inner_state, count = state
        self._inner._acquire_restore(inner_state)
        self._watchdog.note_acquire(self._serial, self.name, count=count)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


# ---------------------------------------------------------------- module API

_watchdog = LockWatchdog()


def _env_truthy(value: Optional[str]) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no")


_enabled = _env_truthy(os.environ.get("REPRO_LOCK_WATCHDOG"))
if _enabled:
    _hold = os.environ.get("REPRO_LOCK_WATCHDOG_HOLD_S")
    if _hold:
        try:
            _watchdog.long_hold_seconds = float(_hold)
        except ValueError:
            pass


def get() -> LockWatchdog:
    return _watchdog


def enabled() -> bool:
    return _enabled


def enable(long_hold_seconds: Optional[float] = None) -> LockWatchdog:
    """Turn instrumentation on for locks created *after* this call."""
    global _enabled
    _enabled = True
    if long_hold_seconds is not None:
        _watchdog.long_hold_seconds = long_hold_seconds
    return _watchdog


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear observed state (graph, cycles, held stacks, reports)."""
    _watchdog.reset_state()


def make_lock(name: str) -> Any:
    """A ``Lock``, instrumented when the watchdog is enabled."""
    if not _enabled:
        return threading.Lock()
    return WatchdogLock(_watchdog, name, threading.Lock())


def make_rlock(name: str) -> Any:
    """An ``RLock``, instrumented when the watchdog is enabled."""
    if not _enabled:
        return threading.RLock()
    return WatchdogRLock(_watchdog, name, threading.RLock())


def make_condition(lock: Any, name: str = "") -> threading.Condition:
    """A ``Condition`` over ``lock`` (plain or instrumented — the
    RLock wrapper implements the full Condition lock protocol)."""
    return threading.Condition(lock)


def held_by_current_thread() -> List[str]:
    """Instrumented-lock names the calling thread currently holds."""
    return _watchdog.held_names()
