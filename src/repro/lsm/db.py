"""The database façade: a single-process LevelDB-workalike.

Write path: WriteBatch → WAL record → memtable; at
``Options.write_buffer_size`` the memtable is dumped to a level-0 SSTable
(the paper's first compaction type).  Merge compactions (the second type —
the one FCAE offloads) run through a pluggable *compaction executor*, so
the same database can be driven by the CPU reference merge or by the FPGA
engine of :mod:`repro.host` without touching the storage format.

Concurrency model: two modes.

* **Synchronous** (default): deterministic, effectively single-threaded —
  maintenance runs inline inside ``write`` (``auto_compact=True``), as the
  seed reproduction always did.  Timing questions are answered by the
  discrete-event simulator in :mod:`repro.sim`.
* **Background** (``background_compaction=True``): the paper's Fig 6
  workflow on real threads.  A full memtable is swapped out under the DB
  mutex and handed to :class:`repro.host.driver.CompactionDriver`; merge
  compactions run on ``num_units`` worker threads fed by a bounded task
  queue, and completions install version edits back under the mutex.  The
  write path then throttles for real: LevelDB's L0 slowdown (per-write
  sleep) and stop (block until an L0 compaction lands) triggers, with
  stall durations published to the ``lsm_write_stall_seconds`` histogram.

Either way every public operation is safe to call from multiple threads:
state mutations hold ``_mutex``, scans capture an immutable version (plus
materialized memtable contents when a driver is live) before iterating.
"""

from __future__ import annotations

import time
from collections import deque
from itertools import islice
from typing import Callable, Iterator, Optional

from repro.analysis import watchdog as lockwatch
from repro.errors import DBStateError, NotFoundError
from repro.lsm.batch import WriteBatch
from repro.lsm.cache import LRUCache
from repro.lsm.compaction import (
    OutputTable,
    compact,
    make_compaction_sources,
)
from repro.lsm.env import Env, MemEnv
from repro.lsm.filenames import (
    current_file_name,
    event_journal_file_name,
    log_file_name,
    manifest_file_name,
    parse_log_number,
    parse_manifest_number,
    table_file_name,
)
from repro.lsm.internal import (
    InternalKeyComparator,
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
    extract_user_key,
    parse_internal_key,
)
from repro.lsm.iterator import merging_iterator
from repro.lsm.memtable import MemTable
from repro.lsm.options import (
    L0_SLOWDOWN_TRIGGER,
    L0_STOP_TRIGGER,
    NUM_LEVELS,
    Options,
)
from repro.lsm.sstable import TableBuilder, TableReader
from repro.lsm.version import (
    CompactionSpec,
    FileMetaData,
    VersionEdit,
    VersionSet,
)
from repro.lsm.wal import LogReader, LogWriter
from repro.util.coding import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)

from repro.obs import (
    current_events,
    merge_counts,
    resolve_events,
    resolve_registry,
    resolve_tracer,
)
from repro.obs.events import EventJournal, NullJournal, TeeJournal
from repro.obs.names import LsmMetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_db_report, render_level_stats
from repro.obs.slo import build_engine
from repro.obs.window import WindowedHistogram, publish_window

#: A compaction executor turns (spec, input tables, parent tables,
#: drop_deletions) into output table images.  ``repro.host`` provides the
#: FPGA-backed implementation.
CompactionExecutor = Callable[
    [CompactionSpec, list, list, bool], list[OutputTable]]


class DbStats:
    """Operational counters, in the spirit of LevelDB's
    ``GetProperty("leveldb.stats")``.

    A read-only view over the database's metrics registry (the registry
    is the single source of truth; this class keeps the historical
    attribute names).  Counter fields resolve via ``__getattr__`` from
    :data:`FIELDS`, so exposition code can iterate :meth:`as_dict`
    instead of hand-copying field lists.
    """

    #: Counter fields, in reporting order.
    FIELDS = ("writes", "write_bytes", "reads", "read_hits", "flushes",
              "flush_bytes", "compactions", "compaction_input_bytes",
              "compaction_output_bytes", "stalls", "block_cache_hits",
              "block_cache_misses")

    def __init__(self, metrics: LsmMetrics):
        self._metrics = metrics

    def __getattr__(self, name: str):
        if name in DbStats.FIELDS:
            return int(self._metrics.value(name))
        raise AttributeError(name)

    @property
    def write_amplification(self) -> float:
        """(flushed + compacted) bytes per user byte written."""
        if self.write_bytes == 0:
            return 0.0
        return ((self.flush_bytes + self.compaction_output_bytes)
                / self.write_bytes)

    @property
    def block_cache_hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        """Counter fields as a plain dict, in :data:`FIELDS` order."""
        return {field: getattr(self, field) for field in DbStats.FIELDS}

    @staticmethod
    def merge(*stats: "DbStats | dict") -> dict[str, int]:
        """Field-wise sum across databases (shard aggregation)."""
        return merge_counts(
            s if isinstance(s, dict) else s.as_dict() for s in stats)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"DbStats({inner})"


class _Writer:
    """One queued commit in the group-commit protocol.

    Writers park in :attr:`LsmDB._writers`; the front writer is the
    *leader* — it splices the queued batches into one WAL record, pays a
    single flush+fsync for the group, and marks every member ``done``
    (with the shared ``error`` if the commit failed)."""

    __slots__ = ("batch", "done", "error")

    def __init__(self, batch: WriteBatch):
        self.batch = batch
        self.done = False
        self.error: Optional[BaseException] = None


class _EnvTextSink:
    """Adapts an :class:`repro.lsm.env.WritableFile` to the text-handle
    interface :class:`repro.obs.EventJournal` writes through."""

    __slots__ = ("_file",)

    def __init__(self, wfile):
        self._file = wfile

    def write(self, text: str) -> None:
        self._file.append(text.encode())

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()


class LsmDB:
    """Open a directory (real or in-memory) as an LSM key-value store.

    Parameters
    ----------
    dbname:
        Directory for the store's files.
    options:
        Tuning knobs; defaults follow the paper's Table IV.
    env:
        Filesystem; defaults to an in-memory one.
    compaction_executor:
        Override how merge compactions execute (CPU reference by default).
    auto_compact:
        Run flushes/compactions inline when thresholds trip.  Disable for
        manual control in tests and offload demos.
    metrics:
        A :class:`repro.obs.MetricsRegistry` to publish into; defaults to
        the process-wide registry installed by :func:`repro.obs.install`
        (benchmark CLIs), else a private one.
    tracer:
        A :class:`repro.obs.Tracer` for flush/compaction spans; defaults
        to the installed tracer, else a no-op.
    events:
        A :class:`repro.obs.EventJournal` for the flight recorder's
        flush/compaction/stall events; defaults to a DB-directory
        journal when ``Options.event_journal`` is set, else the
        installed journal, else a no-op.
    background_compaction:
        Run flushes and merge compactions on background threads via a
        :class:`repro.host.driver.CompactionDriver`; the write path then
        throttles (L0 slowdown/stop) instead of maintaining inline.
        Mutually exclusive with inline ``auto_compact`` maintenance.
    num_units:
        Number of concurrent compaction workers (the paper's Compaction
        Units) and the bound of the driver's task queue.  Only meaningful
        with ``background_compaction=True``.
    """

    def __init__(self, dbname: str = "db", options: Optional[Options] = None,
                 env: Optional[Env] = None,
                 compaction_executor: Optional[CompactionExecutor] = None,
                 auto_compact: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None,
                 events=None,
                 background_compaction: bool = False,
                 num_units: int = 1):
        self.options = options or Options()
        self.env = env or MemEnv()
        self.dbname = dbname
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        self._m = LsmMetrics(self.metrics, db=dbname,
                             inst=self.metrics.instance_label())
        self._windows: Optional[dict[str, WindowedHistogram]] = None
        if self.options.latency_window_seconds > 0:
            self._windows = {
                op: WindowedHistogram(
                    window_seconds=self.options.latency_window_seconds)
                for op in ("get", "put", "write")}
            for op, window in self._windows.items():
                publish_window(
                    self.metrics, "lsm_op_latency_window_seconds",
                    "Sliding-window operation latency quantiles.",
                    window, op=op, **self._m.labels)
        self._c = self._m.counters
        self.icmp = InternalKeyComparator(self.options.comparator)
        self.versions = VersionSet(self.options, self.icmp)
        self.block_cache = (
            LRUCache(self.options.block_cache_capacity,
                     hit_counter=self._c["block_cache_hits"],
                     miss_counter=self._c["block_cache_misses"],
                     usage_gauge=self._m.cache_usage)
            if self.options.block_cache_capacity > 0 else None)
        self._executor = compaction_executor or self._cpu_executor
        self.auto_compact = auto_compact
        self._mem = MemTable(self.icmp)
        self._imm: Optional[MemTable] = None
        self._readers: dict[int, TableReader] = {}
        self._closed = False
        self._log: Optional[LogWriter] = None
        self._log_file = None
        self._log_number = 0
        self.stall_events = 0
        self.stats = DbStats(self._m)
        #: Re-entrant so the synchronous mode's inline maintenance can
        #: nest public calls; the background workers never re-enter.
        #: Instrumented by the lock watchdog when REPRO_LOCK_WATCHDOG=1.
        self._mutex = lockwatch.make_rlock("lsm.mutex")
        self._cond = lockwatch.make_condition(self._mutex)
        #: Group-commit writer queue (``wal_sync="group"``): front is
        #: the leader, the rest wait on ``_writers_cond``.
        self._writers: deque[_Writer] = deque()  # guarded_by: _mutex
        self._writers_cond = lockwatch.make_condition(self._mutex)
        #: True while the leader runs WAL I/O outside the mutex; log
        #: rotation must wait for it (the segment being synced would
        #: otherwise be closed mid-fsync).
        self._wal_writing = False  # guarded_by: _mutex
        self._last_wal_sync = time.monotonic()
        #: Live snapshot sequences → refcount (satellite: snapshot
        #: registry; compaction consults ``min``).
        self._snapshots: dict[int, int] = {}  # guarded_by: _mutex
        #: First unrecoverable background failure; surfaced to writers.
        self._bg_error: Optional[BaseException] = None  # guarded_by: _mutex
        #: Per-write sleep applied once when L0 crosses the slowdown
        #: trigger (LevelDB uses 1ms; kept short for tests).
        self.slowdown_sleep_seconds = 0.001

        self.env.create_dir(dbname)
        #: The journal owned by this DB (per-directory flight recorder);
        #: None when events come from the caller or the installed sinks.
        self._own_journal: Optional[EventJournal] = None
        if events is None and self.options.event_journal:
            self._own_journal = EventJournal(
                sink=_EnvTextSink(self.env.new_appendable_file(
                    event_journal_file_name(dbname))))
            installed = current_events()
            # The per-directory journal records regardless; an installed
            # sink (--events-out) gets the same stream teed in.
            if isinstance(installed, NullJournal):
                events = self._own_journal
            else:
                events = TeeJournal(self._own_journal, installed)
        self.events = resolve_events(events)
        if lockwatch.enabled():
            # Route lock-cycle / long-hold reports into this DB's
            # journal (last opened DB wins; diagnostics, not state).
            lockwatch.get().attach_journal(self.events)

        #: SLO engine (None unless Options.slo_specs is non-empty);
        #: scores get/put/write latencies per tenant and emits
        #: slo_alert / exemplar events into this DB's journal.
        self._slo = build_engine(self.options.slo_specs,
                                 registry=self.metrics,
                                 events=self.events)
        if self._slo is not None and self._windows is not None:
            for op, window in self._windows.items():
                window.exemplar_threshold = self._slo.threshold_for(op)
        #: One flag gating every per-op observation (windows, tenants,
        #: SLO scoring) so the disabled hot path stays a single check.
        self._op_obs = (self._windows is not None
                        or self._slo is not None)
        #: (op, tenant) -> lazily-published per-tenant window / counter.
        self._tenant_windows: dict[tuple[str, str],
                                   WindowedHistogram] = {}
        self._tenant_op_counters: dict[tuple[str, str], object] = {}
        #: Trace id of the last write-stall episode: when a foreground
        #: op has no active span of its own, its tail exemplar is
        #: attributed to the stall that delayed it.
        self._last_stall_trace = None
        self._opened_monotonic = time.monotonic()

        with self._mutex:
            self._recover_locked()
            self._new_log_locked()

        self._driver = None
        if background_compaction:
            from repro.host.driver import CompactionDriver
            self._driver = CompactionDriver(self, num_units=num_units)

    # ------------------------------------------------------------------
    # Recovery & manifest
    # ------------------------------------------------------------------

    def _recover_locked(self) -> None:
        current = current_file_name(self.dbname)
        if self.env.file_exists(current):
            manifest_name = self.env.read_file(current).decode().strip()
            self._replay_manifest_locked(manifest_name)
        self._replay_logs_locked()

    def _replay_manifest_locked(self, manifest_name: str) -> None:
        data = self.env.read_file(manifest_name)
        snapshot: Optional[bytes] = None
        for record in LogReader(data):
            snapshot = record  # last full snapshot wins
        if snapshot is None:
            return
        last_sequence = decode_fixed64(snapshot, 0)
        next_file = decode_fixed64(snapshot, 8)
        pos = 16
        edit = VersionEdit()
        num_levels = decode_fixed32(snapshot, pos)
        pos += 4
        for level in range(num_levels):
            count = decode_fixed32(snapshot, pos)
            pos += 4
            for _ in range(count):
                number = decode_fixed64(snapshot, pos)
                size = decode_fixed64(snapshot, pos + 8)
                pos += 16
                smallest, pos = get_length_prefixed_slice(snapshot, pos)
                largest, pos = get_length_prefixed_slice(snapshot, pos)
                edit.add_file(level, FileMetaData(number, size, smallest, largest))
        self.versions.apply(edit)
        self.versions.last_sequence = last_sequence
        self.versions.reuse_file_number(next_file - 1)
        for level in range(NUM_LEVELS):
            for meta in self.versions.current.files[level]:
                self._open_reader_locked(meta)

    def _replay_logs_locked(self) -> None:
        log_numbers = sorted(
            number for name in self.env.list_dir(self.dbname)
            if (number := parse_log_number(name)) is not None)
        for number in log_numbers:
            data = self.env.read_file(log_file_name(self.dbname, number))
            for record in LogReader(data):
                sequence, batch = WriteBatch.deserialize(record)
                next_seq = batch.apply_to_memtable(self._mem, sequence)
                self.versions.last_sequence = max(
                    self.versions.last_sequence, next_seq - 1)
            self.versions.reuse_file_number(number)
            if (self._mem.approximate_memory_usage
                    >= self.options.write_buffer_size):
                self._flush_memtable_locked()
        if len(self._mem):
            # Like LevelDB's RecoverLogFile: recovered writes go straight
            # to a level-0 table so retiring the old WAL cannot lose them.
            self._flush_memtable_locked()
        for number in log_numbers:
            if self.env.file_exists(log_file_name(self.dbname, number)):
                self.env.delete_file(log_file_name(self.dbname, number))

    def _durable_close(self, dest) -> None:
        """Sync-then-close for files the store's correctness depends on
        (SSTables, MANIFEST, CURRENT): with any durability mode above
        ``none``, a power loss must only ever cost WAL tail, never an
        installed table or the version state pointing at it."""
        if self.options.wal_sync != "none":
            dest.sync()
        dest.close()

    def _write_manifest(self) -> None:
        snapshot = bytearray()
        snapshot += encode_fixed64(self.versions.last_sequence)
        snapshot += encode_fixed64(self.versions.next_file_number)
        snapshot += encode_fixed32(NUM_LEVELS)
        for level in range(NUM_LEVELS):
            files = self.versions.current.files[level]
            snapshot += encode_fixed32(len(files))
            for meta in files:
                snapshot += encode_fixed64(meta.number)
                snapshot += encode_fixed64(meta.file_size)
                put_length_prefixed_slice(snapshot, meta.smallest)
                put_length_prefixed_slice(snapshot, meta.largest)
        manifest_number = self.versions.new_file_number()
        manifest_name = manifest_file_name(self.dbname, manifest_number)
        dest = self.env.new_writable_file(manifest_name)
        writer = LogWriter(dest)
        writer.add_record(bytes(snapshot))
        self._durable_close(dest)
        current = self.env.new_writable_file(current_file_name(self.dbname))
        current.append(manifest_name.encode())
        self._durable_close(current)
        # Retire older manifests.
        for name in self.env.list_dir(self.dbname):
            number = parse_manifest_number(name)
            if number is not None and number != manifest_number:
                self.env.delete_file(f"{self.dbname}/{name}")

    def _new_log_locked(self) -> None:
        # Never retire a segment a group-commit leader is still syncing
        # (the leader runs WAL I/O outside the mutex).
        while self._wal_writing:
            self._writers_cond.wait()
        if self._log_file is not None:
            self._log_file.close()
        self._log_number = self.versions.new_file_number()
        self._log_file = self.env.new_writable_file(
            log_file_name(self.dbname, self._log_number))
        self._log = LogWriter(self._log_file)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise DBStateError("database is closed")

    def put(self, key: bytes, value: bytes,
            tenant: Optional[str] = None) -> None:
        batch = WriteBatch()
        batch.put(key, value)
        if not self._op_obs:
            self.write(batch)
            return
        start = time.perf_counter()
        ok = False
        try:
            self.write(batch, tenant=tenant)
            ok = True
        finally:
            self._observe_op("put", time.perf_counter() - start,
                             tenant, ok)

    def delete(self, key: bytes, tenant: Optional[str] = None) -> None:
        batch = WriteBatch()
        batch.delete(key)
        if not self._op_obs:
            self.write(batch)
            return
        start = time.perf_counter()
        ok = False
        try:
            self.write(batch, tenant=tenant)
            ok = True
        finally:
            self._observe_op("delete", time.perf_counter() - start,
                             tenant, ok)

    def _observe_op(self, op: str, seconds: float,
                    tenant: Optional[str], ok: bool = True) -> None:
        """Fold one foreground operation into the observability surface:
        the aggregate window, the per-tenant window and op counter, and
        the SLO engine.  Only called when ``_op_obs`` is set."""
        ctx = self.tracer.current_context()
        if ctx is not None:
            trace = str(ctx.trace_id)
        elif self._last_stall_trace is not None:
            trace = str(self._last_stall_trace)
        else:
            trace = None
        self._last_stall_trace = None
        if self._windows is not None:
            window = self._windows.get(op)
            if window is not None:
                window.observe(seconds, trace_id=trace)
            if tenant is not None:
                key = (op, tenant)
                tenant_window = self._tenant_windows.get(key)
                if tenant_window is None:
                    tenant_window = WindowedHistogram(
                        window_seconds=self.options
                        .latency_window_seconds)
                    if self._slo is not None:
                        tenant_window.exemplar_threshold = \
                            self._slo.threshold_for(op, tenant)
                    self._tenant_windows[key] = tenant_window
                    publish_window(
                        self.metrics, "lsm_op_latency_window_seconds",
                        "Sliding-window operation latency quantiles.",
                        tenant_window, op=op, tenant=tenant,
                        **self._m.labels)
                tenant_window.observe(seconds, trace_id=trace)
        if tenant is not None:
            key = (op, tenant)
            counter = self._tenant_op_counters.get(key)
            if counter is None:
                counter = self.metrics.counter(
                    "lsm_tenant_ops_total",
                    "Operations by tenant and op.",
                    tenant=tenant, op=op, **self._m.labels)
                self._tenant_op_counters[key] = counter
            counter.inc()
        if self._slo is not None:
            self._slo.record(op, seconds, ok=ok,
                             tenant=tenant if tenant is not None
                             else "default",
                             trace_id=trace)

    def tenant_op_counts(self) -> dict:
        """``{tenant: {op: count}}`` for every tenant-attributed op."""
        out: dict = {}
        for (op, tenant), counter in self._tenant_op_counters.items():
            out.setdefault(tenant, {})[op] = int(counter.value)
        return out

    def uptime_seconds(self) -> float:
        """Seconds since this handle opened (monotonic clock)."""
        return time.monotonic() - self._opened_monotonic

    def journal_segments(self) -> int:
        """Number of ``journal_open`` segments in this DB's own
        ``EVENTS.jsonl`` (0 when the flight recorder is off)."""
        name = event_journal_file_name(self.dbname)
        if not self.env.file_exists(name):
            return 0
        return self.env.read_file(name).count(b'"type": "journal_open"')

    @property
    def slo_engine(self):
        """The DB's :class:`repro.obs.slo.SloEngine`, or None."""
        return self._slo

    def _check_bg_error_locked(self) -> None:
        if self._bg_error is not None:
            raise DBStateError(
                f"background maintenance failed: {self._bg_error!r}"
            ) from self._bg_error

    def _set_background_error_locked(self, error: BaseException) -> None:
        """Record the first background failure (mutex held) and wake any
        throttled writers so they surface it instead of hanging."""
        if self._bg_error is None:
            self._bg_error = error
        self._cond.notify_all()

    def write(self, batch: WriteBatch,
              tenant: Optional[str] = None) -> None:
        """Commit a batch: WAL append + persist per ``Options.wal_sync``,
        then memtable insert.  The write is acknowledged (this method
        returns) only after the WAL bytes have reached the durability
        point the configured mode promises."""
        self._check_open()
        if not len(batch):
            return
        start = time.perf_counter() if self._op_obs else 0.0
        if self.options.wal_sync == "group":
            self._group_commit(batch)
        else:
            with self._mutex:
                self._write_locked(batch)
        if self._op_obs:
            self._observe_op("write", time.perf_counter() - start, tenant)

    def _write_locked(self, batch: WriteBatch) -> None:
        """The non-group commit path (mutex held)."""
        if self._driver is not None:
            self._check_bg_error_locked()
            self._make_room_for_write_locked()
        sequence = self.versions.last_sequence + 1
        self._c["writes"].inc(len(batch))
        self._c["write_bytes"].inc(batch.byte_size())
        self._log.add_record(batch.serialize(sequence))
        self._persist_wal_locked()
        next_seq = batch.apply_to_memtable(self._mem, sequence)
        self.versions.last_sequence = next_seq - 1
        self._maintain_after_write_locked()

    def _maintain_after_write_locked(self) -> None:
        if self._driver is not None:
            if self.versions.needs_compaction():
                # Mint a trace context here so the compaction this
                # write triggers stitches back to it across the
                # driver's queue and worker threads.
                self._driver.kick(ctx=self.tracer.mint_context())
        elif self.auto_compact:
            self._maybe_maintain_locked()

    def _persist_wal_locked(self) -> None:
        """Push the just-appended WAL record to this mode's durability
        point before the writer is acknowledged (mutex held)."""
        mode = self.options.wal_sync
        if mode == "none":
            return
        self._log.flush()
        if mode == "always":
            self._sync_wal(self._log_file)
        elif mode == "interval":
            if (time.monotonic() - self._last_wal_sync
                    >= self.options.wal_sync_interval_seconds):
                self._sync_wal(self._log_file)

    def _sync_wal(self, log_file) -> None:
        """fsync one WAL segment, timed into ``lsm_wal_sync_seconds``."""
        started = time.perf_counter()
        log_file.sync()
        self._last_wal_sync = time.monotonic()
        self._m.wal_syncs.inc()
        self._m.wal_sync_seconds.observe(time.perf_counter() - started)

    def _group_commit(self, batch: WriteBatch) -> None:
        """LevelDB-style group commit (``wal_sync="group"``).

        Every writer enqueues and waits; the queue front becomes the
        leader.  The leader splices the queued batches into one WAL
        record, releases the mutex for the flush+fsync (so new writers
        can line up into the *next* group meanwhile — that overlap is
        the whole throughput win), then reacquires it to apply the
        spliced batch to the memtable and wake the group."""
        writer = _Writer(batch)
        with self._mutex:
            self._writers.append(writer)
            while not writer.done and self._writers[0] is not writer:
                self._writers_cond.wait()
            if writer.done:
                if writer.error is not None:
                    raise writer.error
                return
            # This thread leads the commit.
            if self._driver is not None:
                try:
                    self._check_bg_error_locked()
                    self._make_room_for_write_locked()
                except BaseException as exc:
                    self._finish_group_locked([writer], exc)
                    raise
            group = self._build_group_locked()
            if len(group) == 1:
                spliced = group[0].batch
            else:
                spliced = WriteBatch()
                for member in group:
                    spliced.extend(member.batch)
            sequence = self.versions.last_sequence + 1
            record = spliced.serialize(sequence)
            log, log_file = self._log, self._log_file
            self._wal_writing = True
        error: Optional[BaseException] = None
        try:
            log.add_record(record)
            log.flush()
            self._sync_wal(log_file)
        except BaseException as exc:
            error = exc
        with self._mutex:
            self._wal_writing = False
            if error is None:
                for member in group:
                    self._c["writes"].inc(len(member.batch))
                    self._c["write_bytes"].inc(member.batch.byte_size())
                next_seq = spliced.apply_to_memtable(self._mem, sequence)
                self.versions.last_sequence = next_seq - 1
                self._m.group_commit_batches.observe(len(group))
            self._finish_group_locked(group, error)
            if error is None:
                self._maintain_after_write_locked()
        if error is not None:
            raise error

    def _build_group_locked(self) -> list[_Writer]:
        """Collect the leader's group from the queue front (mutex held).

        LevelDB's rule: cap the spliced record at
        ``Options.group_commit_max_bytes``, and when the leader's own
        batch is small (≤128 KB) cap growth at +128 KB so a tiny write
        is never held hostage to a huge group."""
        front = self._writers[0]
        group = [front]
        total = front.batch.byte_size()
        max_size = self.options.group_commit_max_bytes
        if total <= 128 * 1024:
            max_size = min(max_size, total + 128 * 1024)
        for candidate in islice(self._writers, 1, None):
            total += candidate.batch.byte_size()
            if total > max_size:
                break
            group.append(candidate)
        return group

    def _finish_group_locked(self, group: list[_Writer],
                             error: Optional[BaseException]) -> None:
        """Pop ``group`` off the queue front, mark everyone done (with
        the shared error, if any) and wake waiters + log rotators."""
        for member in group:
            popped = self._writers.popleft()
            assert popped is member
            member.error = error
            member.done = True
        self._writers_cond.notify_all()

    def _make_room_for_write_locked(self) -> None:
        """LevelDB's ``MakeRoomForWrite``: real throttling for the
        background mode (mutex held).

        * L0 at the slowdown trigger → sleep once per write (gentle
          backpressure that lets the compaction units gain ground);
        * memtable full but the previous one still flushing → wait;
        * memtable full and L0 at the stop trigger → block until an L0
          compaction lands (counted as a stall, duration → histogram);
        * otherwise swap the memtable and hand it to the flush worker.
        """
        allow_delay = True
        while True:
            self._check_bg_error_locked()
            mem_full = (self._mem.approximate_memory_usage
                        >= self.options.write_buffer_size)
            l0_files = self.versions.current.num_files(0)
            if not mem_full:
                if allow_delay and l0_files >= L0_SLOWDOWN_TRIGGER:
                    allow_delay = False
                    self._driver.kick()
                    self._cond.wait(timeout=self.slowdown_sleep_seconds)
                    continue
                return
            if self._imm is not None:
                self._stall_until_locked(
                    lambda: self._imm is None,
                    kick=self._driver.kick_flush, reason="imm_full")
                continue
            if l0_files >= L0_STOP_TRIGGER:
                self._stall_until_locked(
                    lambda: (self.versions.current.num_files(0)
                             < L0_STOP_TRIGGER),
                    kick=lambda ctx=None: self._driver.kick(level=0,
                                                            ctx=ctx),
                    reason="l0_stop")
                continue
            self._swap_memtable_locked()
            return

    def _stall_until_locked(self, predicate, kick, reason: str) -> None:
        """Block the writer until ``predicate`` holds (mutex held); the
        whole episode is one stall observation.

        The episode gets a trace context (the enclosing one if the
        caller is traced, a fresh one otherwise) carried by the stall
        span, the ``stall_*`` events, and the maintenance work the kicks
        trigger — so a tail-latency exemplar recorded right after the
        stall resolves back to this episode in the journal."""
        self.stall_events += 1
        self._c["stalls"].inc()
        ctx = self.tracer.current_context()
        if ctx is None:
            ctx = self.tracer.mint_context()
        trace_fields = {} if ctx is None else {"trace": str(ctx.trace_id)}
        self.events.emit("stall_start", db=self.dbname, reason=reason,
                         **trace_fields)
        start = time.perf_counter()
        with self.tracer.activate(ctx):
            with self.tracer.span("write.stall", db=self.dbname,
                                  reason=reason):
                while (not predicate() and self._bg_error is None
                       and not self._closed):
                    kick(ctx)
                    self._cond.wait(timeout=0.05)
        waited = time.perf_counter() - start
        self._m.stall_seconds.observe(waited)
        self.events.emit("stall_finish", db=self.dbname, reason=reason,
                         seconds=waited, **trace_fields)
        if ctx is not None:
            self._last_stall_trace = ctx.trace_id
        self._check_bg_error_locked()

    def _swap_memtable_locked(self) -> None:
        """Make the active memtable immutable, rotate the WAL, and queue
        the flush (mutex held, ``_imm`` must be empty)."""
        self._imm = self._mem
        self._mem = MemTable(self.icmp)
        # New writes land in a fresh log; the old segment is retired only
        # after the immutable memtable reaches level 0.
        self._new_log_locked()
        self._driver.kick_flush(ctx=self.tracer.mint_context())

    def _maybe_maintain_locked(self) -> None:
        """Inline maintenance for the synchronous mode.  Every episode
        that does work blocks the foreground write, so its duration feeds
        the same stall histogram the background mode's waits do — that is
        the sync-vs-background comparison the driver bench reports."""
        did_work = False
        start = time.perf_counter()
        if (self._mem.approximate_memory_usage
                >= self.options.write_buffer_size):
            if self.versions.current.num_files(0) >= L0_STOP_TRIGGER:
                # Real LevelDB blocks the writer here; inline we count the
                # event and clear level 0 specifically before proceeding
                # (a generic pick could choose a deeper level and leave
                # L0 over the trigger).
                self.stall_events += 1
                self._c["stalls"].inc()
                while self.versions.current.num_files(0) >= L0_STOP_TRIGGER:
                    spec = self.versions.pick_compaction(level=0)
                    if spec is None:
                        break
                    self.run_compaction(spec)
                did_work = True
            self._flush_memtable_locked()
            did_work = True
        while self.versions.needs_compaction():
            if not self.compact_once():
                break
            did_work = True
        if did_work:
            self._m.stall_seconds.observe(time.perf_counter() - start)

    def flush(self) -> None:
        """Force the active memtable to a level-0 SSTable.

        In background mode this blocks until the flush worker has
        installed the table (or surfaces the background error)."""
        self._check_open()
        with self._mutex:
            if self._driver is not None:
                if len(self._mem):
                    while self._imm is not None and self._bg_error is None:
                        self._driver.kick_flush()
                        self._cond.wait(timeout=0.05)
                    self._check_bg_error_locked()
                    if len(self._mem):
                        self._swap_memtable_locked()
                while self._imm is not None and self._bg_error is None:
                    self._driver.kick_flush()
                    self._cond.wait(timeout=0.05)
                self._check_bg_error_locked()
                return
            if len(self._mem):
                self._flush_memtable_locked()

    def _flush_memtable_locked(self) -> None:
        if not len(self._mem):
            return
        with self.tracer.span("flush", db=self.dbname) as span:
            self._imm = self._mem
            self._mem = MemTable(self.icmp)
            try:
                self._build_imm_table_locked(span)
            except BaseException:
                self._restore_imm_after_failed_flush_locked()
                raise
            self._imm = None
            self._write_manifest()
            if self._log is not None:
                # No active WAL during recovery replay: rotating there
                # would retire segments that have not been replayed yet.
                self._new_log_locked()
                self._retire_old_logs()
            self._refresh_level_gauges_locked()

    def _build_imm_table_locked(self, span) -> None:
        """Dump ``_imm`` to a level-0 table and install it in the version
        set.  On failure the partial table file is removed and the caller
        restores the memtable."""
        number = self.versions.new_file_number()
        name = table_file_name(self.dbname, number)
        trace_id = getattr(span, "trace_id", None)
        trace_fields = ({} if trace_id is None
                        else {"trace": str(trace_id)})
        self.events.emit("flush_start", db=self.dbname, table=number,
                         **trace_fields)
        start = time.perf_counter()
        try:
            dest = self.env.new_writable_file(name)
            builder = TableBuilder(self.options, dest, self.icmp)
            for internal_key, value in self._imm:
                builder.add(internal_key, value)
            stats = builder.finish()
            self._durable_close(dest)
            meta = FileMetaData(number, stats.file_bytes,
                                builder.smallest_key, builder.largest_key)
            edit = VersionEdit()
            edit.add_file(0, meta)
            self.versions.apply(edit)
            self._open_reader_locked(meta)
        except BaseException:
            if self.env.file_exists(name):
                self.env.delete_file(name)
            raise
        self._c["flushes"].inc()
        self._c["flush_bytes"].inc(stats.file_bytes)
        self._m.add_level_write(0, stats.file_bytes)
        span.set(table=number, bytes=stats.file_bytes)
        self.events.emit(
            "flush_finish", db=self.dbname, table=number,
            bytes=stats.file_bytes,
            seconds=time.perf_counter() - start,
            write_bytes=int(self._c["write_bytes"].value),
            **trace_fields)

    def _restore_imm_after_failed_flush_locked(self) -> None:
        """A failed flush must not strand writes: fold whatever reached
        the fresh active memtable back on top of the immutable one and
        reinstate it as ``_mem``, so every committed write stays readable
        and re-flushable (the WAL segment also still holds them)."""
        restored = self._imm
        if restored is None:
            return
        for internal_key, value in self._mem:
            parsed = parse_internal_key(internal_key)
            restored.add(parsed.sequence,
                         TYPE_DELETION if parsed.is_deletion else TYPE_VALUE,
                         extract_user_key(internal_key), value)
        self._mem = restored
        self._imm = None

    def _retire_old_logs(self) -> None:
        """Delete WAL segments older than the active one (their contents
        are durable in level-0 tables now)."""
        for name in list(self.env.list_dir(self.dbname)):
            log_num = parse_log_number(name)
            if log_num is not None and log_num < self._log_number:
                self.env.delete_file(f"{self.dbname}/{name}")

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _open_reader_locked(self, meta: FileMetaData) -> TableReader:
        if meta.number not in self._readers:
            data = self.env.read_file(table_file_name(self.dbname, meta.number))
            self._readers[meta.number] = TableReader(
                data, self.icmp, self.options, self.block_cache, meta.number)
        return self._readers[meta.number]

    def _cpu_executor(self, spec: CompactionSpec, input_tables: list,
                      parent_tables: list,
                      drop_deletions: bool) -> list[OutputTable]:
        return self._cpu_merge(spec, input_tables, parent_tables,
                               drop_deletions, smallest_snapshot=None)

    def _cpu_merge(self, spec: CompactionSpec, input_tables: list,
                   parent_tables: list, drop_deletions: bool,
                   smallest_snapshot: Optional[int]) -> list[OutputTable]:
        """The CPU merge path, partitioned into sub-compactions when
        ``Options.max_subcompactions`` allows (outputs are byte-identical
        either way)."""
        if self.options.max_subcompactions > 1:
            from repro.lsm.subcompaction import subcompact

            mapper = (self._driver.map_partitions
                      if self._driver is not None else None)
            stats = subcompact(spec.level, input_tables, parent_tables,
                               self.options, self.icmp, drop_deletions,
                               smallest_snapshot=smallest_snapshot,
                               mapper=mapper)
        else:
            sources = make_compaction_sources(spec.level, input_tables,
                                              parent_tables)
            stats = compact(sources, self.options, self.icmp, drop_deletions,
                            smallest_snapshot=smallest_snapshot)
        return stats.outputs

    def _executor_backend(self) -> str:
        """Which backend ran the merge just executed on this thread.

        The scheduler records the executing backend's name
        (cpu|fpga-sim|batch, or "fallback" after a fault-forced CPU
        merge) in thread-local state precisely so this read is safe with
        multiple compaction units; executors without ``last_route`` are
        the plain CPU reference merge."""
        last_route = getattr(self._executor, "last_route", None)
        if callable(last_route):
            return last_route() or "cpu"
        return "cpu"

    def compact_once(self) -> bool:
        """Pick and execute one merge compaction; returns False when no
        compaction is due."""
        self._check_open()
        with self._mutex:
            with self.tracer.span("compaction.pick", db=self.dbname) as span:
                spec = self.versions.pick_compaction()
                span.set(picked=spec is not None)
        if spec is None:
            return False
        self.run_compaction(spec)
        return True

    def run_compaction(self, spec: CompactionSpec) -> list[FileMetaData]:
        """Execute ``spec`` through the configured executor and install
        the result.

        The merge itself runs outside the DB mutex (so ``num_units``
        background workers overlap with the write path and each other);
        reader capture before and version-edit install after both hold
        it.  Callers in background mode must guarantee the spec's files
        are not concurrently compacted (the driver's busy-set does)."""
        with self.tracer.span("compaction", db=self.dbname,
                              level=spec.level,
                              output_level=spec.output_level,
                              input_bytes=spec.total_input_bytes) as span:
            return self._run_compaction(spec, span)

    def _run_compaction(self, spec: CompactionSpec,
                        span) -> list[FileMetaData]:
        base_bytes = sum(m.file_size for m in spec.inputs)
        parent_bytes = sum(m.file_size for m in spec.parents)
        trace_id = getattr(span, "trace_id", None)
        trace_fields = ({} if trace_id is None
                        else {"trace": str(trace_id)})
        self.events.emit(
            "compaction_start", db=self.dbname, level=spec.level,
            output_level=spec.output_level, reason=spec.reason,
            input_bytes=spec.total_input_bytes, **trace_fields)
        start = time.perf_counter()
        with self._mutex:
            input_tables = [self._open_reader_locked(m) for m in spec.inputs]
            parent_tables = [self._open_reader_locked(m) for m in spec.parents]
            if spec.level == 0:
                # Newest-first so the merge meets newer versions first
                # (the internal-key order already guarantees it; this
                # keeps the tie-break rule aligned anyway).
                pairs = sorted(zip(spec.inputs, input_tables),
                               key=lambda p: p[0].number, reverse=True)
                input_tables = [t for _, t in pairs]
            drop = self.versions.is_bottommost_level_for(spec)
            smallest_snapshot = self._smallest_live_snapshot_locked()

        if smallest_snapshot is not None:
            # Live snapshots: route to the snapshot-preserving CPU merge
            # (the FPGA engine keeps only the newest version per key, so
            # offloading here could drop versions a snapshot still needs).
            outputs = self._snapshot_merge(
                spec, input_tables, parent_tables, drop, smallest_snapshot)
            span.set(snapshot_merge=True,
                     smallest_snapshot=smallest_snapshot)
            backend = "cpu"
        else:
            outputs = self._executor(spec, input_tables, parent_tables, drop)
            backend = self._executor_backend()

        # Write and durably close the output tables *before* taking the
        # mutex: fsyncing N tables under the DB lock would stall every
        # writer for the whole disk flush (the exact bug class the
        # lock-discipline lint's LD003/LD004 rules exist to catch — the
        # analyzer found this running under the mutex).  Nothing
        # references the new file numbers until the version edit below
        # installs them, so only the number allocation needs the lock.
        new_metas: list[FileMetaData] = []
        try:
            for output in outputs:
                with self._mutex:
                    number = self.versions.new_file_number()
                name = table_file_name(self.dbname, number)
                dest = self.env.new_writable_file(name)
                dest.append(output.data)
                self._durable_close(dest)
                new_metas.append(FileMetaData(
                    number, len(output.data),
                    output.smallest, output.largest))
        except BaseException:
            # Uninstalled outputs are garbage: remove what was written
            # so a failed compaction leaves no orphan tables behind.
            for meta in new_metas:
                name = table_file_name(self.dbname, meta.number)
                if self.env.file_exists(name):
                    self.env.delete_file(name)
            raise

        with self._mutex:
            output_bytes = sum(len(o.data) for o in outputs)
            self._c["compactions"].inc()
            self._c["compaction_input_bytes"].inc(spec.total_input_bytes)
            self._c["compaction_output_bytes"].inc(output_bytes)
            self._m.add_level_write(spec.output_level, output_bytes)
            self._m.add_level_read(spec.level, base_bytes)
            if parent_bytes:
                self._m.add_level_read(spec.output_level, parent_bytes)
            span.set(output_bytes=output_bytes, output_tables=len(outputs),
                     backend=backend)
            self.events.emit(
                "compaction_finish", db=self.dbname, level=spec.level,
                output_level=spec.output_level, reason=spec.reason,
                backend=backend, input_bytes=spec.total_input_bytes,
                output_bytes=output_bytes, input_bytes_base=base_bytes,
                input_bytes_parent=parent_bytes,
                seconds=time.perf_counter() - start,
                write_bytes=int(self._c["write_bytes"].value),
                **trace_fields)
            with self.tracer.span("compaction.install"):
                edit = VersionEdit()
                for meta in spec.inputs:
                    edit.delete_file(spec.level, meta.number)
                for meta in spec.parents:
                    edit.delete_file(spec.output_level, meta.number)
                for meta in new_metas:
                    edit.add_file(spec.output_level, meta)
                self.versions.apply(edit)
                for meta in new_metas:
                    self._open_reader_locked(meta)
                for old in spec.inputs + spec.parents:
                    self._readers.pop(old.number, None)
                    self.env.delete_file(
                        table_file_name(self.dbname, old.number))
                self._write_manifest()
            self._refresh_level_gauges_locked()
            self._cond.notify_all()
        return new_metas

    def _snapshot_merge(self, spec: CompactionSpec, input_tables: list,
                        parent_tables: list, drop_deletions: bool,
                        smallest_snapshot: int) -> list[OutputTable]:
        """CPU merge that keeps, per user key, the newest version at or
        below every live snapshot (LevelDB's ``last_sequence_for_key``
        rule)."""
        self._m.snapshot_merges.inc()
        return self._cpu_merge(spec, input_tables, parent_tables,
                               drop_deletions,
                               smallest_snapshot=smallest_snapshot)

    def _background_flush(self) -> None:
        """Flush worker entry point: dump ``_imm`` to a level-0 table.

        The table build runs *without* the mutex (``_imm`` is immutable
        by construction), so foreground writes proceed into the fresh
        memtable meanwhile; only the version-edit install takes the lock.
        On failure ``_imm`` stays set — its writes remain readable and
        its WAL segment is retained — and the driver records the error.
        """
        with self._mutex:
            imm = self._imm
            if imm is None or self._closed:
                return
            number = self.versions.new_file_number()
        with self.tracer.span("flush", db=self.dbname) as span:
            name = table_file_name(self.dbname, number)
            trace_id = getattr(span, "trace_id", None)
            trace_fields = ({} if trace_id is None
                            else {"trace": str(trace_id)})
            self.events.emit("flush_start", db=self.dbname, table=number,
                             **trace_fields)
            start = time.perf_counter()
            try:
                dest = self.env.new_writable_file(name)
                builder = TableBuilder(self.options, dest, self.icmp)
                for internal_key, value in imm:
                    builder.add(internal_key, value)
                stats = builder.finish()
                self._durable_close(dest)
            except BaseException:
                if self.env.file_exists(name):
                    self.env.delete_file(name)
                raise
            with self._mutex:
                meta = FileMetaData(number, stats.file_bytes,
                                    builder.smallest_key,
                                    builder.largest_key)
                edit = VersionEdit()
                edit.add_file(0, meta)
                self.versions.apply(edit)
                self._open_reader_locked(meta)
                self._c["flushes"].inc()
                self._c["flush_bytes"].inc(stats.file_bytes)
                self._m.add_level_write(0, stats.file_bytes)
                span.set(table=number, bytes=stats.file_bytes)
                self.events.emit(
                    "flush_finish", db=self.dbname, table=number,
                    bytes=stats.file_bytes,
                    seconds=time.perf_counter() - start,
                    write_bytes=int(self._c["write_bytes"].value),
                    **trace_fields)
                self._imm = None
                self._write_manifest()
                self._retire_old_logs()
                self._refresh_level_gauges_locked()
                self._cond.notify_all()
        if self.versions.needs_compaction():
            # Still inside the flush's activated context: the compaction
            # this flush triggers joins the same trace.
            self._driver.kick(ctx=self.tracer.current_context())

    def compact_range(self) -> None:
        """Compact until no level is over budget (full maintenance).

        In background mode this drains the driver: it keeps kicking and
        waiting until no compaction is due and all workers are idle."""
        self.flush()
        if self._driver is not None:
            with self._mutex:
                while self._bg_error is None:
                    if (not self.versions.needs_compaction()
                            and self._driver.idle()):
                        break
                    self._driver.kick(ctx=self.tracer.mint_context())
                    self._cond.wait(timeout=0.05)
                self._check_bg_error_locked()
            return
        while self.versions.needs_compaction():
            if not self.compact_once():
                break

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def snapshot(self) -> "Snapshot":
        """Capture a read view at the current sequence number.

        The snapshot is registered with the database: as long as it is
        live, compaction keeps — for every user key — the newest version
        at or below its sequence, so reads through the snapshot stay
        correct across flushes and compactions (LevelDB's
        ``last_sequence_for_key`` rule).  Release it with
        :meth:`Snapshot.close` (or use it as a context manager) so
        compaction can reclaim the old versions again.
        """
        self._check_open()
        with self._mutex:
            sequence = self.versions.last_sequence
            self._snapshots[sequence] = self._snapshots.get(sequence, 0) + 1
            self._m.snapshots_live.set(sum(self._snapshots.values()))
            return Snapshot(self, sequence)

    def release_snapshot(self, snapshot: "Snapshot") -> None:
        """Unregister ``snapshot``; idempotent."""
        snapshot._check_owner(self)
        with self._mutex:
            if snapshot._released:
                return
            snapshot._released = True
            count = self._snapshots.get(snapshot.sequence, 0)
            if count <= 1:
                self._snapshots.pop(snapshot.sequence, None)
            else:
                self._snapshots[snapshot.sequence] = count - 1
            self._m.snapshots_live.set(sum(self._snapshots.values()))

    def _smallest_live_snapshot_locked(self) -> Optional[int]:
        """Sequence of the oldest live snapshot (mutex held), or None."""
        return min(self._snapshots) if self._snapshots else None

    def get(self, key: bytes, snapshot: "Snapshot | None" = None,
            tenant: Optional[str] = None) -> bytes:
        """Return the value of ``key`` (newest, or as of ``snapshot``).

        Raises :class:`NotFoundError` when absent or deleted.
        """
        self._check_open()
        if snapshot is not None:
            snapshot._check_owner(self)
        start = time.perf_counter() if self._op_obs else 0.0
        with self._mutex:
            sequence = (snapshot.sequence if snapshot is not None
                        else self.versions.last_sequence)
            try:
                return self._get_at_locked(key, sequence)
            finally:
                if self._op_obs:
                    # NotFoundError is a successful lookup of an absent
                    # key, not an availability failure.
                    self._observe_op("get",
                                     time.perf_counter() - start, tenant)

    def _get_at_locked(self, key: bytes, snapshot: int) -> bytes:
        self._c["reads"].inc()
        try:
            value = self._mem.get(key, snapshot)
        except NotFoundError:
            raise NotFoundError(key) from None
        if value is not None:
            self._c["read_hits"].inc()
            return value
        if self._imm is not None:
            try:
                value = self._imm.get(key, snapshot)
            except NotFoundError:
                raise NotFoundError(key) from None
            if value is not None:
                self._c["read_hits"].inc()
                return value
        lookup = encode_internal_key(key, snapshot, 0x1)
        for _level, meta in self.versions.current.files_for_key(key):
            reader = self._open_reader_locked(meta)
            if not reader.key_may_match(key):
                continue
            entry = reader.get(lookup)
            if entry is None:
                continue
            internal_key, value = entry
            if extract_user_key(internal_key) != key:
                continue
            parsed = parse_internal_key(internal_key)
            if parsed.is_deletion:
                raise NotFoundError(key)
            self._c["read_hits"].inc()
            return value
        raise NotFoundError(key)

    def scan(self, start: Optional[bytes] = None,
             end: Optional[bytes] = None,
             snapshot: "Snapshot | None" = None
             ) -> Iterator[tuple[bytes, bytes]]:
        """Range scan over live user keys in ``[start, end)``.

        With ``snapshot``, entries newer than the snapshot's sequence are
        invisible.
        """
        self._check_open()
        if snapshot is not None:
            snapshot._check_owner(self)
        lookup = (encode_internal_key(start, MAX_SEQUENCE, 0x1)
                  if start is not None else None)

        def mem_source(mem: MemTable):
            for internal_key, value in mem:
                if (lookup is not None
                        and self.icmp.compare(internal_key, lookup) < 0):
                    continue
                yield internal_key, value

        with self._mutex:
            visible_sequence = (snapshot.sequence if snapshot is not None
                                else self.versions.last_sequence)
            sources = []
            if self._driver is not None:
                # Background mode: the skiplist may be concurrently
                # mutated, so snapshot the memtable contents up front.
                # Table readers are immutable byte images, safe to keep.
                sources.append(iter(list(mem_source(self._mem))))
                if self._imm is not None:
                    sources.append(iter(list(mem_source(self._imm))))
            else:
                sources.append(mem_source(self._mem))
                if self._imm is not None:
                    sources.append(mem_source(self._imm))
            for level in range(NUM_LEVELS):
                files = self.versions.current.files[level]
                if level == 0:
                    ordered = sorted(files, key=lambda f: f.number,
                                     reverse=True)
                else:
                    ordered = files
                for meta in ordered:
                    reader = self._open_reader_locked(meta)
                    if lookup is not None:
                        sources.append(reader.iter_from(lookup))
                    else:
                        sources.append(iter(reader))
        user_cmp = self.options.comparator.compare
        last_user: Optional[bytes] = None
        for internal_key, value in merging_iterator(sources, self.icmp.compare):
            user_key = extract_user_key(internal_key)
            if end is not None and user_cmp(user_key, end) >= 0:
                return
            parsed = parse_internal_key(internal_key)
            if parsed.sequence > visible_sequence:
                continue  # newer than the snapshot: invisible
            if last_user is not None and user_cmp(user_key, last_user) == 0:
                continue
            last_user = user_key
            if parsed.is_deletion:
                continue
            yield user_key, value

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------

    def level_file_counts(self) -> list[int]:
        with self._mutex:
            return [self.versions.current.num_files(level)
                    for level in range(NUM_LEVELS)]

    def level_sizes(self) -> list[int]:
        with self._mutex:
            return [self.versions.current.level_bytes(level)
                    for level in range(NUM_LEVELS)]

    def _refresh_level_gauges_locked(self) -> None:
        """Publish per-level file counts, sizes and amplification gauges
        after shape changes (mutex held)."""
        for level in range(NUM_LEVELS):
            self._m.set_level(level,
                              self.versions.current.num_files(level),
                              self.versions.current.level_bytes(level))
        for row in self._level_amplification_locked():
            self._m.set_level_amp(row["level"], row["write_amp"],
                                  row["space_amp"], row["read_amp"])

    def _level_amplification_locked(self) -> list[dict]:
        """Per-level amplification rows (mutex held).

        * write amp: bytes installed into the level (flush output for
          L0, compaction output below) over user write bytes — the
          per-level decomposition of :attr:`DbStats.write_amplification`;
        * space amp: level bytes over the bytes of the last non-empty
          level (the logical dataset size estimate);
        * read amp: sorted runs a point lookup may touch — the L0 file
          count, and 1 for any non-empty deeper level.
        """
        write_bytes = self._c["write_bytes"].value
        sizes = [self.versions.current.level_bytes(level)
                 for level in range(NUM_LEVELS)]
        last_bytes = next((size for size in reversed(sizes) if size), 0)
        rows = []
        for level in range(NUM_LEVELS):
            files = self.versions.current.num_files(level)
            level_writes = self._m.level_write_bytes(level)
            rows.append({
                "level": level,
                "files": files,
                "bytes": sizes[level],
                "write_bytes": level_writes,
                "read_bytes": self._m.level_read_bytes(level),
                "write_amp": (level_writes / write_bytes
                              if write_bytes else 0.0),
                "space_amp": (sizes[level] / last_bytes
                              if last_bytes else 0.0),
                "read_amp": (float(files) if level == 0
                             else (1.0 if sizes[level] else 0.0)),
            })
        return rows

    def level_amplification(self) -> list[dict]:
        """Per-level amplification accounting, one dict per level with
        ``level``, ``files``, ``bytes``, ``write_bytes``, ``read_bytes``,
        ``write_amp``, ``space_amp`` and ``read_amp`` keys."""
        self._check_open()
        with self._mutex:
            return self._level_amplification_locked()

    def property(self, name: str) -> str:
        """LevelDB-style ``GetProperty``.

        Supported names: ``repro.stats`` (the human-readable report),
        ``repro.levelstats`` (per-level amplification table),
        ``repro.num-files-at-level<N>``, and
        ``repro.approximate-memory-usage`` (live memtable bytes).
        Raises :class:`NotFoundError` for unknown properties.
        """
        self._check_open()
        with self._mutex:
            if name == "repro.stats":
                return render_db_report(self)
            if name == "repro.levelstats":
                return render_level_stats(self)
            prefix = "repro.num-files-at-level"
            if name.startswith(prefix):
                try:
                    level = int(name[len(prefix):])
                except ValueError:
                    raise NotFoundError(name) from None
                if not 0 <= level < NUM_LEVELS:
                    raise NotFoundError(name)
                return str(self.versions.current.num_files(level))
            if name == "repro.approximate-memory-usage":
                usage = self._mem.approximate_memory_usage
                if self._imm is not None:
                    usage += self._imm.approximate_memory_usage
                return str(usage)
            raise NotFoundError(name)

    def approximate_size(self, start: bytes, end: bytes) -> int:
        """Approximate on-disk bytes occupied by user keys in
        ``[start, end)`` (LevelDB's ``GetApproximateSizes``).

        Counts the file-size share of every table whose range intersects
        the query, scaled by the overlap fraction assuming uniform keys
        within a table.
        """
        self._check_open()
        user_cmp = self.options.comparator.compare
        if user_cmp(start, end) >= 0:
            return 0
        total = 0
        with self._mutex:
            files_by_level = [list(self.versions.current.files[level])
                              for level in range(NUM_LEVELS)]
        for level in range(NUM_LEVELS):
            for meta in files_by_level[level]:
                file_small, file_large = meta.user_range()
                if (user_cmp(file_large, start) < 0
                        or user_cmp(file_small, end) >= 0):
                    continue
                contained = (user_cmp(start, file_small) <= 0
                             and user_cmp(file_large, end) < 0)
                if contained:
                    total += meta.file_size
                else:
                    # Partial overlap: charge half as a coarse estimate
                    # (LevelDB uses index-block offsets; half-file keeps
                    # the estimate monotone without opening the table).
                    total += meta.file_size // 2
        return total

    def table_reader(self, number: int) -> TableReader:
        """Open reader for file ``number`` (used by the FPGA host layer)."""
        with self._mutex:
            for level in range(NUM_LEVELS):
                for meta in self.versions.current.files[level]:
                    if meta.number == number:
                        return self._open_reader_locked(meta)
        raise NotFoundError(f"table {number}")

    def close(self) -> None:
        if self._closed:
            return
        if self._driver is not None:
            # Drain pending background work first (workers need the
            # mutex, so this must run without holding it), then stop.
            self._driver.close()
        with self._mutex:
            if self._closed:
                return
            # Let queued group commits drain: every writer in the queue
            # has been promised an acknowledgement or an error.
            while self._writers or self._wal_writing:
                self._writers_cond.wait(timeout=0.05)
            if self._log_file is not None:
                self._log_file.close()
            if self._own_journal is not None:
                self._own_journal.close()
            self._closed = True
            self._cond.notify_all()

    def __enter__(self) -> "LsmDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Snapshot:
    """A consistent read view of one :class:`LsmDB`.

    Carries the sequence number observed at creation; pass it to
    :meth:`LsmDB.get` / :meth:`LsmDB.scan` to read as of that point.
    While live it pins its versions against compaction; release it with
    :meth:`close` or by using it as a context manager.
    """

    __slots__ = ("_db", "sequence", "_released")

    def __init__(self, db: LsmDB, sequence: int):
        self._db = db
        self.sequence = sequence
        self._released = False

    def close(self) -> None:
        """Release the snapshot's pin on old versions; idempotent."""
        self._db.release_snapshot(self)

    @property
    def released(self) -> bool:
        return self._released

    def _check_owner(self, db: LsmDB) -> None:
        if db is not self._db:
            raise DBStateError("snapshot belongs to a different database")

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Snapshot(sequence={self.sequence}, "
                f"released={self._released})")
