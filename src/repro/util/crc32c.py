"""CRC32C (Castagnoli) with LevelDB's masking.

LevelDB stores CRCs *masked* — rotated and offset — so that computing the
CRC of a string that already contains an embedded CRC does not degrade the
checksum.  The polynomial here is the Castagnoli polynomial 0x1EDC6F41
(reflected form 0x82F63B78), the same one used by LevelDB/RocksDB, iSCSI
and ext4.
"""

from __future__ import annotations

_POLY = 0x82F63B78
_MASK_DELTA = 0xA282EAD8
_U32 = 0xFFFFFFFF


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """Return the CRC32C of ``data``, extending a running ``value``."""
    crc = value ^ _U32
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ _U32


def mask_crc(crc: int) -> int:
    """Mask a raw CRC for storage (LevelDB's ``crc32c::Mask``)."""
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & _U32


def unmask_crc(masked: int) -> int:
    """Invert :func:`mask_crc`."""
    rot = (masked - _MASK_DELTA) & _U32
    return ((rot >> 17) | (rot << 15)) & _U32
