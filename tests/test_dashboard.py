"""Dashboard rendering: pure-view frames from a registry snapshot and
the injectable refresh loop behind ``lsm top`` (no real sleeping)."""

import io

from repro.obs.dashboard import CLEAR, render_dashboard, run_dashboard
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloEngine, SloSpec


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def storming_engine(registry):
    """An engine whose one SLO is firing, gauges published."""
    spec = SloSpec("api", "latency", target=0.99, threshold_seconds=0.01,
                   op="put", policies=[
                       {"name": "fast", "short_seconds": 10.0,
                        "long_seconds": 60.0, "factor": 5.0}])
    clock = FakeClock()
    engine = SloEngine((spec,), registry=registry, clock=clock,
                       eval_interval=1.0)
    for step in range(40):
        clock.now = step * 0.5
        engine.record("put", 0.5, tenant="gold")
    engine.evaluate()
    return engine


class TestRenderDashboard:
    def test_empty_registry_renders_placeholder(self):
        frame = render_dashboard(MetricsRegistry())
        assert frame.startswith("lsm top")
        assert "(no samples yet)" in frame

    def test_uptime_in_header(self):
        frame = render_dashboard(MetricsRegistry(), uptime_seconds=12.34)
        assert "uptime 12.3s" in frame

    def test_firing_slo_marked(self):
        registry = MetricsRegistry()
        engine = storming_engine(registry)
        frame = render_dashboard(registry, engine=engine)
        assert "slo burn rates:" in frame
        row = next(line for line in frame.splitlines()
                   if line.strip().startswith("api"))
        assert "FIRING" in row

    def test_burn_rows_without_engine_show_unknown_state(self):
        # The bench --top path renders from a bare registry; without an
        # engine the firing state is unknowable, not "ok".
        registry = MetricsRegistry()
        storming_engine(registry)
        frame = render_dashboard(registry)
        row = next(line for line in frame.splitlines()
                   if line.strip().startswith("api"))
        assert row.rstrip().endswith("-")
        assert "FIRING" not in row

    def test_tenant_and_routing_sections(self):
        registry = MetricsRegistry()
        registry.counter("lsm_tenant_ops_total", "Tenant ops.",
                         tenant="gold", op="put").inc(1500)
        registry.counter("scheduler_tasks_total", "Tasks.",
                         route="fpga").inc(3)
        registry.counter("scheduler_tasks_total", route="software").inc(1)
        frame = render_dashboard(registry)
        assert "tenant ops:" in frame
        assert "put=1.50k" in frame
        assert "compaction routing:" in frame
        assert "(75.0%)" in frame


class TestRunDashboard:
    def test_once_prints_single_frame_without_clear(self):
        out = io.StringIO()
        sleeps = []
        run_dashboard(MetricsRegistry(), iterations=1, out=out,
                      clock=FakeClock(), sleep=sleeps.append)
        text = out.getvalue()
        assert text.count("lsm top") == 1
        assert CLEAR not in text
        assert sleeps == []

    def test_refresh_loop_clears_between_frames(self):
        out = io.StringIO()
        clock = FakeClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.now += seconds

        run_dashboard(MetricsRegistry(), interval=2.0, iterations=3,
                      out=out, clock=clock, sleep=sleep)
        text = out.getvalue()
        assert text.count("lsm top") == 3
        assert text.count(CLEAR) == 2
        assert sleeps == [2.0, 2.0]
        assert "uptime 4.0s" in text
