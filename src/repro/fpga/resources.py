"""FPGA resource estimator — reproduces the paper's Table VII.

The paper reports post-synthesis utilization of the KCU1500 for six
``(N, W_in, V)`` configurations.  This module provides a linear
per-component cost model

    util% = base + per_input_fixed * N + N * (q * W_in + r * V)

whose nine coefficients (three per resource class) are least-squares
fitted to the paper's six data points.  The model reproduces every
reported cell within ~4 percentage points — in particular the three
infeasible 9-input configurations whose LUT demand exceeds 100% — and is
what the host-side scheduler consults before instantiating an engine.

The dominant term matches the paper's observation that "the Stream
Downsizer module on FPGA consumes considerable LUT resource, and the
added Decoder would occupy all of them": LUT cost grows with
``N * W_in`` (one downsizer per input, width-proportional).

``W_out`` is 64 in every reported configuration, so its cost is absorbed
into the base term; the estimator exposes it as an explicit small linear
term for sensitivity studies but calibrates it to zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import FpgaConfig

#: Fitted coefficients: (base, per_input, per_input_per_w_in, per_input_per_v)
_LUT_COEFFS = (21.0, 1.8, 0.25, 0.40)
_FF_COEFFS = (3.8, 0.52, 0.026, 0.05)
_BRAM_COEFFS = (12.1, 0.82, 0.018, 0.058)

#: KCU1500 (Kintex UltraScale XCKU115) device totals, for absolute counts.
KCU1500_LUTS = 663_360
KCU1500_FFS = 1_326_720
KCU1500_BRAM_BLOCKS = 2_160


@dataclass(frozen=True)
class ResourceReport:
    """Utilization percentages for one configuration."""

    num_inputs: int
    w_in: int
    value_width: int
    bram_pct: float
    ff_pct: float
    lut_pct: float

    @property
    def fits(self) -> bool:
        """True when the configuration is placeable on the device."""
        return (self.bram_pct <= 100.0 and self.ff_pct <= 100.0
                and self.lut_pct <= 100.0)

    @property
    def lut_count(self) -> int:
        return round(self.lut_pct / 100.0 * KCU1500_LUTS)

    @property
    def ff_count(self) -> int:
        return round(self.ff_pct / 100.0 * KCU1500_FFS)

    @property
    def bram_count(self) -> int:
        return round(self.bram_pct / 100.0 * KCU1500_BRAM_BLOCKS)


def _evaluate(coeffs: tuple[float, float, float, float], num_inputs: int,
              w_in: int, value_width: int) -> float:
    base, per_input, per_w_in, per_v = coeffs
    return (base + per_input * num_inputs
            + num_inputs * (per_w_in * w_in + per_v * value_width))


def estimate_resources(config: FpgaConfig) -> ResourceReport:
    """Estimate device utilization for ``config``."""
    return estimate_for(config.num_inputs, config.w_in, config.value_width)


def estimate_for(num_inputs: int, w_in: int,
                 value_width: int) -> ResourceReport:
    """Estimate device utilization for raw ``(N, W_in, V)``."""
    return ResourceReport(
        num_inputs=num_inputs,
        w_in=w_in,
        value_width=value_width,
        bram_pct=round(_evaluate(_BRAM_COEFFS, num_inputs, w_in,
                                 value_width), 1),
        ff_pct=round(_evaluate(_FF_COEFFS, num_inputs, w_in,
                               value_width), 1),
        lut_pct=round(_evaluate(_LUT_COEFFS, num_inputs, w_in,
                                value_width), 1),
    )


def best_feasible_config(num_inputs: int, w_out: int = 64,
                         clock_mhz: float = 200.0) -> FpgaConfig:
    """Largest (W_in, V) pair that fits for ``num_inputs`` inputs.

    Mirrors the paper's §VII-C1 procedure: keep ``W_out`` at 64 (the
    output path is single), then shrink ``W_in`` and ``V`` together until
    every resource class is under 100%.  Candidates are searched in
    decreasing bandwidth order.
    """
    candidates = [(w, v)
                  for w in (64, 32, 16, 8, 4, 2, 1)
                  for v in (64, 32, 16, 8, 4, 2, 1)
                  if v <= w]
    # V dominates performance (the Data Block Decoder period is
    # L_key + L_value / V), so prefer the widest V, then the widest W_in.
    candidates.sort(key=lambda wv: (wv[1], wv[0]), reverse=True)
    for w_in, value_width in candidates:
        if estimate_for(num_inputs, w_in, value_width).fits:
            return FpgaConfig(num_inputs=num_inputs, value_width=value_width,
                              w_in=w_in, w_out=w_out, clock_mhz=clock_mhz)
    raise ValueError(f"no feasible configuration for N={num_inputs}")
