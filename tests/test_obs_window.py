"""WindowedHistogram: percentile math, slice expiry on the injected
clock, quantile monotonicity, and gauge publication."""

import random

import pytest

from repro.errors import InvalidArgumentError
from repro.obs.exposition import to_prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs.window import (
    WindowedHistogram,
    publish_window,
    quantile_label,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPercentiles:
    def test_empty_window_reads_zero(self):
        window = WindowedHistogram()
        assert window.percentile(0.99) == 0.0
        assert window.count == 0
        assert window.sum == 0.0

    def test_interpolation_inside_bucket(self):
        window = WindowedHistogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            window.observe(value)
        # p50 lands exactly at the boundary of the first bucket.
        assert window.percentile(0.5) == pytest.approx(1.0)
        # p100 exhausts the second bucket (counts 2 of 2 -> upper bound).
        assert window.percentile(1.0) == pytest.approx(2.0)
        assert 0.0 < window.percentile(0.25) <= 1.0

    def test_overflow_bucket_reports_top_bound(self):
        window = WindowedHistogram(buckets=(1.0, 2.0))
        window.observe(50.0)
        assert window.percentile(0.5) == 2.0

    def test_monotone_in_q(self):
        window = WindowedHistogram()
        rng = random.Random(7)
        for _ in range(500):
            window.observe(rng.expovariate(100.0))
        quantiles = [window.percentile(q / 100) for q in range(0, 101, 5)]
        assert quantiles == sorted(quantiles)

    def test_count_and_sum(self):
        window = WindowedHistogram()
        for value in (0.001, 0.002, 0.003):
            window.observe(value)
        assert window.count == 3
        assert window.sum == pytest.approx(0.006)


class TestExpiry:
    def test_observations_age_out_of_the_window(self):
        clock = FakeClock()
        window = WindowedHistogram(window_seconds=60.0, slices=6,
                                   clock=clock)
        window.observe(0.5)
        assert window.count == 1
        clock.now = 120.0  # two windows later: slice is stale
        assert window.count == 0
        assert window.percentile(0.99) == 0.0

    def test_window_reflects_only_recent_slices(self):
        clock = FakeClock()
        window = WindowedHistogram(window_seconds=60.0, slices=6,
                                   buckets=(0.01, 0.1, 1.0, 10.0),
                                   clock=clock)
        for _ in range(100):
            window.observe(0.005)   # fast ops, early
        clock.now = 90.0            # early slice expired
        for _ in range(10):
            window.observe(5.0)     # slow ops, now
        assert window.count == 10
        assert window.percentile(0.5) > 1.0

    def test_stale_slot_recycled_in_place(self):
        clock = FakeClock()
        window = WindowedHistogram(window_seconds=6.0, slices=3,
                                   clock=clock)
        for step in range(12):
            clock.now = float(step)
            window.observe(0.01)
        # Ring holds `slices` slots regardless of elapsed time.
        assert len(window._ring) == 3
        assert window.count <= 6


class TestValidation:
    def test_bad_construction_rejected(self):
        with pytest.raises(InvalidArgumentError):
            WindowedHistogram(window_seconds=0)
        with pytest.raises(InvalidArgumentError):
            WindowedHistogram(slices=0)
        with pytest.raises(InvalidArgumentError):
            WindowedHistogram(buckets=(2.0, 1.0))

    def test_quantile_range_checked(self):
        window = WindowedHistogram()
        with pytest.raises(InvalidArgumentError):
            window.percentile(1.5)

    def test_quantile_labels(self):
        assert quantile_label(0.99) == "p99"
        assert quantile_label(0.999) == "p999"
        assert quantile_label(0.75) == "p75"


class TestPublication:
    def test_quantile_gauges_in_exposition(self):
        registry = MetricsRegistry()
        window = WindowedHistogram()
        publish_window(registry, "op_window_seconds",
                       "windowed op latency", window, op="get")
        for _ in range(100):
            window.observe(0.004)
        text = to_prometheus_text(registry)
        lines = [line for line in text.splitlines()
                 if line.startswith("op_window_seconds{")]
        assert len(lines) == 4
        p99_line = next(line for line in lines if 'quantile="p99"' in line)
        assert 'op="get"' in p99_line
        assert 0.0 < float(p99_line.split()[-1]) < 0.1

    def test_republishing_rebinds_the_callback(self):
        registry = MetricsRegistry()
        first = WindowedHistogram()
        publish_window(registry, "w_seconds", "w", first, op="get")
        second = WindowedHistogram()
        second.observe(1.0)
        publish_window(registry, "w_seconds", "w", second, op="get")
        text = to_prometheus_text(registry)
        p999 = next(line for line in text.splitlines()
                    if 'quantile="p999"' in line)
        assert float(p999.split()[-1]) > 0.0

    def test_empty_window_omits_quantile_samples(self):
        # An idle window must disappear from the exposition rather than
        # report a misleading hard zero; samples reappear with traffic.
        clock = FakeClock()
        registry = MetricsRegistry()
        window = WindowedHistogram(window_seconds=60.0, clock=clock)
        publish_window(registry, "idle_window_seconds", "w", window,
                       op="put")
        assert "idle_window_seconds{" not in to_prometheus_text(registry)
        window.observe(0.002)
        assert "idle_window_seconds{" in to_prometheus_text(registry)
        clock.now = 600.0  # every slice expired: samples vanish again
        assert "idle_window_seconds{" not in to_prometheus_text(registry)


class TestExemplars:
    def test_capture_requires_trace(self):
        window = WindowedHistogram()
        window.observe(0.5)
        window.observe(0.5, trace_id="t-1")
        exemplars = window.exemplars()
        assert len(exemplars) == 1
        assert exemplars[0].trace_id == "t-1"
        assert exemplars[0].value == pytest.approx(0.5)

    def test_threshold_filters_fast_ops(self):
        window = WindowedHistogram(exemplar_threshold=0.1)
        window.observe(0.001, trace_id="fast")
        window.observe(0.5, trace_id="slow")
        traces = [e.trace_id for e in window.exemplars()]
        assert traces == ["slow"]

    def test_capacity_keeps_most_recent(self):
        window = WindowedHistogram(exemplar_capacity=4)
        for step in range(10):
            window.observe(0.5, trace_id=f"t-{step}")
        traces = [e.trace_id for e in window.exemplars()]
        assert traces == ["t-6", "t-7", "t-8", "t-9"]

    def test_exemplar_timestamps_use_window_clock(self):
        clock = FakeClock()
        clock.now = 42.0
        window = WindowedHistogram(clock=clock)
        window.observe(0.5, trace_id="t")
        assert window.exemplars()[0].ts == pytest.approx(42.0)
