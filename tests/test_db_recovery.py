"""Reopen/recovery: manifest replay, WAL replay, crash truncation."""

import pytest

from repro.errors import NotFoundError
from repro.lsm import LsmDB
from repro.lsm.env import MemEnv


@pytest.fixture
def env():
    return MemEnv()


def reopened(env, options):
    return LsmDB("rdb", options, env=env)


class TestRecovery:
    def test_unflushed_writes_survive_reopen(self, env, options):
        db = LsmDB("rdb", options, env=env)
        db.put(b"mem-only", b"value")
        db.close()
        db2 = reopened(env, options)
        assert db2.get(b"mem-only") == b"value"

    def test_flushed_data_survives(self, env, options):
        db = LsmDB("rdb", options, env=env)
        for i in range(600):
            db.put(f"k{i:08d}".encode(), f"v{i}".encode())
        db.compact_range()
        levels_before = db.level_file_counts()
        db.close()
        db2 = reopened(env, options)
        assert db2.level_file_counts() == levels_before
        for i in range(0, 600, 17):
            assert db2.get(f"k{i:08d}".encode()) == f"v{i}".encode()

    def test_tombstones_survive(self, env, options):
        db = LsmDB("rdb", options, env=env)
        db.put(b"gone", b"v")
        db.flush()
        db.delete(b"gone")
        db.close()
        db2 = reopened(env, options)
        with pytest.raises(NotFoundError):
            db2.get(b"gone")

    def test_sequence_numbers_continue(self, env, options):
        db = LsmDB("rdb", options, env=env)
        db.put(b"a", b"1")
        seq_before = db.versions.last_sequence
        db.close()
        db2 = reopened(env, options)
        assert db2.versions.last_sequence >= seq_before
        db2.put(b"a", b"2")  # must shadow the recovered version
        assert db2.get(b"a") == b"2"

    def test_truncated_wal_tail_loses_only_tail(self, env, options):
        db = LsmDB("rdb", options, env=env)
        db.put(b"first", b"1")
        db.put(b"second", b"2")
        db.close()
        # Corrupt the live WAL's tail (simulating a crash mid-append).
        names = [n for n in env.list_dir("rdb") if n.endswith(".log")]
        assert names
        path = f"rdb/{names[-1]}"
        data = env.read_file(path)
        handle = env.new_writable_file(path)
        handle.append(data[:-4])
        handle.close()
        db2 = reopened(env, options)
        assert db2.get(b"first") == b"1"
        with pytest.raises(NotFoundError):
            db2.get(b"second")

    def test_multiple_reopen_cycles(self, env, options):
        for generation in range(4):
            db = LsmDB("rdb", options, env=env)
            for i in range(150):
                db.put(f"g{generation}-{i:05d}".encode(),
                       str(generation).encode())
            db.close()
        db = LsmDB("rdb", options, env=env)
        for generation in range(4):
            assert db.get(f"g{generation}-00007".encode()) == str(
                generation).encode()

    def test_old_manifests_retired(self, env, options):
        db = LsmDB("rdb", options, env=env)
        for i in range(2000):
            db.put(f"k{i:08d}".encode(), b"x" * 30)
        db.compact_range()
        manifests = [n for n in env.list_dir("rdb")
                     if n.startswith("MANIFEST")]
        assert len(manifests) == 1

    def test_obsolete_tables_deleted(self, env, options):
        db = LsmDB("rdb", options, env=env)
        for i in range(2500):
            db.put(f"k{i:08d}".encode(), b"x" * 30)
        db.compact_range()
        live = {meta.number
                for level_files in db.versions.current.files
                for meta in level_files}
        on_disk = set()
        from repro.lsm.filenames import parse_table_number
        for name in env.list_dir("rdb"):
            number = parse_table_number(name)
            if number is not None:
                on_disk.add(number)
        assert on_disk == live
