"""``python -m repro.bench`` / ``fcae-bench`` — regenerate the paper's
evaluation.

Usage::

    fcae-bench table5            # one experiment
    fcae-bench fig15a            # one sub-figure
    fcae-bench all               # everything, prints every table
    fcae-bench all --markdown results.md
    fcae-bench fig14 --scale 0.1 # smaller workloads for a quick pass
    fcae-bench fig12 --metrics-out m.prom --trace-out t.jsonl
    fcae-bench fig12 --chrome-trace t.trace.json --profile p.json
    fcae-bench fig12 --bench-json BENCH_fig12.json

``--metrics-out`` installs a process-wide metrics registry for the run
and writes a Prometheus text-format dump; ``--trace-out`` streams every
flush/compaction span (with modeled per-phase durations) as JSONL.

``--chrome-trace`` records the event-level pipeline timeline (one track
per module, per-input FIFO occupancy counters, host marshal/DMA phases)
and writes Chrome trace-event JSON — open it in Perfetto or
``chrome://tracing``.  ``--profile`` runs the critical-path attribution
pass and writes a machine-readable bottleneck report (it also prints a
summary).  ``--bench-json`` writes the regenerated tables as JSON for
``tools/check_regression.py``.

In ``all`` mode each experiment gets a **fresh** metrics registry and
timeline, so one experiment's families cannot bleed into the next; the
``--metrics-out`` / ``--chrome-trace`` / ``--profile`` paths are then
suffixed per experiment (``m.prom`` → ``m.fig12.prom``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.bench import (
    ablation,
    backends,
    driver,
    fsync,
    hotpath,
    near_storage,
    slo,
    tiered,
    write_pause,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table5,
    table6,
    table7,
    table8,
)
from repro.bench.common import ExperimentResult
from repro.obs.profile import profile_from_registry, render_profile

EXPERIMENTS = {
    "table5": table5.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "table6": table6.run,
    "fig11": fig11.run,
    "table7": table7.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "table8": table8.run,
    "fig15": fig15.run,
    "fig15a": fig15.run_a,
    "fig15b": fig15.run_b,
    "fig15c": fig15.run_c,
    "fig15d": fig15.run_d,
    "fig16": fig16.run,
    "ablation": ablation.run,
    "backends": backends.run,
    "driver": driver.run,
    "fsync": fsync.run,
    "hotpath": hotpath.run,
    "near_storage": near_storage.run,
    "slo": slo.run,
    "tiered": tiered.run,
    "write_pause": write_pause.run,
}

#: `all` skips the fig15 summary (its four parts run individually).
ALL_ORDER = ("table5", "fig9", "fig10", "table6", "fig11", "table7",
             "fig12", "fig13", "fig14", "table8", "fig15a", "fig15b",
             "fig15c", "fig15d", "fig16", "ablation", "near_storage", "tiered",
             "write_pause", "slo", "driver", "fsync", "hotpath",
             "backends")

#: BENCH_*.json schema version understood by tools/check_regression.py.
BENCH_SCHEMA = 1


def wall_percentiles(samples: list[float]) -> tuple[float, float]:
    """(p50, p95) of wall-time samples (nearest-rank p95)."""
    ordered = sorted(samples)
    mid = len(ordered) // 2
    p50 = (ordered[mid] if len(ordered) % 2
           else (ordered[mid - 1] + ordered[mid]) / 2)
    p95 = ordered[min(len(ordered) - 1,
                      int(round(0.95 * (len(ordered) - 1))))]
    return p50, p95


def suffixed_path(path: str, suffix: str | None) -> str:
    """``m.prom`` + ``fig12`` → ``m.fig12.prom`` (no-op without suffix)."""
    if not suffix:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}.{suffix}{ext}" if ext else f"{path}.{suffix}"


def _write_sinks(args, suffix: str | None, registry, timeline) -> int:
    """Flush one experiment's metrics/trace/profile outputs; returns a
    non-zero status on I/O failure."""
    status = 0
    if registry is not None and args.metrics_out:
        path = suffixed_path(args.metrics_out, suffix)
        try:
            obs.write_prometheus(path, registry,
                                 overwrite=args.overwrite)
            print(f"metrics written to {path}")
        except FileExistsError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 2
        except OSError as error:
            print(f"error: cannot write {path}: {error}", file=sys.stderr)
            status = 2
    if timeline is not None and args.chrome_trace:
        path = suffixed_path(args.chrome_trace, suffix)
        try:
            timeline.write_chrome_trace(path)
            print(f"chrome trace written to {path} "
                  f"({len(timeline)} events)")
        except OSError as error:
            print(f"error: cannot write {path}: {error}", file=sys.stderr)
            status = 2
    if registry is not None and args.profile:
        path = suffixed_path(args.profile, suffix)
        profile = profile_from_registry(registry)
        try:
            with open(path, "w") as handle:
                json.dump(profile, handle, indent=2)
                handle.write("\n")
            print(render_profile(profile))
            print(f"profile written to {path}")
        except OSError as error:
            print(f"error: cannot write {path}: {error}", file=sys.stderr)
            status = 2
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fcae-bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed runs per experiment; wall time is "
                             "reported as p50/p95 over them (default 1)")
    parser.add_argument("--warmup", type=int, default=0,
                        help="untimed runs before the timed ones "
                             "(default 0)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as markdown")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a Prometheus text-format metrics dump")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="stream span traces as JSONL (appends)")
    parser.add_argument("--events-out", metavar="PATH",
                        help="stream flight-recorder events (flushes, "
                             "compactions, stalls, faults) as JSONL "
                             "(appends)")
    parser.add_argument("--overwrite", action="store_true",
                        help="replace an existing --metrics-out file "
                             "instead of failing")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="record the pipeline event timeline and write "
                             "Chrome trace-event JSON (Perfetto-loadable)")
    parser.add_argument("--profile", metavar="PATH",
                        help="write the critical-path bottleneck report "
                             "as JSON (implies event recording)")
    parser.add_argument("--bench-json", metavar="PATH",
                        help="write regenerated tables as machine-readable "
                             "JSON for tools/check_regression.py")
    parser.add_argument("--top", action="store_true",
                        help="after each experiment, render one headless "
                             "dashboard frame from its metrics registry")
    args = parser.parse_args(argv)
    if args.repeat < 1 or args.warmup < 0:
        parser.error("--repeat must be >= 1 and --warmup >= 0")

    multi = args.experiment == "all"
    experiment_names = ALL_ORDER if multi else (args.experiment,)
    want_registry = bool(args.metrics_out or args.trace_out
                         or args.chrome_trace or args.profile
                         or args.top)
    want_timeline = bool(args.chrome_trace or args.profile)

    tracer = None
    if args.trace_out:
        try:
            tracer = obs.Tracer(sink_path=args.trace_out, keep_spans=False)
        except OSError as error:
            print(f"error: cannot open {args.trace_out}: {error}",
                  file=sys.stderr)
            return 2
    events = None
    if args.events_out:
        try:
            events = obs.EventJournal(sink_path=args.events_out,
                                      keep_events=False)
        except OSError as error:
            print(f"error: cannot open {args.events_out}: {error}",
                  file=sys.stderr)
            return 2

    bench_doc = None
    if args.bench_json:
        bench_doc = {"schema": BENCH_SCHEMA, "tool": "fcae-bench",
                     "scale": args.scale, "experiments": {}}

    results: list[ExperimentResult] = []
    status = 0
    try:
        for name in experiment_names:
            samples: list[float] = []
            result = registry = timeline = None
            for run_no in range(args.warmup + args.repeat):
                # A fresh registry/timeline per run: in `all` mode nothing
                # bleeds between experiments, across repeats each timed
                # sample starts clean; sinks flush the final run only.
                registry = timeline = None
                if want_registry:
                    registry = obs.MetricsRegistry()
                    obs.names.register_all(registry)
                if want_timeline:
                    timeline = obs.TimelineRecorder()
                token = None
                if (registry is not None or tracer is not None
                        or events is not None):
                    token = obs.install(registry=registry, tracer=tracer,
                                        timeline=timeline, events=events)
                started = time.perf_counter()
                try:
                    result = EXPERIMENTS[name](scale=args.scale)
                finally:
                    if token is not None:
                        obs.uninstall(token)
                if run_no >= args.warmup:
                    samples.append(time.perf_counter() - started)
            p50, p95 = wall_percentiles(samples)
            results.append(result)
            print(result.format())
            if args.top and registry is not None:
                from repro.obs.dashboard import render_dashboard
                print(render_dashboard(registry))
            if len(samples) > 1:
                print(f"[{name} regenerated: wall p50 {p50:.2f}s / "
                      f"p95 {p95:.2f}s over {len(samples)} runs"
                      f" ({args.warmup} warmup)]")
            else:
                print(f"[{name} regenerated in {p50:.1f}s]")
            print()
            if bench_doc is not None:
                bench_doc["experiments"][name] = {
                    "title": result.title,
                    "columns": [str(c) for c in result.columns],
                    "rows": result.rows,
                    "wall_seconds": {"p50": round(p50, 6),
                                     "p95": round(p95, 6),
                                     "repeat": args.repeat,
                                     "warmup": args.warmup},
                }
            status |= _write_sinks(args, name if multi else None,
                                   registry, timeline)
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace_out}")
        if events is not None:
            events.close()
            print(f"events written to {args.events_out}")
    if bench_doc is not None:
        try:
            with open(args.bench_json, "w") as handle:
                json.dump(bench_doc, handle, indent=2)
                handle.write("\n")
            print(f"bench results written to {args.bench_json}")
        except OSError as error:
            print(f"error: cannot write {args.bench_json}: {error}",
                  file=sys.stderr)
            status = 2
    if status:
        return status
    if args.markdown:
        with open(args.markdown, "w") as handle:
            for result in results:
                handle.write(result.to_markdown())
                handle.write("\n\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
