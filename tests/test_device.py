"""FcaeDevice: offload round-trip, timing breakdown, MetaOut."""

import pytest

from repro.fpga.config import CONFIG_2_INPUT
from repro.host.device import FcaeDevice
from repro.host.pcie import PcieModel
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())


@pytest.fixture
def device(plain_options):
    return FcaeDevice(CONFIG_2_INPUT, plain_options,
                      dram_size=1 << 26)


def reader_for(entries, plain_options):
    return TableReader(build_table_image(entries, plain_options, ICMP),
                       ICMP, plain_options)


class TestCompact:
    def test_outputs_parse_and_cover_inputs(self, device, plain_options):
        newer = make_entries(300, seed=1, seq_base=10_000)
        older = make_entries(400, seed=2, seq_base=1)
        result = device.compact([
            [reader_for(newer, plain_options)],
            [reader_for(older, plain_options)],
        ])
        total = sum(o.stats.num_entries for o in result.outputs)
        # All user keys distinct across seeds is unlikely; just check
        # bounds: survivors <= inputs and >= max single input.
        assert total <= 700
        assert total >= 400
        for output in result.outputs:
            assert list(TableReader(output.data, ICMP, plain_options))

    def test_meta_out_matches_outputs(self, device, plain_options):
        entries = make_entries(200, seed=5)
        result = device.compact([[reader_for(entries, plain_options)]])
        assert len(result.meta_out) == len(result.outputs)
        for meta, output in zip(result.meta_out, result.outputs):
            assert meta.data_size == len(output.data)
            assert meta.smallest_key == output.smallest
            assert meta.largest_key == output.largest

    def test_timing_breakdown_positive(self, device, plain_options):
        entries = make_entries(200, seed=6)
        result = device.compact([[reader_for(entries, plain_options)]])
        assert result.host_marshal_seconds > 0
        assert result.pcie_in_seconds > 0
        assert result.kernel_seconds > 0
        assert result.pcie_out_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.host_marshal_seconds + result.pcie_in_seconds
            + result.kernel_seconds + result.pcie_out_seconds)

    def test_pcie_fraction_small_for_compute_bound_kernel(
            self, device, plain_options):
        entries = make_entries(600, seed=7, value_size=100)
        result = device.compact([[reader_for(entries, plain_options)]])
        assert 0 < result.pcie_fraction < 0.3


class TestPcieModel:
    def test_transfer_time_linear(self):
        pcie = PcieModel(bandwidth=10e9, setup_seconds=10e-6)
        small = pcie.transfer_seconds(1 << 20)
        large = pcie.transfer_seconds(1 << 30)
        assert large > small
        assert large == pytest.approx(10e-6 + (1 << 30) / 10e9)

    def test_zero_bytes_free(self):
        assert PcieModel().transfer_seconds(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PcieModel().transfer_seconds(-1)
