"""Model-based test: LsmDB must behave exactly like a dict under any
interleaving of puts, deletes, gets, scans, flushes, compactions and
reopens — with either the CPU or the FPGA compaction executor."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import NotFoundError
from repro.fpga.config import CONFIG_9_INPUT
from repro.host import CompactionScheduler, FcaeDevice
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv

KEYS = st.binary(min_size=1, max_size=24)
VALUES = st.binary(max_size=120)


def _options():
    return Options(write_buffer_size=4 * 1024, sstable_size=4 * 1024,
                   max_level0_size=16 * 1024, block_size=512,
                   compression="snappy", bloom_bits_per_key=8,
                   block_cache_capacity=16 * 1024)


class DbMachine(RuleBasedStateMachine):
    use_fpga = False

    @initialize()
    def open_db(self):
        self.options = _options()
        self.env = MemEnv()
        self.model: dict[bytes, bytes] = {}
        self._open()

    def _executor(self):
        if not self.use_fpga:
            return None
        device = FcaeDevice(CONFIG_9_INPUT, self.options)
        return CompactionScheduler(device, self.options)

    def _open(self):
        self.db = LsmDB("mbdb", self.options, env=self.env,
                        compaction_executor=self._executor())

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.db.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.db.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        if key in self.model:
            assert self.db.get(key) == self.model[key]
        else:
            with pytest.raises(NotFoundError):
                self.db.get(key)

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def compact(self):
        self.db.compact_range()

    @rule()
    def reopen(self):
        self.db.close()
        self._open()

    @invariant()
    def scan_matches_model(self):
        assert dict(self.db.scan()) == self.model

    def teardown(self):
        self.db.close()


class CpuDbMachine(DbMachine):
    use_fpga = False


class FpgaDbMachine(DbMachine):
    use_fpga = True


TestCpuDbModel = pytest.mark.filterwarnings("ignore")(
    settings(max_examples=25, stateful_step_count=30,
             deadline=None)(CpuDbMachine).TestCase)

TestFpgaDbModel = pytest.mark.filterwarnings("ignore")(
    settings(max_examples=10, stateful_step_count=25,
             deadline=None)(FpgaDbMachine).TestCase)
