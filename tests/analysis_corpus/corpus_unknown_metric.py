"""CT001: a metric name missing from repro.obs.names.FAMILIES."""


def publish(registry):
    registry.counter("lsm_writes_total").inc()
    registry.counter("lsm_wirtes_total").inc()  # VIOLATION CT001
