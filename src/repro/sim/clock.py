"""Virtual clock and event queue for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        if timestamp < self._now - 1e-12:
            raise SimulationError(
                f"clock cannot move backwards: {timestamp} < {self._now}")
        self._now = max(self._now, timestamp)

    def advance_by(self, delta: float) -> None:
        if delta < 0:
            raise SimulationError(f"negative time delta {delta}")
        self._now += delta


class EventQueue:
    """Time-ordered callback queue; ties break in schedule order."""

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, timestamp: float,
                 callback: Callable[[], Any]) -> None:
        if timestamp < self._clock.now - 1e-12:
            raise SimulationError("cannot schedule an event in the past")
        heapq.heappush(self._heap, (timestamp, next(self._counter), callback))

    def schedule_after(self, delay: float,
                       callback: Callable[[], Any]) -> None:
        self.schedule(self._clock.now + delay, callback)

    def pop_next(self) -> Optional[Callable[[], Any]]:
        """Advance the clock to the next event and return its callback."""
        if not self._heap:
            return None
        timestamp, _, callback = heapq.heappop(self._heap)
        self._clock.advance_to(timestamp)
        return callback

    def run_until_empty(self, max_events: int = 50_000_000) -> int:
        """Drain the queue; returns the number of events executed."""
        executed = 0
        while True:
            callback = self.pop_next()
            if callback is None:
                return executed
            callback()
            executed += 1
            if executed > max_events:
                raise SimulationError("event budget exhausted (runaway sim?)")
