"""Exception hierarchy for the FCAE reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  The subtypes mirror the major
subsystems: storage-format corruption, database state misuse, FPGA device
constraints, and simulation configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class CorruptionError(ReproError):
    """A stored byte stream failed validation (bad CRC, truncated block,
    malformed varint, out-of-order keys, ...)."""


class NotFoundError(ReproError):
    """A requested key or file does not exist."""


class InvalidArgumentError(ReproError):
    """A caller-supplied argument is outside the accepted domain."""


class DBStateError(ReproError):
    """The database is in a state that forbids the requested operation
    (e.g. writing to a closed database)."""


class FpgaResourceError(ReproError):
    """An FPGA configuration does not fit on the device (would exceed
    100% of a LUT/FF/BRAM budget)."""


class FpgaProtocolError(ReproError):
    """The host/device memory interface contract was violated (bad MetaIn
    layout, misaligned data block memory, output overrun, ...)."""


class FpgaTimeoutError(ReproError):
    """The device did not complete an offloaded task within its deadline
    (hung kernel, lost completion interrupt)."""


class FpgaDmaError(FpgaProtocolError):
    """A PCIe DMA transfer failed or delivered corrupt data."""


class SimulationError(ReproError):
    """A discrete-event simulation reached an inconsistent state."""
