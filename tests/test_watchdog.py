"""Runtime lock-order watchdog tests (``repro.analysis.watchdog``).

The ABBA fixture proves cycle detection works from acquisition *order*
alone — the test never actually deadlocks.  The clean-run tests prove
the watchdog reports no cycles across the store's real concurrency
(8-writer group commit) and that the two regression fixes hold: the
metrics registry takes its lock on reads, and compaction fsyncs output
tables without holding the DB mutex.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import watchdog as lockwatch
from repro.analysis.watchdog import (
    LockWatchdog,
    WatchdogLock,
    WatchdogRLock,
)
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv
from repro.obs.events import EventJournal
from repro.obs.registry import MetricsRegistry


def _locks(wd, *names):
    return [WatchdogLock(wd, name, threading.Lock()) for name in names]


@pytest.fixture
def enabled_watchdog():
    """Enable the module-level watchdog for one test, restoring the
    previous enablement afterwards."""
    was_enabled = lockwatch.enabled()
    wd = lockwatch.enable()
    lockwatch.reset()
    yield wd
    lockwatch.reset()
    if not was_enabled:
        lockwatch.disable()


# ---------------------------------------------------------------------------
# Cycle detection
# ---------------------------------------------------------------------------

def test_abba_inversion_detected_without_deadlock():
    wd = LockWatchdog()
    a, b = _locks(wd, "A", "B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    cycles = wd.cycles()
    assert len(cycles) == 1
    assert sorted(cycles[0]["locks"]) == ["A", "B"]
    assert cycles[0]["closing_edge"] == ["B", "A"]


def test_consistent_order_reports_no_cycles():
    wd = LockWatchdog()
    a, b = _locks(wd, "A", "B")
    for _ in range(10):
        with a:
            with b:
                pass
    assert wd.cycles() == []
    assert wd.edge_count() == 1


def test_three_lock_cycle_detected():
    wd = LockWatchdog()
    a, b, c = _locks(wd, "A", "B", "C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    cycles = wd.cycles()
    assert len(cycles) == 1
    assert sorted(cycles[0]["locks"]) == ["A", "B", "C"]


def test_same_cycle_reported_once():
    wd = LockWatchdog()
    a, b = _locks(wd, "A", "B")
    for _ in range(5):
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    assert len(wd.cycles()) == 1


def test_abba_across_two_threads():
    wd = LockWatchdog()
    a, b = _locks(wd, "A", "B")
    with a:
        with b:
            pass

    def inverted():
        with b:
            with a:
                pass

    thread = threading.Thread(target=inverted)
    thread.start()
    thread.join()
    assert len(wd.cycles()) == 1


# ---------------------------------------------------------------------------
# Wrapper mechanics: reentrancy, Condition protocol, long holds
# ---------------------------------------------------------------------------

def test_rlock_reentrancy_no_self_edge():
    wd = LockWatchdog()
    rl = WatchdogRLock(wd, "m", threading.RLock())
    with rl:
        with rl:
            assert wd.held_names() == ["m"]
    assert wd.held_names() == []
    assert wd.edge_count() == 0
    assert wd.acquires() == {"m": 1}


def test_condition_wait_fully_releases_and_restores():
    wd = LockWatchdog()
    rl = WatchdogRLock(wd, "m", threading.RLock())
    cond = threading.Condition(rl)
    waiting = threading.Event()
    seen: list = []

    def waiter():
        with cond:
            with cond:  # reentrant: wait() must release *both* holds
                seen.append(list(wd.held_names()))
                waiting.set()
                cond.wait(timeout=5)
                seen.append(list(wd.held_names()))
        seen.append(list(wd.held_names()))

    thread = threading.Thread(target=waiter)
    thread.start()
    assert waiting.wait(timeout=5)
    # Acquiring here proves the waiter physically released the lock.
    with cond:
        cond.notify()
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert seen == [["m"], ["m"], []]


def test_long_hold_reported():
    fake_now = [0.0]
    wd = LockWatchdog(long_hold_seconds=0.05, clock=lambda: fake_now[0])
    lock = WatchdogLock(wd, "slow", threading.Lock())
    with lock:
        fake_now[0] = 1.0
    holds = wd.long_holds()
    assert len(holds) == 1
    assert holds[0]["lock"] == "slow"
    assert holds[0]["seconds"] == pytest.approx(1.0)
    # quick holds stay quiet
    with lock:
        pass
    assert len(wd.long_holds()) == 1


def test_cycle_report_reaches_journal_after_stack_drains():
    wd = LockWatchdog()
    a, b = _locks(wd, "A", "B")
    journal = EventJournal(keep_events=True)
    wd.attach_journal(journal)
    with a:
        with b:
            pass
    with b:
        with a:
            # Cycle already detected, but emission is deferred until
            # this thread holds no instrumented locks.
            types = [e["type"] for e in journal.events]
            assert "lock_cycle" not in types
    events = [e for e in journal.events if e["type"] == "lock_cycle"]
    assert len(events) == 1
    assert events[0]["closing_edge"] == "B->A"
    assert set(events[0]) >= {"locks", "closing_edge", "thread"}


def test_publish_exports_gauges():
    wd = LockWatchdog()
    a, b = _locks(wd, "A", "B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    registry = MetricsRegistry()
    wd.publish(registry)
    assert registry.get_value("lockwatch_acquires") == 4.0
    assert registry.get_value("lockwatch_edges") == 2.0
    assert registry.get_value("lockwatch_cycles") == 1.0
    assert registry.get_value("lockwatch_long_holds") == 0.0


def test_factories_return_plain_primitives_when_disabled():
    if lockwatch.enabled():
        pytest.skip("watchdog force-enabled via environment")
    assert not isinstance(lockwatch.make_lock("x"), WatchdogLock)
    assert not isinstance(lockwatch.make_rlock("x"), WatchdogRLock)


# ---------------------------------------------------------------------------
# Clean runs over the real store
# ---------------------------------------------------------------------------

def test_group_commit_clean_run_reports_no_cycles(enabled_watchdog):
    db = LsmDB("db", options=Options(
        wal_sync="group", compression="none", bloom_bits_per_key=0,
        write_buffer_size=16 * 1024))
    errors: list = []

    def writer(wid: int):
        try:
            for i in range(40):
                db.put(f"w{wid:02d}-{i:04d}".encode(),
                       f"v{wid}-{i}".encode() * 4)
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(wid,))
               for wid in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    db.close()
    assert errors == []
    assert enabled_watchdog.cycles() == []
    assert enabled_watchdog.acquires().get("lsm.mutex", 0) > 0


def test_registry_reads_take_the_lock(enabled_watchdog):
    registry = MetricsRegistry()
    registry.gauge("lockwatch_cycles").set(3.0)
    before = enabled_watchdog.acquires().get("obs.registry", 0)
    assert before > 0
    assert registry.get_value("lockwatch_cycles") == 3.0
    assert registry.sum_family("lockwatch_cycles") == 3.0
    after = enabled_watchdog.acquires().get("obs.registry", 0)
    assert after >= before + 2


class _SyncSpyFile:
    """WritableFile wrapper recording held instrumented locks at sync."""

    def __init__(self, inner, name: str, record: list):
        self._inner = inner
        self._name = name
        self._record = record

    def append(self, data: bytes) -> None:
        self._inner.append(data)

    def sync(self) -> None:
        self._record.append(
            (self._name, list(lockwatch.held_by_current_thread())))
        self._inner.sync()

    def close(self) -> None:
        self._inner.close()

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


class _SyncSpyEnv(MemEnv):
    def __init__(self, record: list):
        super().__init__()
        self._record = record

    def new_writable_file(self, name: str):
        return _SyncSpyFile(super().new_writable_file(name), name,
                            self._record)


def test_compaction_syncs_tables_without_db_mutex(enabled_watchdog):
    record: list = []
    db = LsmDB("db", env=_SyncSpyEnv(record), auto_compact=False,
               options=Options(
                   compression="none", bloom_bits_per_key=0,
                   block_size=512, sstable_size=4 * 1024,
                   write_buffer_size=8 * 1024))
    for batch in range(6):
        for i in range(60):
            db.put(f"k{batch:02d}-{i:04d}".encode(), b"v" * 64)
        db.flush()
    record.clear()
    assert db.compact_once()
    table_syncs = [(name, held) for name, held in record
                   if name.endswith(".ldb")]
    assert table_syncs, "compaction wrote no output tables"
    for name, held in table_syncs:
        assert "lsm.mutex" not in held, (
            f"{name} fsynced while holding the DB mutex")
    db.close()
    assert enabled_watchdog.cycles() == []
