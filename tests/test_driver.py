"""Background compaction driver: concurrency, throttling, fault recovery.

Covers the asynchronous write path end to end: flush/compaction workers
installing under the DB mutex, real L0 throttling, concurrent readers
and scanners against a writing database, and the scheduler's software
fallback under injected device faults (no lost or duplicated keys, no
exception ever reaching a writer).
"""

import threading
import time

import pytest

from repro.errors import DBStateError, NotFoundError
from repro.fpga.config import CONFIG_9_INPUT
from repro.host.device import FcaeDevice
from repro.host.driver import CompactionDriver
from repro.host.faults import FaultInjector
from repro.host.scheduler import CompactionScheduler
from repro.lsm.db import LsmDB
from repro.lsm.env import MemEnv
from repro.lsm.options import L0_STOP_TRIGGER, Options
from repro.obs.registry import MetricsRegistry


def small_options(**overrides):
    base = dict(write_buffer_size=8 * 1024, sstable_size=8 * 1024,
                max_level0_size=32 * 1024, compression="none",
                value_length=64, bloom_bits_per_key=0)
    base.update(overrides)
    return Options(**base)


def make_bg_db(name, num_units=1, **kwargs):
    return LsmDB(name, small_options(), env=MemEnv(),
                 metrics=MetricsRegistry(),
                 background_compaction=True, num_units=num_units, **kwargs)


def family_total(registry, name, **match):
    """Sum a family's children whose labels contain ``match``."""
    total = 0.0
    for family in registry.collect():
        if family.name != name:
            continue
        for child in family.children.values():
            labels = dict(child.labels)
            if all(labels.get(k) == v for k, v in match.items()):
                total += child.value
    return total


def key(i):
    return f"key{i:08d}".encode()


def value(i):
    return f"val{i:04d}".encode() * 8


class TestBackgroundBasics:
    @pytest.mark.parametrize("num_units", [1, 2],
                             ids=["units1", "units2"])
    def test_fillrandom_complete_and_sorted(self, num_units):
        with make_bg_db("bg-basic", num_units) as db:
            n = 1200
            for i in range(n):
                db.put(key(i * 37 % n), value(i * 37 % n))
            db.compact_range()
            scanned = list(db.scan())
            assert len(scanned) == n
            assert [k for k, _ in scanned] == sorted(k for k, _ in scanned)
            for i in range(0, n, 97):
                assert db.get(key(i)) == value(i)

    def test_driver_metrics_and_stalls(self):
        with make_bg_db("bg-metrics") as db:
            for i in range(1500):
                db.put(key(i), value(i))
            db.compact_range()
            assert family_total(db.metrics, "driver_tasks_total",
                                kind="flush") > 0
            assert family_total(db.metrics, "driver_tasks_total",
                                kind="compaction") > 0
            assert db.stats.flushes > 0
            assert db.stats.compactions > 0
            # Stall episodes (imm backlog / L0 stop) land in the
            # histogram, one observation per episode.
            assert db._m.stall_seconds.count == db.stall_events

    def test_flush_blocks_until_installed(self):
        with make_bg_db("bg-flush") as db:
            for i in range(100):
                db.put(key(i), value(i))
            db.flush()
            assert db._imm is None
            assert db.versions.current.num_files(0) >= 1

    def test_close_drains_pending_work(self):
        db = make_bg_db("bg-close")
        for i in range(800):
            db.put(key(i), value(i))
        db.close()
        assert db._imm is None
        with pytest.raises(DBStateError):
            db.put(b"late", b"x")

    def test_num_units_validation(self):
        with pytest.raises(ValueError):
            CompactionDriver(object(), num_units=0)


class TestConcurrency:
    @pytest.mark.parametrize("num_units", [1, 2],
                             ids=["units1", "units2"])
    def test_concurrent_put_get_scan(self, num_units):
        db = make_bg_db("bg-conc", num_units)
        n = 1500
        errors = []
        done = threading.Event()

        def writer():
            try:
                for i in range(n):
                    db.put(key(i), value(i))
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    for i in range(0, n, 61):
                        try:
                            assert db.get(key(i)) == value(i)
                        except NotFoundError:
                            pass  # not written yet
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def scanner():
            try:
                while not done.is_set():
                    seen = [k for k, _ in db.scan()]
                    assert seen == sorted(seen)
                    assert len(seen) == len(set(seen))
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=scanner)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []
        db.compact_range()
        assert len(list(db.scan())) == n
        for i in range(0, n, 41):
            assert db.get(key(i)) == value(i)
        db.close()

    def test_scan_during_write_is_snapshot_consistent(self):
        db = make_bg_db("bg-scan", num_units=2)
        for i in range(400):
            db.put(key(i), value(i))
        stop = threading.Event()
        errors = []

        def writer():
            i = 400
            while not stop.is_set():
                db.put(key(i % 2000), value(i % 2000))
                i += 1

        def scanner():
            try:
                for _ in range(20):
                    seen = list(db.scan(start=key(0), end=key(2000)))
                    keys = [k for k, _ in seen]
                    assert keys == sorted(keys)
                    assert len(keys) == len(set(keys))
                    # Everything loaded before the writer started must
                    # stay visible in every scan.
                    assert set(key(i) for i in range(400)) <= set(keys)
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                stop.set()

        w = threading.Thread(target=writer)
        s = threading.Thread(target=scanner)
        w.start()
        s.start()
        s.join(timeout=120)
        stop.set()
        w.join(timeout=120)
        assert errors == []
        db.close()


class TestThrottling:
    def test_l0_stop_trigger_blocks_then_recovers(self):
        """Drive L0 over the stop trigger with compactions disabled, then
        let the driver relieve it: the writer must have stalled (counted
        + histogram) and L0 must drop below the trigger."""
        db = make_bg_db("bg-stop")
        try:
            # Stall the units by keeping the task queue unpicked: pause
            # via monkeypatched pick returning None until released.
            real_pick = db._driver._pick_locked
            db._driver._pick_locked = lambda hint: None
            for i in range(4000):
                db.put(key(i), value(i))
                if db.versions.current.num_files(0) >= L0_STOP_TRIGGER:
                    break
            assert db.versions.current.num_files(0) >= L0_STOP_TRIGGER
            # Keep the units paused until the writer actually blocks:
            # releasing the pick first lets a queued token relieve L0
            # before the next memtable fills, and no stall is recorded.
            def release_after_stall():
                while db.stall_events == 0 and not db._closed:
                    time.sleep(0.001)
                db._driver._pick_locked = real_pick
                db._driver.kick(level=0)

            releaser = threading.Thread(target=release_after_stall)
            releaser.start()
            # The next memtable-filling writes hit the stop path, block,
            # and resume once an L0 compaction lands.
            for i in range(4000, 5200):
                db.put(key(i), value(i))
            releaser.join(timeout=30)
            assert db.stall_events > 0
            assert db._m.stall_seconds.count > 0
            db.compact_range()
            assert db.versions.current.num_files(0) < L0_STOP_TRIGGER
        finally:
            db.close()


class TestFaultInjection:
    def _load(self, db, n):
        for i in range(n):
            db.put(key(i), value(i))
        db.compact_range()

    def test_every_nth_fpga_task_fails_no_lost_keys(self):
        """Every 2nd offload raises; with retries disabled each fault
        becomes one software fallback.  The resulting key space must be
        identical to a software-only database and no exception may reach
        a writer."""
        n = 1800
        options = small_options()

        software = LsmDB("sw-ref", options, env=MemEnv(),
                         metrics=MetricsRegistry(),
                         background_compaction=True)
        self._load(software, n)
        reference = list(software.scan())
        software.close()

        injector = FaultInjector(protocol_error_every=2)
        registry = MetricsRegistry()
        device = FcaeDevice(CONFIG_9_INPUT, options, metrics=registry,
                            fault_injector=injector)
        scheduler = CompactionScheduler(device, options, metrics=registry,
                                        max_retries=0)
        faulty = LsmDB("fpga-faulty", options, env=MemEnv(),
                       metrics=registry, compaction_executor=scheduler,
                       background_compaction=True)
        self._load(faulty, n)
        result = list(faulty.scan())

        assert result == reference
        assert injector.injected_faults > 0
        assert scheduler.stats.fpga_fallbacks == injector.injected_faults
        assert scheduler.stats.fpga_faults == injector.injected_faults
        assert family_total(registry, "scheduler_fallbacks_total") \
            == injector.injected_faults
        faulty.close()

    def test_retries_absorb_periodic_faults(self):
        """With one retry, an every-3rd-task fault schedule never needs
        the software fallback (the retry is a new device task)."""
        options = small_options()
        injector = FaultInjector(timeout_every=3)
        registry = MetricsRegistry()
        device = FcaeDevice(CONFIG_9_INPUT, options, metrics=registry,
                            fault_injector=injector)
        scheduler = CompactionScheduler(device, options, metrics=registry,
                                        max_retries=1)
        db = LsmDB("fpga-retry", options, env=MemEnv(), metrics=registry,
                   compaction_executor=scheduler,
                   background_compaction=True)
        self._load(db, 1200)
        assert injector.injected_faults > 0
        assert scheduler.stats.fpga_retries == injector.injected_faults
        assert scheduler.stats.fpga_fallbacks == 0
        assert len(list(db.scan())) == 1200
        db.close()

    def test_unrecoverable_failure_surfaces_as_db_error(self):
        """A non-device error in the executor must park the DB in a
        failed state (writers raise DBStateError), not hang or vanish."""
        def broken_executor(spec, inputs, parents, drop):
            raise RuntimeError("boom")

        db = LsmDB("bg-broken", small_options(), env=MemEnv(),
                   metrics=MetricsRegistry(),
                   compaction_executor=broken_executor,
                   background_compaction=True)
        with pytest.raises(DBStateError):
            for i in range(20_000):
                db.put(key(i), value(i))
        db.close()


class TestStallComparison:
    def test_background_stall_time_below_synchronous(self):
        """The tentpole's headline: the same workload stalls the write
        path strictly less with background compaction than with inline
        maintenance."""
        n = 2500

        def run(**kwargs):
            db = LsmDB("stall-cmp", small_options(), env=MemEnv(),
                       metrics=MetricsRegistry(), **kwargs)
            for i in range(n):
                db.put(key(i), value(i))
            stalled = db._m.stall_seconds.sum
            count = db._m.stall_seconds.count
            db.compact_range()
            db.close()
            return stalled, count

        sync_stall, sync_count = run(auto_compact=True)
        bg_stall, _bg_count = run(background_compaction=True, num_units=2)
        assert sync_count > 0
        assert bg_stall < sync_stall
