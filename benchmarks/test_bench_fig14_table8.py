"""Fig 14 + Table VIII: large-scale sweep and PCIe share."""

from repro.bench import fig14, table8


def test_bench_fig14(benchmark, attach_rows):
    result = benchmark.pedantic(fig14.run, kwargs={"scale": 0.05},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    speedups = result.column("speedup")
    assert all(1.2 < s < 8 for s in speedups)
    base = result.column("LevelDB_MBps")
    assert base[-1] < base[0]  # throughput declines with scale


def test_bench_table8(benchmark, attach_rows):
    result = benchmark.pedantic(table8.run, kwargs={"scale": 0.05},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert all(0 < row[1] < 12 for row in result.rows)
