"""Internal-key encoding and the internal-key comparator."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.internal import (
    InternalKeyComparator,
    MARK_FIELDS_SIZE,
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
    extract_user_key,
    make_lookup_key,
    pack_sequence_and_type,
    parse_internal_key,
)
from repro.util.comparator import BytewiseComparator

ICMP = InternalKeyComparator(BytewiseComparator())


class TestEncoding:
    def test_roundtrip(self):
        key = encode_internal_key(b"user", 42, TYPE_VALUE)
        parsed = parse_internal_key(key)
        assert parsed.user_key == b"user"
        assert parsed.sequence == 42
        assert parsed.value_type == TYPE_VALUE
        assert not parsed.is_deletion

    def test_mark_fields_are_eight_bytes(self):
        key = encode_internal_key(b"k", 1, TYPE_VALUE)
        assert len(key) == 1 + MARK_FIELDS_SIZE

    def test_deletion_flag(self):
        key = encode_internal_key(b"k", 7, TYPE_DELETION)
        assert parse_internal_key(key).is_deletion

    def test_extract_user_key(self):
        key = encode_internal_key(b"hello", 1, TYPE_VALUE)
        assert extract_user_key(key) == b"hello"

    def test_max_sequence(self):
        key = encode_internal_key(b"k", MAX_SEQUENCE, TYPE_VALUE)
        assert parse_internal_key(key).sequence == MAX_SEQUENCE

    def test_sequence_out_of_range(self):
        with pytest.raises(CorruptionError):
            pack_sequence_and_type(MAX_SEQUENCE + 1, TYPE_VALUE)

    def test_bad_type_byte(self):
        with pytest.raises(CorruptionError):
            pack_sequence_and_type(1, 0x7)

    def test_short_key_rejected(self):
        with pytest.raises(CorruptionError):
            parse_internal_key(b"short")

    def test_unknown_type_rejected_on_parse(self):
        raw = b"user" + (99).to_bytes(8, "little")
        with pytest.raises(CorruptionError):
            parse_internal_key(raw)


class TestComparator:
    def test_user_key_order_dominates(self):
        a = encode_internal_key(b"aaa", 1, TYPE_VALUE)
        b = encode_internal_key(b"bbb", 100, TYPE_VALUE)
        assert ICMP.compare(a, b) < 0

    def test_newer_sequence_sorts_first(self):
        newer = encode_internal_key(b"k", 10, TYPE_VALUE)
        older = encode_internal_key(b"k", 5, TYPE_VALUE)
        assert ICMP.compare(newer, older) < 0

    def test_same_sequence_value_before_deletion(self):
        # TYPE_VALUE (1) > TYPE_DELETION (0); higher trailer sorts first.
        value = encode_internal_key(b"k", 5, TYPE_VALUE)
        deletion = encode_internal_key(b"k", 5, TYPE_DELETION)
        assert ICMP.compare(value, deletion) < 0

    def test_equal(self):
        a = encode_internal_key(b"k", 5, TYPE_VALUE)
        assert ICMP.compare(a, bytes(a)) == 0

    def test_lookup_key_sorts_at_or_before_entries(self):
        lookup = make_lookup_key(b"k", 10)
        entry_at_10 = encode_internal_key(b"k", 10, TYPE_VALUE)
        entry_at_9 = encode_internal_key(b"k", 9, TYPE_VALUE)
        entry_at_11 = encode_internal_key(b"k", 11, TYPE_VALUE)
        assert ICMP.compare(lookup, entry_at_10) <= 0
        assert ICMP.compare(lookup, entry_at_9) < 0
        assert ICMP.compare(entry_at_11, lookup) < 0

    def test_find_shortest_separator_respects_order(self):
        a = encode_internal_key(b"abcdef", 5, TYPE_VALUE)
        b = encode_internal_key(b"abzz", 9, TYPE_VALUE)
        sep = ICMP.find_shortest_separator(a, b)
        assert ICMP.compare(a, sep) <= 0
        assert ICMP.compare(sep, b) < 0

    def test_find_short_successor_not_smaller(self):
        key = encode_internal_key(b"abc", 3, TYPE_VALUE)
        successor = ICMP.find_short_successor(key)
        assert ICMP.compare(key, successor) <= 0
