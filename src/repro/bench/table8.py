"""Table VIII — PCIe transfer share of whole-system execution time.

Computed over the Fig 14 sweep: the DMA seconds each FCAE run
accumulates against its total wall time.  The paper reports 9% at 0.2 GB
falling below 1% at terabyte scale.
"""

from __future__ import annotations

from repro.bench import fig14
from repro.bench.common import ExperimentResult

PAPER = {0.2: 9, 0.5: 7, 1: 8, 2: 8, 4: 6, 8: 6, 16: 3, 32: 2, 64: 1,
         256: 0.9, 1024: 0.9}


def run(scale: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        name="Table VIII",
        title="PCIe transfer percentage of system execution time",
        columns=["data_GB", "pcie_pct", "paper_pct"],
    )
    sizes = (fig14.DATA_SIZES_GB if scale >= 1.0
             else fig14.DATA_SIZES_GB[:6])
    for gigabytes in sizes:
        _, fcae = fig14.run_point(gigabytes, scale)
        paper = PAPER.get(gigabytes, float("nan"))
        result.add_row(gigabytes, fcae.pcie_fraction * 100.0, paper)
    result.notes.append(
        "paper shape: single-digit percentages, negligible at scale")
    return result
