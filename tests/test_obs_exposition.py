"""Prometheus text exposition: golden output, parser round trip."""

import math
import os

import pytest

from repro.obs import names
from repro.obs.exposition import (
    format_value,
    parse_prometheus_text,
    to_prometheus_text,
    write_prometheus,
)
from repro.obs.registry import MetricsRegistry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "exposition.prom")


def build_demo_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("demo_requests_total", "Requests served.",
                route="fpga").inc(3)
    reg.counter("demo_requests_total", route="software").inc(1.5)
    reg.gauge("demo_queue_depth", "Current queue depth.").set(7)
    hist = reg.histogram("demo_latency_seconds", "Request latency.",
                         buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    reg.describe("demo_unused_total", "counter", "Registered, never sampled.")
    reg.gauge("demo_labeled", help='Tricky "label" values.',
              path='a\\b"c').set(2.5)
    return reg


class TestGolden:
    def test_matches_golden_file(self):
        with open(GOLDEN) as handle:
            expected = handle.read()
        assert to_prometheus_text(build_demo_registry()) == expected

    def test_write_prometheus(self, tmp_path):
        path = str(tmp_path / "m.prom")
        write_prometheus(path, build_demo_registry())
        with open(GOLDEN) as handle:
            assert open(path).read() == handle.read()


class TestFormatValue:
    def test_integers_render_bare(self):
        assert format_value(7.0) == "7"
        assert format_value(1.5) == "1.5"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"


class TestParser:
    def test_round_trip(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(build_demo_registry()))
        assert parsed["families"]["demo_requests_total"] == "counter"
        assert parsed["families"]["demo_latency_seconds"] == "histogram"
        assert parsed["families"]["demo_unused_total"] == "counter"
        samples = parsed["samples"]
        assert samples["demo_requests_total"][(("route", "fpga"),)] == 3.0
        assert samples["demo_queue_depth"][()] == 7.0
        buckets = samples["demo_latency_seconds_bucket"]
        assert buckets[(("le", "+Inf"),)] == 3.0
        assert samples["demo_latency_seconds_count"][()] == 3.0
        # Escaped label value survives the round trip.
        assert samples["demo_labeled"][(("path", 'a\\b"c'),)] == 2.5

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE broken\n")

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_duplicate_registry_rendered_once(self):
        reg = build_demo_registry()
        assert to_prometheus_text(reg, reg) == to_prometheus_text(reg)


class TestExemplars:
    def build_registry(self):
        reg = MetricsRegistry()
        hist = reg.histogram("ex_latency_seconds", "Latency.",
                             buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5, trace_id="trace-slow", ts=12.5)
        hist.observe(5.0, trace_id="trace-tail")
        return reg

    def test_openmetrics_exemplar_syntax(self):
        text = to_prometheus_text(self.build_registry())
        tail = next(line for line in text.splitlines()
                    if 'le="+Inf"' in line)
        assert tail.endswith('# {trace_id="trace-tail"} 5')
        mid = next(line for line in text.splitlines() if 'le="1"' in line)
        assert '# {trace_id="trace-slow"} 0.5 12.5' in mid
        # The fast bucket observed without a trace carries no exemplar.
        fast = next(line for line in text.splitlines()
                    if 'le="0.1"' in line)
        assert "#" not in fast

    def test_parser_returns_exemplars(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(self.build_registry()))
        exemplars = parsed["exemplars"]["ex_latency_seconds_bucket"]
        by_le = {dict(key)["le"]: ex for key, ex in exemplars.items()}
        assert by_le["+Inf"].trace_id == "trace-tail"
        assert by_le["+Inf"].value == pytest.approx(5.0)
        assert by_le["+Inf"].ts is None
        assert by_le["1"].ts == pytest.approx(12.5)
        # Sample values are unaffected by the exemplar suffix.
        samples = parse_prometheus_text(
            to_prometheus_text(self.build_registry()))["samples"]
        assert samples["ex_latency_seconds_bucket"][
            (("le", "+Inf"),)] == 3.0

    def test_round_trip_rerender_matches(self):
        # parse -> values survive; exemplar text parses as valid lines
        # even for exposition consumers unaware of the syntax extension.
        text = to_prometheus_text(self.build_registry())
        parsed = parse_prometheus_text(text)
        assert parsed["families"]["ex_latency_seconds"] == "histogram"

    def test_latest_exemplar_per_bucket_wins(self):
        reg = MetricsRegistry()
        hist = reg.histogram("w_seconds", "w", buckets=(1.0,))
        hist.observe(0.5, trace_id="first")
        hist.observe(0.6, trace_id="second")
        text = to_prometheus_text(reg)
        line = next(l for l in text.splitlines() if 'le="1"' in l)
        assert 'trace_id="second"' in line


class TestRegisterAll:
    def test_full_surface_advertised_without_samples(self):
        reg = MetricsRegistry()
        names.register_all(reg)
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        families = parsed["families"]
        for prefix in ("lsm_", "scheduler_", "fpga_pcie_", "fpga_pipeline_"):
            assert any(name.startswith(prefix) for name in families), prefix
        assert families["lsm_writes_total"] == "counter"
        assert families["lsm_level_files"] == "gauge"
        assert families["scheduler_task_input_bytes"] == "histogram"
        assert families["fpga_pipeline_kernel_seconds"] == "histogram"
        # Headers only — no samples yet.
        assert parsed["samples"] == {}
