"""CompactionScheduler: Fig 6 routing, DB integration, verification."""

import random

import pytest

from repro.errors import FpgaProtocolError
from repro.fpga.config import CONFIG_2_INPUT, CONFIG_9_INPUT
from repro.host.device import FcaeDevice
from repro.host.scheduler import CompactionScheduler
from repro.lsm import LsmDB
from repro.lsm.compaction import OutputTable
from repro.lsm.env import MemEnv
from repro.lsm.options import Options
from repro.lsm.sstable import TableStats
from repro.lsm.version import CompactionSpec, FileMetaData
from repro.lsm.internal import TYPE_VALUE, encode_internal_key


def small_options():
    return Options(write_buffer_size=24 * 1024, sstable_size=16 * 1024,
                   max_level0_size=48 * 1024, compression="none",
                   value_length=64, bloom_bits_per_key=0)


def spec_with_inputs(level, num_inputs, num_parents):
    def meta(i):
        return FileMetaData(
            i, 1000,
            encode_internal_key(f"{i:04d}".encode(), 1, TYPE_VALUE),
            encode_internal_key(f"{i:04d}x".encode(), 1, TYPE_VALUE))
    return CompactionSpec(
        level=level,
        inputs=[meta(i) for i in range(num_inputs)],
        parents=[meta(100 + i) for i in range(num_parents)])


class TestRouting:
    def test_level0_small_fits_n9(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_9_INPUT, options), options)
        assert scheduler.should_offload(spec_with_inputs(0, 4, 3))

    def test_level0_overflows_n2(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_2_INPUT, options), options)
        assert not scheduler.should_offload(spec_with_inputs(0, 4, 3))

    def test_deep_level_always_two_streams(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_2_INPUT, options), options)
        assert scheduler.should_offload(spec_with_inputs(3, 5, 7))

    def test_level0_exceeding_nine_falls_back(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_9_INPUT, options), options)
        assert not scheduler.should_offload(spec_with_inputs(0, 10, 2))


class TestDbIntegration:
    def test_db_with_fpga_executor_is_consistent(self):
        options = small_options()
        device = FcaeDevice(CONFIG_9_INPUT, options)
        scheduler = CompactionScheduler(device, options)
        db = LsmDB("fdb", options, env=MemEnv(),
                   compaction_executor=scheduler)
        rng = random.Random(17)
        expected = {}
        for i in range(4000):
            key = f"user{rng.randrange(1500):010d}".encode()
            value = f"payload-{i}".encode().ljust(64, b".")
            db.put(key, value)
            expected[key] = value
            if rng.random() < 0.05:
                victim = f"user{rng.randrange(1500):010d}".encode()
                db.delete(victim)
                expected.pop(victim, None)
        db.compact_range()
        assert scheduler.stats.fpga_tasks > 0
        for key, value in list(expected.items())[::13]:
            assert db.get(key) == value
        scanned = dict(db.scan())
        assert scanned == expected

    def test_stats_accumulate(self):
        options = small_options()
        device = FcaeDevice(CONFIG_9_INPUT, options)
        scheduler = CompactionScheduler(device, options)
        db = LsmDB("fdb", options, env=MemEnv(),
                   compaction_executor=scheduler)
        for i in range(3000):
            db.put(f"k{i:012d}".encode(), b"v" * 64)
        db.compact_range()
        stats = scheduler.stats
        assert stats.fpga_input_bytes > 0
        assert stats.fpga_kernel_seconds > 0
        assert stats.fpga_pcie_seconds > 0
        assert 0 < stats.pcie_fraction_of_offload < 0.5

    def test_as_dict_and_merge(self):
        from repro.host.scheduler import SchedulerStats

        options = small_options()
        device = FcaeDevice(CONFIG_9_INPUT, options)
        scheduler = CompactionScheduler(device, options)
        db = LsmDB("fdb", options, env=MemEnv(),
                   compaction_executor=scheduler)
        for i in range(3000):
            db.put(f"k{i:012d}".encode(), b"v" * 64)
        db.compact_range()

        data = scheduler.stats.as_dict()
        expected_keys = set(SchedulerStats.INT_FIELDS) \
            | set(SchedulerStats.FLOAT_FIELDS)
        assert set(data) == expected_keys
        assert data["fpga_tasks"] == scheduler.stats.fpga_tasks
        assert data["fpga_kernel_seconds"] \
            == scheduler.stats.fpga_kernel_seconds

        merged = SchedulerStats.merge(scheduler.stats, scheduler.stats)
        assert merged["fpga_tasks"] == 2 * scheduler.stats.fpga_tasks
        assert merged["fpga_kernel_seconds"] == pytest.approx(
            2 * scheduler.stats.fpga_kernel_seconds)


class TestVerification:
    def test_overlapping_outputs_detected(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_9_INPUT, options), options)
        k1 = encode_internal_key(b"a", 1, TYPE_VALUE)
        k2 = encode_internal_key(b"m", 1, TYPE_VALUE)
        k3 = encode_internal_key(b"c", 1, TYPE_VALUE)
        k4 = encode_internal_key(b"z", 1, TYPE_VALUE)
        bad = [
            OutputTable(b"", k1, k2, TableStats()),
            OutputTable(b"", k3, k4, TableStats()),  # overlaps previous
        ]
        with pytest.raises(FpgaProtocolError):
            scheduler._verify(bad)

    def test_inverted_range_detected(self):
        options = small_options()
        scheduler = CompactionScheduler(
            FcaeDevice(CONFIG_9_INPUT, options), options)
        k_small = encode_internal_key(b"a", 1, TYPE_VALUE)
        k_large = encode_internal_key(b"z", 1, TYPE_VALUE)
        bad = [OutputTable(b"", k_large, k_small, TableStats())]
        with pytest.raises(FpgaProtocolError):
            scheduler._verify(bad)
