"""Snapshot reads: point-in-time gets and scans."""

import pytest

from repro.errors import DBStateError, NotFoundError
from repro.lsm import LsmDB, Options
from repro.lsm.db import Snapshot
from repro.lsm.env import MemEnv


@pytest.fixture
def db(options):
    return LsmDB("snapdb", options, env=MemEnv(), auto_compact=False)


class TestSnapshotGet:
    def test_sees_value_at_capture_time(self, db):
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        assert db.get(b"k", snapshot=snap) == b"v1"

    def test_key_created_after_snapshot_invisible(self, db):
        snap = db.snapshot()
        db.put(b"new", b"v")
        with pytest.raises(NotFoundError):
            db.get(b"new", snapshot=snap)

    def test_delete_after_snapshot_invisible(self, db):
        db.put(b"k", b"v")
        snap = db.snapshot()
        db.delete(b"k")
        with pytest.raises(NotFoundError):
            db.get(b"k")
        assert db.get(b"k", snapshot=snap) == b"v"

    def test_snapshot_survives_flush(self, db):
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        db.flush()
        assert db.get(b"k", snapshot=snap) == b"v1"

    def test_foreign_snapshot_rejected(self, db, options):
        other = LsmDB("otherdb", options, env=MemEnv())
        snap = other.snapshot()
        db.put(b"k", b"v")
        with pytest.raises(DBStateError):
            db.get(b"k", snapshot=snap)

    def test_repr(self, db):
        snap = db.snapshot()
        assert "Snapshot" in repr(snap)
        assert isinstance(snap, Snapshot)


class TestSnapshotScan:
    def test_scan_at_snapshot(self, db):
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        snap = db.snapshot()
        db.put(b"c", b"3")
        db.delete(b"a")
        db.put(b"b", b"2-new")
        now = dict(db.scan())
        then = dict(db.scan(snapshot=snap))
        assert now == {b"b": b"2-new", b"c": b"3"}
        assert then == {b"a": b"1", b"b": b"2"}

    def test_scan_snapshot_across_flush(self, db):
        for i in range(50):
            db.put(f"k{i:04d}".encode(), b"old")
        snap = db.snapshot()
        db.flush()
        for i in range(50):
            db.put(f"k{i:04d}".encode(), b"new")
        then = dict(db.scan(snapshot=snap))
        assert all(v == b"old" for v in then.values())
        assert len(then) == 50


class TestSnapshotWithRange:
    def test_scan_range_and_snapshot_compose(self, db):
        for i in range(20):
            db.put(f"k{i:03d}".encode(), b"old")
        snap = db.snapshot()
        for i in range(20):
            db.put(f"k{i:03d}".encode(), b"new")
        window = dict(db.scan(start=b"k005", end=b"k010", snapshot=snap))
        assert window == {f"k{i:03d}".encode(): b"old"
                          for i in range(5, 10)}

    def test_snapshot_sequence_ordering(self, db):
        first = db.snapshot()
        db.put(b"x", b"1")
        second = db.snapshot()
        assert second.sequence > first.sequence
