#!/usr/bin/env python3
"""Repo lint entry point: runs the concurrency-contract analyzer.

Equivalent to ``PYTHONPATH=src python -m repro.analysis`` but runnable
from a bare checkout::

    python tools/lint.py --strict src/

Exit code 0 means no unwaived error findings (warnings don't fail).
"""

import os
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
