"""Shared benchmark plumbing: result container, table formatting, and
the standard engine/system configurations of the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.fpga.config import FpgaConfig

#: §VII-B: 2-input engine, W_in = W_out = 64, V swept 8..64.
VALUE_WIDTHS = (8, 16, 32, 64)
#: Table IV's value-length sweep.
VALUE_LENGTHS = (64, 128, 256, 512, 1024, 2048)
#: §VII-C1's chosen multi-input configuration.
N9_CONFIG = FpgaConfig(num_inputs=9, value_width=8, w_in=8, w_out=64)


def two_input_config(value_width: int) -> FpgaConfig:
    return FpgaConfig(num_inputs=2, value_width=value_width,
                      w_in=64, w_out=64)


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    name: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def cell(self, row: int, column: str):
        return self.rows[row][self.columns.index(column)]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def format(self) -> str:
        """Render as a monospace table."""

        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        headers = [str(c) for c in self.columns]
        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(headers[i]), *(len(r[i]) for r in body))
                  if body else len(headers[i])
                  for i in range(len(headers))]
        lines = [f"== {self.name}: {self.title}"]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        lines = [f"### {self.name} — {self.title}", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)


def scaled(values: Sequence, scale: float, minimum: int = 1) -> list[int]:
    """Scale integer workload knobs for quick runs."""
    return [max(minimum, int(v * scale)) for v in values]


def scale_bytes(nbytes: int, scale: float,
                minimum: Optional[int] = None) -> int:
    floor = minimum if minimum is not None else 16 * 1024 * 1024
    return max(floor, int(nbytes * scale))
