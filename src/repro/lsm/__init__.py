"""A LevelDB-workalike LSM-tree key-value store.

This package is the substrate the paper accelerates: a leveled LSM-tree
with a skiplist memtable, write-ahead log, Snappy-compressed SSTables
(4 KB prefix-compressed data blocks + index block + footer), bloom
filters, an LRU block cache, and leveled compaction.  The on-disk SSTable
format produced here is exactly what the FPGA compaction engine in
:mod:`repro.fpga` consumes and emits.

Public entry points:

* :class:`repro.lsm.db.LsmDB` — open/put/get/delete/iterate.
* :class:`repro.lsm.options.Options` — tuning knobs (the paper's Table IV).
* :class:`repro.lsm.batch.WriteBatch` — atomic multi-key writes.
"""

from repro.lsm.batch import WriteBatch
from repro.lsm.db import LsmDB
from repro.lsm.options import Options

__all__ = ["LsmDB", "Options", "WriteBatch"]
