"""CT002: a journal event type unknown to the validator schema."""


def record(journal):
    journal.emit("flush_start", level=0)
    journal.emit("flush_strat", level=0)  # VIOLATION CT002
