"""LevelDB-style variable-length integer coding.

Varints store an unsigned integer in base-128 groups, least significant
group first; the high bit of each byte marks continuation.  They are used
throughout the SSTable and WAL formats for lengths and offsets.
"""

from __future__ import annotations

from repro.errors import CorruptionError, InvalidArgumentError

MAX_VARINT32_BYTES = 5
MAX_VARINT64_BYTES = 10

_UINT32_MAX = (1 << 32) - 1
_UINT64_MAX = (1 << 64) - 1


def encode_varint32(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**32) as a varint."""
    if not 0 <= value <= _UINT32_MAX:
        raise InvalidArgumentError(f"varint32 out of range: {value}")
    return _encode(value)


def encode_varint64(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**64) as a varint."""
    if not 0 <= value <= _UINT64_MAX:
        raise InvalidArgumentError(f"varint64 out of range: {value}")
    return _encode(value)


def _encode(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def decode_varint32(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint32 from ``buf`` starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`CorruptionError` on a
    truncated or overlong encoding.
    """
    return _decode(buf, offset, MAX_VARINT32_BYTES, _UINT32_MAX)


def decode_varint64(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint64 from ``buf`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    return _decode(buf, offset, MAX_VARINT64_BYTES, _UINT64_MAX)


def _decode(buf, offset: int, max_bytes: int, max_value: int) -> tuple[int, int]:
    result = 0
    shift = 0
    pos = offset
    end = min(len(buf), offset + max_bytes)
    while pos < end:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > max_value:
                raise CorruptionError("varint value exceeds range")
            return result, pos
        shift += 7
    raise CorruptionError("truncated or overlong varint")
