"""Bloom-filter policy, LevelDB-compatible.

Uses LevelDB's double-hashing scheme seeded by a single 32-bit hash
(``BloomFilterPolicy`` in ``util/bloom.cc``): ``k`` probe positions are
derived by repeatedly adding a 17-bit rotation delta.  The generated
filter bytes are appended with a trailing byte recording ``k`` so a reader
needs no out-of-band metadata.
"""

from __future__ import annotations

import math
from typing import Iterable

_SEED = 0xBC9F1D34
_MULT = 0xC6A4A793
_U32 = 0xFFFFFFFF


def _leveldb_hash(data: bytes, seed: int = _SEED) -> int:
    """LevelDB's ``util/hash.cc`` — a Murmur-like 32-bit hash."""
    h = (seed ^ (len(data) * _MULT)) & _U32
    pos = 0
    limit = len(data) - len(data) % 4
    while pos < limit:
        word = int.from_bytes(data[pos:pos + 4], "little")
        pos += 4
        h = (h + word) & _U32
        h = (h * _MULT) & _U32
        h ^= h >> 16
    rest = len(data) - pos
    if rest == 3:
        h = (h + (data[pos + 2] << 16)) & _U32
        rest = 2
    if rest == 2:
        h = (h + (data[pos + 1] << 8)) & _U32
        rest = 1
    if rest == 1:
        h = (h + data[pos]) & _U32
        h = (h * _MULT) & _U32
        h ^= h >> 24
    return h


class BloomFilterPolicy:
    """Builds and probes per-table bloom filters."""

    def __init__(self, bits_per_key: int = 10):
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.bits_per_key = bits_per_key
        # Optimal k = bits_per_key * ln(2), clamped like LevelDB.
        self._k = max(1, min(30, int(bits_per_key * math.log(2))))

    @property
    def name(self) -> str:
        return "leveldb.BuiltinBloomFilter2"

    def create_filter(self, keys: Iterable[bytes]) -> bytes:
        keys = list(keys)
        bits = max(64, len(keys) * self.bits_per_key)
        nbytes = (bits + 7) // 8
        bits = nbytes * 8
        array = bytearray(nbytes)
        for key in keys:
            h = _leveldb_hash(key)
            delta = ((h >> 17) | (h << 15)) & _U32
            for _ in range(self._k):
                bit = h % bits
                array[bit // 8] |= 1 << (bit % 8)
                h = (h + delta) & _U32
        array.append(self._k)
        return bytes(array)

    @staticmethod
    def key_may_match(key: bytes, filter_data: bytes) -> bool:
        """Probe; ``True`` may be a false positive, ``False`` is definitive."""
        if len(filter_data) < 2:
            return False
        k = filter_data[-1]
        if k > 30:
            # Reserved for future encodings; err on returning true.
            return True
        bits = (len(filter_data) - 1) * 8
        h = _leveldb_hash(key)
        delta = ((h >> 17) | (h << 15)) & _U32
        for _ in range(k):
            bit = h % bits
            if not filter_data[bit // 8] & (1 << (bit % 8)):
                return False
            h = (h + delta) & _U32
        return True
