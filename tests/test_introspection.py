"""Introspection helpers: approximate sizes, pipeline utilization."""

import pytest

from repro.fpga.config import CONFIG_2_INPUT
from repro.fpga.engine import simulate_synthetic
from repro.lsm import LsmDB
from repro.lsm.env import MemEnv


class TestApproximateSize:
    @pytest.fixture
    def filled_db(self, options):
        db = LsmDB("sizedb", options, env=MemEnv())
        for i in range(2000):
            db.put(f"key{i:08d}".encode(), b"v" * 48)
        db.compact_range()
        return db

    def test_whole_range_close_to_total(self, filled_db):
        total = sum(filled_db.level_sizes())
        estimate = filled_db.approximate_size(b"key00000000", b"kez")
        assert estimate >= total // 2
        assert estimate <= total

    def test_empty_range_zero(self, filled_db):
        assert filled_db.approximate_size(b"z", b"zz") == 0

    def test_inverted_range_zero(self, filled_db):
        assert filled_db.approximate_size(b"m", b"a") == 0

    def test_monotone_in_range_width(self, filled_db):
        narrow = filled_db.approximate_size(b"key00000100", b"key00000200")
        wide = filled_db.approximate_size(b"key00000100", b"key00001800")
        assert wide >= narrow

    def test_half_range_roughly_half(self, filled_db):
        total = filled_db.approximate_size(b"key00000000", b"kez")
        half = filled_db.approximate_size(b"key00000000", b"key00001000")
        assert 0.2 * total < half < 0.8 * total


class TestPipelineUtilization:
    def test_fractions_bounded(self):
        report = simulate_synthetic(CONFIG_2_INPUT, [1000, 1000], 16, 512)
        util = report.utilization()
        assert set(util) == {"decoder", "comparer", "value_bus", "encoder",
                             "writer", "decoder_stall"}
        # Single-resource modules are bounded by 1; the decoder fraction
        # sums per-input chains, so it is bounded by N.
        for name in ("comparer", "value_bus", "encoder", "writer",
                     "decoder_stall"):
            assert 0 <= util[name] <= 1.0
        assert 0 <= util["decoder"] <= CONFIG_2_INPUT.num_inputs

    def test_value_bus_dominates_at_long_values(self):
        report = simulate_synthetic(CONFIG_2_INPUT, [1000, 1000], 16, 2048)
        util = report.utilization()
        assert util["value_bus"] > 0.5
        assert util["value_bus"] > util["writer"]

    def test_busy_fractions_surfaced(self):
        report = simulate_synthetic(CONFIG_2_INPUT, [1000, 1000], 16, 64)
        util = report.utilization()
        assert util["decoder"] == pytest.approx(
            report.decoder_busy_cycles / report.total_cycles)
        assert util["comparer"] == pytest.approx(
            report.comparer_busy_cycles / report.total_cycles)
        assert util["encoder"] == pytest.approx(
            report.encoder_busy_cycles / report.total_cycles)
        # Small values keep the Comparer, not the value path, busiest.
        assert util["comparer"] > util["value_bus"]

    def test_empty_report_safe(self):
        from repro.fpga.pipeline_sim import TimingReport
        util = TimingReport().utilization()
        assert set(util) == set(TimingReport.UTILIZATION_FIELDS)
        assert all(value == 0.0 for value in util.values())
