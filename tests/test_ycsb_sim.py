"""YCSB system-simulation details: determinism, cache model, pure-read
path."""

import pytest

from repro.fpga.config import CONFIG_9_INPUT
from repro.lsm.options import Options
from repro.sim.system import (
    SystemConfig,
    YcsbSimResult,
    _cache_hit_rate,
    simulate_ycsb,
)
from repro.workloads import YCSB_WORKLOADS

OPTIONS = Options(value_length=1024)
RECORDS = 5_000_000
OPS = 1_000_000


def config(mode):
    return SystemConfig(mode=mode, options=OPTIONS, fpga=CONFIG_9_INPUT)


class TestCacheModel:
    def test_zipfian_hit_rate_high_despite_small_cache(self):
        rate = _cache_hit_rate("zipfian", 10 ** 7, 10 * 2 ** 30, 2 ** 30)
        assert 0.5 < rate < 1.0

    def test_uniform_hit_rate_equals_coverage(self):
        rate = _cache_hit_rate("uniform", 10 ** 7, 10 * 2 ** 30, 2 ** 30)
        assert rate == pytest.approx(0.1)

    def test_latest_hit_rate_highest(self):
        latest = _cache_hit_rate("latest", 10 ** 7, 10 * 2 ** 30, 2 ** 30)
        zipf = _cache_hit_rate("zipfian", 10 ** 7, 10 * 2 ** 30, 2 ** 30)
        assert latest >= zipf

    def test_full_coverage_caps_at_one(self):
        rate = _cache_hit_rate("uniform", 10 ** 6, 2 ** 20, 2 ** 30)
        assert rate == 1.0


class TestSimulateYcsb:
    def test_pure_read_workload_has_no_write_result(self):
        result = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["c"],
                               RECORDS, OPS)
        assert isinstance(result, YcsbSimResult)
        assert result.write_result is None
        assert result.ops_per_second > 0

    def test_mixed_workload_carries_write_result(self):
        result = simulate_ycsb(config("fcae"), YCSB_WORKLOADS["a"],
                               RECORDS, OPS)
        assert result.write_result is not None
        assert result.write_result.mode == "fcae"

    def test_deterministic(self):
        first = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["a"],
                              RECORDS, OPS)
        second = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["a"],
                               RECORDS, OPS)
        assert first.elapsed_seconds == second.elapsed_seconds

    def test_more_cache_never_slows_reads(self):
        small = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["c"],
                              RECORDS, OPS, cache_bytes=1e9)
        large = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["c"],
                              RECORDS, OPS, cache_bytes=8e9)
        assert large.ops_per_second >= small.ops_per_second

    def test_scan_workload_slower_than_point_reads(self):
        scans = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["e"],
                              RECORDS, OPS)
        points = simulate_ycsb(config("leveldb"), YCSB_WORKLOADS["c"],
                               RECORDS, OPS)
        assert scans.ops_per_second < points.ops_per_second
