"""Live terminal dashboard — ``lsm top`` / ``python -m repro.bench --top``.

Renders a point-in-time view of the observability surface from a
:class:`~repro.obs.registry.MetricsRegistry` snapshot: per-tenant SLO
burn-rate gauges and error budgets, windowed latency quantiles, the
per-level amplification table, stall episodes, and backend routing.
Everything is read from the registry (plus an optional live ``LsmDB``
for the level table and an optional :class:`~repro.obs.slo.SloEngine`
for firing-alert markers), so the dashboard is a pure view: rendering
never mutates state and works headless (``--once``) without a TTY for
CI smoke checks.
"""

from __future__ import annotations

import time
from typing import Optional

#: ANSI clear-screen + home, used only between live refreshes.
CLEAR = "\x1b[2J\x1b[H"


def _labels(key: tuple) -> dict:
    return dict(key)


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:7.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:6.2f}ms"
    return f"{value * 1e6:6.1f}us"


def _fmt_count(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return str(int(value))


def _section(lines: list[str], title: str) -> None:
    if lines and lines[-1] != "":
        lines.append("")
    lines.append(title)


def _slo_section(lines: list[str], snapshot: dict, engine) -> None:
    burns = snapshot.get("slo_burn_rate", {})
    budgets = snapshot.get("slo_error_budget_remaining", {})
    if not burns and not budgets:
        return
    # Without an engine we cannot tell firing from quiet — show "-"
    # rather than a false "ok".
    firing = set(engine.firing()) if engine is not None else None
    _section(lines, "slo burn rates:")
    lines.append(f"  {'slo':<18} {'tenant':<10} {'policy':<6} "
                 f"{'short':>8} {'long':>8} {'budget':>8}  state")
    # group short/long pairs per (slo, tenant, policy)
    table: dict[tuple, dict] = {}
    for key, value in burns.items():
        labels = _labels(key)
        triple = (labels.get("slo", "?"), labels.get("tenant", "?"),
                  labels.get("policy", "?"))
        table.setdefault(triple, {})[labels.get("window", "?")] = value
    budget_by = { (lbl.get("slo"), lbl.get("tenant")): value
                  for lbl, value in ((_labels(k), v)
                                     for k, v in budgets.items()) }
    for (slo, tenant, policy) in sorted(table):
        windows = table[(slo, tenant, policy)]
        budget = budget_by.get((slo, tenant))
        budget_cell = f"{budget:8.2%}" if budget is not None else f"{'-':>8}"
        if firing is None:
            state = "-"
        else:
            state = "FIRING" if (slo, tenant, policy) in firing else "ok"
        lines.append(
            f"  {slo:<18} {tenant:<10} {policy:<6} "
            f"{windows.get('short', 0.0):8.2f} "
            f"{windows.get('long', 0.0):8.2f} "
            f"{budget_cell}  {state}")


def _tenant_section(lines: list[str], snapshot: dict) -> None:
    ops = snapshot.get("lsm_tenant_ops_total", {})
    if not ops:
        return
    per_tenant: dict[str, dict[str, float]] = {}
    for key, value in ops.items():
        labels = _labels(key)
        per_tenant.setdefault(labels.get("tenant", "?"), {})[
            labels.get("op", "?")] = value
    _section(lines, "tenant ops:")
    for tenant in sorted(per_tenant):
        parts = "  ".join(f"{op}={_fmt_count(n)}"
                          for op, n in sorted(per_tenant[tenant].items()))
        lines.append(f"  {tenant:<12} {parts}")


def _latency_section(lines: list[str], snapshot: dict) -> None:
    rows: dict[tuple, dict[str, float]] = {}
    for family in ("lsm_op_latency_window_seconds",
                   "sim_op_latency_window_seconds"):
        for key, value in snapshot.get(family, {}).items():
            labels = _labels(key)
            ident = (labels.get("tenant", "-"), labels.get("op", "?"))
            rows.setdefault(ident, {})[labels.get("quantile", "?")] = value
    if not rows:
        return
    _section(lines, "windowed latency:")
    lines.append(f"  {'tenant':<12} {'op':<6} {'p50':>9} {'p95':>9} "
                 f"{'p99':>9} {'p999':>9}")
    for (tenant, op) in sorted(rows):
        quantiles = rows[(tenant, op)]
        cells = " ".join(
            f"{_fmt_seconds(quantiles[q]):>9}" if q in quantiles
            else f"{'-':>9}"
            for q in ("p50", "p95", "p99", "p999"))
        lines.append(f"  {tenant:<12} {op:<6} {cells}")


def _levels_section(lines: list[str], snapshot: dict, db) -> None:
    if db is not None:
        from repro.obs.report import render_level_stats
        _section(lines, "levels:")
        for line in render_level_stats(db).splitlines()[2:]:
            lines.append("  " + line)
        return
    files = snapshot.get("lsm_level_files", {})
    if not files:
        return
    nbytes = snapshot.get("lsm_level_bytes", {})
    wamp = snapshot.get("lsm_level_write_amp", {})
    _section(lines, "levels:")
    lines.append(f"  {'level':<6} {'files':>6} {'size(MB)':>10} "
                 f"{'W-Amp':>8}")
    by_level: dict[int, dict] = {}
    for key, value in files.items():
        labels = _labels(key)
        by_level.setdefault(int(labels.get("level", -1)), {})[
            "files"] = value
    for family, field in ((nbytes, "bytes"), (wamp, "wamp")):
        for key, value in family.items():
            labels = _labels(key)
            by_level.setdefault(int(labels.get("level", -1)), {})[
                field] = value
    for level in sorted(by_level):
        row = by_level[level]
        lines.append(
            f"  {level:<6} {int(row.get('files', 0)):>6} "
            f"{row.get('bytes', 0) / 1e6:>10.2f} "
            f"{row.get('wamp', 0.0):>8.3f}")


def _stall_section(lines: list[str], snapshot: dict) -> None:
    stalls = snapshot.get("lsm_write_stalls_total", {})
    episodes = snapshot.get("lsm_write_stall_seconds", {})
    total_stalls = sum(stalls.values())
    stall_sum = sum(entry[0] for entry in episodes.values())
    stall_count = sum(entry[1] for entry in episodes.values())
    if total_stalls == 0 and stall_count == 0:
        return
    _section(lines, "write stalls:")
    mean = stall_sum / stall_count if stall_count else 0.0
    lines.append(
        f"  stop-trigger hits: {int(total_stalls)}   episodes: "
        f"{int(stall_count)}   total {stall_sum:.3f}s   "
        f"mean {_fmt_seconds(mean).strip()}")


def _routing_section(lines: list[str], snapshot: dict) -> None:
    tasks = snapshot.get("scheduler_tasks_total", {})
    if not tasks or sum(tasks.values()) == 0:
        return
    by_route: dict[str, float] = {}
    for key, value in tasks.items():
        labels = _labels(key)
        by_route[labels.get("route", "?")] = \
            by_route.get(labels.get("route", "?"), 0) + value
    total = sum(by_route.values())
    _section(lines, "compaction routing:")
    for route in sorted(by_route):
        share = by_route[route] / total if total else 0.0
        lines.append(f"  {route:<10} {int(by_route[route]):>6} "
                     f"({share:.1%})")


def render_dashboard(registry, db=None, engine=None,
                     uptime_seconds: Optional[float] = None) -> str:
    """One dashboard frame as plain text (no ANSI — safe headless)."""
    snapshot = registry.snapshot()
    lines: list[str] = ["lsm top"]
    if uptime_seconds is not None:
        lines[0] += f" — uptime {uptime_seconds:.1f}s"
    _slo_section(lines, snapshot, engine)
    _tenant_section(lines, snapshot)
    _latency_section(lines, snapshot)
    _levels_section(lines, snapshot, db)
    _stall_section(lines, snapshot)
    _routing_section(lines, snapshot)
    if len(lines) == 1:
        lines.append("")
        lines.append("(no samples yet)")
    return "\n".join(lines) + "\n"


def run_dashboard(registry, db=None, engine=None, interval: float = 1.0,
                  iterations: Optional[int] = None, out=None,
                  clock=None, sleep=None) -> None:
    """Refresh loop behind ``lsm top``.

    ``iterations=1`` is the ``--once`` headless mode: print a single
    frame with no screen clearing and return.  ``out``/``clock``/
    ``sleep`` are injectable for tests (no real sleeping)."""
    import sys
    out = out if out is not None else sys.stdout
    clock = clock if clock is not None else time.monotonic
    sleep = sleep if sleep is not None else time.sleep
    started = clock()
    count = 0
    while iterations is None or count < iterations:
        frame = render_dashboard(registry, db=db, engine=engine,
                                 uptime_seconds=clock() - started)
        if iterations != 1 and count > 0:
            out.write(CLEAR)
        out.write(frame)
        flush = getattr(out, "flush", None)
        if flush is not None:
            flush()
        count += 1
        if iterations is not None and count >= iterations:
            break
        sleep(interval)
