"""Critical-path attribution: which module bounds a kernel run.

The paper's Table V analysis explains every measured cell by naming the
module that bounds throughput at that (key, value) point — Data Block
Decoder, Comparer, or the value path.  This pass recovers that story
from a run's recorded pipeline intervals instead of analytic periods,
so it stays truthful as the behavioral model grows.

Method: sweep the union of the run's busy intervals; attribute each
instant of kernel time to the **most downstream** module busy at that
instant (``writer > value_bus > encoder > comparer > decoder``).  Busy
time of an upstream stage that overlaps a downstream stage is hidden by
it — the pipeline would not finish earlier if the upstream stage were
faster during those cycles.  Instants when *no* module is busy are
attributed to ``backpressure``: the pipeline is globally stalled on a
dependency (a full KV FIFO gating the decoder while the Comparer
starves, or start-up latency).  By construction the per-module fractions
partition the run exactly, so they sum to 1.

:func:`publish_attribution` folds a run's attribution into the
``fpga_pipeline_bottleneck_*`` metric families, and
:func:`profile_from_registry` renders the accumulated families (plus the
host-side ``scheduler_*`` / ``fpga_pcie_*`` seconds) into the
machine-readable report behind ``fcae-bench --profile``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Downstream-first precedence for the interval sweep.
MODULE_PRECEDENCE = ("writer", "value_bus", "encoder", "comparer",
                     "decoder")

#: Every attribution class, in reporting order.
CLASSES = MODULE_PRECEDENCE + ("backpressure",)

_RANK = {module: rank for rank, module in enumerate(MODULE_PRECEDENCE)}


@dataclass(frozen=True)
class Attribution:
    """Exact partition of one kernel run's cycles across the classes."""

    #: cycles attributed per class; keys are :data:`CLASSES`.
    cycles: dict[str, float]
    total_cycles: float

    @property
    def fractions(self) -> dict[str, float]:
        if self.total_cycles <= 0:
            return {name: 0.0 for name in CLASSES}
        return {name: self.cycles[name] / self.total_cycles
                for name in CLASSES}

    @property
    def bottleneck(self) -> str:
        """The dominating class (``idle`` for an empty run)."""
        if self.total_cycles <= 0:
            return "idle"
        return max(CLASSES, key=lambda name: self.cycles[name])

    def as_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "bottleneck": self.bottleneck,
            "cycles": dict(self.cycles),
            "fractions": self.fractions,
        }


def attribute_intervals(intervals: Iterable[tuple[str, float, float]],
                        total_cycles: float) -> Attribution:
    """Sweep ``(module, start, end)`` busy intervals over
    ``[0, total_cycles]`` and partition the run.

    ``module`` must be one of :data:`MODULE_PRECEDENCE`; per-input
    decoder tracks all map to ``decoder`` before calling.  Intervals may
    overlap freely across modules (they do — that is the pipeline).
    """
    edges: list[tuple[float, int, int]] = []
    for module, start, end in intervals:
        start = max(0.0, min(start, total_cycles))
        end = max(0.0, min(end, total_cycles))
        if end <= start:
            continue
        rank = _RANK[module]
        edges.append((start, 0, rank))   # 0 = open before close
        edges.append((end, 1, rank))
    edges.sort()

    cycles = {name: 0.0 for name in CLASSES}
    active = [0] * len(MODULE_PRECEDENCE)
    cursor = 0.0
    for at, closing, rank in edges:
        if at > cursor:
            owner = next((MODULE_PRECEDENCE[r]
                          for r in range(len(active)) if active[r]),
                         "backpressure")
            cycles[owner] += at - cursor
            cursor = at
        active[rank] += -1 if closing else 1
    if total_cycles > cursor:
        cycles["backpressure"] += total_cycles - cursor
    return Attribution(cycles=cycles, total_cycles=float(total_cycles))


def publish_attribution(registry, attribution: Attribution) -> None:
    """Fold one run into the ``fpga_pipeline_bottleneck_*`` families."""
    from repro.obs.names import _counter

    _counter(registry, "fpga_pipeline_bottleneck_runs_total",
             module=attribution.bottleneck).inc()
    for name, cycles in attribution.cycles.items():
        _counter(registry, "fpga_pipeline_bottleneck_cycles_total",
                 module=name).inc(cycles)


# ----------------------------------------------------------------------
# Aggregate profile report (fcae-bench --profile)
# ----------------------------------------------------------------------

def profile_from_registry(registry) -> dict:
    """Machine-readable bottleneck/utilization report for one run's
    accumulated registry: per-module busy and attributed cycles, the
    run classification census, and the host-side phase breakdown."""
    total_cycles = registry.sum_family("fpga_pipeline_cycles_total")
    modules = {}
    for name in CLASSES:
        attributed = registry.get_value(
            "fpga_pipeline_bottleneck_cycles_total", module=name)
        entry = {
            "attributed_cycles": attributed,
            "attributed_fraction": (attributed / total_cycles
                                    if total_cycles > 0 else 0.0),
            "bound_runs": int(registry.get_value(
                "fpga_pipeline_bottleneck_runs_total", module=name)),
        }
        if name != "backpressure":
            entry["busy_cycles"] = registry.get_value(
                "fpga_pipeline_busy_cycles_total", module=name)
        modules[name] = entry
    dominant = (max(CLASSES,
                    key=lambda n: modules[n]["attributed_cycles"])
                if total_cycles > 0 else "idle")
    return {
        "schema": 1,
        "kernel": {
            "runs": int(registry.sum_family("fpga_pipeline_runs_total")),
            "total_cycles": total_cycles,
            "kernel_seconds": registry.sum_family(
                "fpga_pipeline_kernel_seconds_total"),
            "bottleneck": dominant,
            "modules": modules,
            "stall_cycles": {
                "decoder_wait": registry.get_value(
                    "fpga_pipeline_stall_cycles_total", kind="decoder_wait"),
                "backpressure": registry.get_value(
                    "fpga_pipeline_stall_cycles_total", kind="backpressure"),
            },
        },
        "host": {
            "phase_seconds": {
                phase: _sum_labeled(registry,
                                    "scheduler_phase_seconds_total",
                                    "phase", phase)
                for phase in ("marshal", "pcie_in", "kernel", "pcie_out",
                              "software")
            },
            "pcie_seconds": {
                direction: _sum_labeled(registry, "fpga_pcie_seconds_total",
                                        "direction", direction)
                for direction in ("in", "out")
            },
        },
    }


def _sum_labeled(registry, family_name: str, label: str,
                 value: str) -> float:
    """Sum a family's children whose ``label`` equals ``value``
    (ignoring other labels like ``inst``)."""
    total = 0.0
    for family in registry.collect():
        if family.name != family_name:
            continue
        for key, child in family.children.items():
            if (label, value) in key:
                total += child.value
    return total


def render_profile(profile: dict) -> str:
    """Short human-readable summary of :func:`profile_from_registry`."""
    kernel = profile["kernel"]
    lines = [
        f"kernel runs: {kernel['runs']}, "
        f"total cycles: {kernel['total_cycles']:.0f}, "
        f"bottleneck: {kernel['bottleneck']}",
    ]
    for name in CLASSES:
        entry = kernel["modules"][name]
        lines.append(
            f"  {name:<12} {entry['attributed_fraction']:6.1%} of cycles, "
            f"bound {entry['bound_runs']} run(s)")
    host = profile["host"]["phase_seconds"]
    offload = sum(host[p] for p in ("marshal", "pcie_in", "kernel",
                                    "pcie_out"))
    if offload > 0 or host["software"] > 0:
        lines.append(
            f"host: offload {offload:.6f}s "
            f"(pcie {host['pcie_in'] + host['pcie_out']:.6f}s), "
            f"software {host['software']:.6f}s")
    return "\n".join(lines)
