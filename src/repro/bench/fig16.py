"""Fig 16 — YCSB throughput, LevelDB vs LevelDB-FCAE.

20 M records of 16 B keys + 1024 B values (~20 GB), 20 M operations per
workload; multi-input FCAE; workload D uses the latest distribution, the
rest zipfian (paper Table IX).
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, N9_CONFIG
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, simulate_ycsb
from repro.workloads import YCSB_WORKLOADS

RECORD_COUNT = 20_000_000
OP_COUNT = 20_000_000
VALUE_LENGTH = 1024
WORKLOAD_ORDER = ("load", "a", "b", "c", "d", "e", "f")

PAPER_MAX_SPEEDUP = 2.2  # write-only Load


def run(scale: float = 1.0) -> ExperimentResult:
    records = max(100_000, int(RECORD_COUNT * scale))
    ops = max(100_000, int(OP_COUNT * scale))
    options = Options(value_length=VALUE_LENGTH)
    result = ExperimentResult(
        name="Fig 16",
        title="YCSB throughput (kops/s), LevelDB vs LevelDB-FCAE",
        columns=["workload", "LevelDB_kops", "FCAE_kops", "speedup"],
    )
    for name in WORKLOAD_ORDER:
        workload = YCSB_WORKLOADS[name]
        base = simulate_ycsb(SystemConfig(
            mode="leveldb", options=options), workload, records, ops)
        fcae = simulate_ycsb(SystemConfig(
            mode="fcae", options=options, fpga=N9_CONFIG),
            workload, records, ops)
        result.add_row(name, base.ops_per_second / 1e3,
                       fcae.ops_per_second / 1e3,
                       fcae.ops_per_second / base.ops_per_second)
    result.notes.append(
        "paper shape: FCAE >= LevelDB everywhere, speedup grows with "
        f"write ratio, read-only C at 1.0x, Load max {PAPER_MAX_SPEEDUP}x")
    return result
