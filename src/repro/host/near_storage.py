"""Near-storage compaction — the paper's §VII-E future-work direction.

The PCIe-attached architecture moves every compacted byte across the
host: disk → host DRAM → PCIe → card DRAM → kernel → card DRAM → PCIe →
host DRAM → disk.  §VII-E sketches the alternative the authors name as
their next step: place the engine *inside* the SSD ("as an embedded
controller", à la SmartSSD/BlueDBM), so compaction reads and writes ride
the drive's internal bandwidth and never cross the host interface.

:class:`NearStorageDevice` reuses the exact same behavioral engine and
models that placement:

* no PCIe DMA for bulk data — only a small command/completion exchange;
* input/output streaming at the SSD's *internal* aggregate bandwidth
  (the sum over NAND channels, typically 2-4x the external interface);
* no host-memory staging: the host only sends the compaction descriptor
  (the MetaIn picture) and receives MetaOut.

The ``near_storage`` benchmark target compares the two placements on
identical tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import FpgaConfig
from repro.fpga.dram import Dram
from repro.fpga.engine import CompactionEngine, EngineResult
from repro.host.memory import (
    MetaOutEntry,
    decode_meta_out,
    marshal_inputs,
    write_outputs,
)
from repro.lsm.compaction import OutputTable
from repro.lsm.options import Options
from repro.lsm.sstable import TableReader
from repro.sim.cpu import CpuCostModel


@dataclass(frozen=True)
class SsdModel:
    """Internal geometry of the smart SSD hosting the engine."""

    #: Aggregate internal NAND bandwidth available to the engine.
    internal_bandwidth: float = 3.2e9
    #: Host-visible command/completion latency (NVMe round trip).
    command_latency: float = 15e-6
    #: Bytes of descriptor traffic per command (MetaIn/MetaOut scale).
    descriptor_bytes: int = 4096

    def stream_seconds(self, nbytes: int) -> float:
        """Move ``nbytes`` over the internal channels."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return nbytes / self.internal_bandwidth


@dataclass
class NearStorageResult:
    """Outcome of one in-storage compaction."""

    outputs: list[OutputTable]
    meta_out: list[MetaOutEntry]
    engine_result: EngineResult
    command_seconds: float
    internal_read_seconds: float
    kernel_seconds: float
    internal_write_seconds: float
    input_bytes: int
    output_bytes: int

    @property
    def total_seconds(self) -> float:
        return (self.command_seconds + self.internal_read_seconds
                + self.kernel_seconds + self.internal_write_seconds)

    @property
    def data_movement_fraction(self) -> float:
        """Share of time moving bytes rather than merging them."""
        total = self.total_seconds
        moving = self.internal_read_seconds + self.internal_write_seconds
        return moving / total if total > 0 else 0.0


class NearStorageDevice:
    """The engine embedded in the SSD controller."""

    def __init__(self, config: FpgaConfig, options: Options | None = None,
                 ssd: SsdModel | None = None,
                 cpu_model: CpuCostModel | None = None,
                 dram_size: int = 16 * 1024 * 1024 * 1024):
        self.config = config
        self.options = options or Options()
        self.engine = CompactionEngine(config, self.options)
        self.ssd = ssd or SsdModel()
        self.cpu_model = cpu_model or CpuCostModel()
        self.dram_size = dram_size

    def compact(self, inputs: list[list[TableReader]],
                drop_deletions: bool = False) -> NearStorageResult:
        """Run one compaction entirely inside the drive.

        Functionally identical to :class:`repro.host.FcaeDevice.compact`;
        only the timing attribution differs: internal streaming replaces
        PCIe + host staging.
        """
        dram = Dram(size=self.dram_size)
        image = marshal_inputs(dram, self.config, inputs)
        input_bytes = image.total_bytes

        engine_result = self.engine.run(dram, image.layouts, drop_deletions)

        output_base = self.dram_size // 2
        meta_out_image, output_bytes = write_outputs(
            dram, self.config, engine_result.outputs, output_base)

        command = 2 * self.ssd.command_latency  # submit + completion
        return NearStorageResult(
            outputs=engine_result.outputs,
            meta_out=decode_meta_out(meta_out_image),
            engine_result=engine_result,
            command_seconds=command,
            internal_read_seconds=self.ssd.stream_seconds(input_bytes),
            kernel_seconds=engine_result.kernel_seconds,
            internal_write_seconds=self.ssd.stream_seconds(output_bytes),
            input_bytes=input_bytes,
            output_bytes=output_bytes,
        )
