"""Pure-Python Snappy block-format codec.

The format (https://github.com/google/snappy/blob/main/format_description.txt)
is a varint32 *uncompressed length* preamble followed by a sequence of
elements.  Each element starts with a tag byte whose low two bits select:

====  ======================  =========================================
tag   element                 layout
====  ======================  =========================================
0b00  literal                 length-1 in tag bits 2..7 if < 60, else
                              tag value 60..63 selects a 1..4 byte
                              little-endian length-1 that follows
0b01  copy, 1-byte offset     length-4 in tag bits 2..4 (4..11 bytes),
                              offset = tag bits 5..7 << 8 | next byte
0b10  copy, 2-byte offset     length-1 in tag bits 2..7 (1..64 bytes),
                              16-bit little-endian offset follows
0b11  copy, 4-byte offset     as 0b10 with a 32-bit offset
====  ======================  =========================================

The compressor is a greedy hash-table matcher in the spirit of the
reference implementation: it scans 4-byte windows, emits pending bytes as a
literal when a back-reference of at least :data:`MIN_MATCH` bytes is found,
and splits long matches into <= 64-byte copy elements.  Output is readable
by any conforming Snappy decoder.
"""

from __future__ import annotations

from repro.errors import CorruptionError
from repro.util.varint import decode_varint32, encode_varint32

#: Shortest back-reference worth emitting.
MIN_MATCH = 4

#: Snappy compresses input in independent fragments of this size; offsets
#: never reach across a fragment boundary.
_FRAGMENT_SIZE = 65536

_HASH_BITS = 14
_HASH_SIZE = 1 << _HASH_BITS

_TAG_LITERAL = 0b00
_TAG_COPY1 = 0b01
_TAG_COPY2 = 0b10
_TAG_COPY4 = 0b11


def max_compressed_length(source_len: int) -> int:
    """Worst-case compressed size for ``source_len`` input bytes.

    Matches the bound used by the reference implementation.
    """
    return 32 + source_len + source_len // 6


def compress(data: bytes) -> bytes:
    """Compress ``data`` into Snappy block format."""
    out = bytearray(encode_varint32(len(data)))
    for start in range(0, len(data), _FRAGMENT_SIZE):
        _compress_fragment(data, start, min(start + _FRAGMENT_SIZE, len(data)), out)
    if not data:
        # A zero-length input is just its preamble.
        pass
    return bytes(out)


def _hash(word: int) -> int:
    return (word * 0x1E35A7BD) >> (32 - _HASH_BITS) & (_HASH_SIZE - 1)


def _load32(data: bytes, pos: int) -> int:
    return int.from_bytes(data[pos:pos + 4], "little")


def _compress_fragment(data: bytes, start: int, end: int, out: bytearray) -> None:
    length = end - start
    if length < MIN_MATCH + 1:
        _emit_literal(data, start, end, out)
        return

    table: dict[int, int] = {}
    pos = start
    literal_start = start
    # Leave room so 4-byte loads below never run past the fragment.
    limit = end - MIN_MATCH
    while pos <= limit:
        word = _load32(data, pos)
        slot = _hash(word)
        candidate = table.get(slot, -1)
        table[slot] = pos
        if candidate >= start and _load32(data, candidate) == word:
            # Extend the match forward.
            match_len = MIN_MATCH
            while (pos + match_len < end
                   and data[candidate + match_len] == data[pos + match_len]):
                match_len += 1
            if literal_start < pos:
                _emit_literal(data, literal_start, pos, out)
            _emit_copy(pos - candidate, match_len, out)
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    if literal_start < end:
        _emit_literal(data, literal_start, end, out)


def _emit_literal(data: bytes, start: int, end: int, out: bytearray) -> None:
    length = end - start
    if length <= 0:
        return
    n = length - 1
    if n < 60:
        out.append(_TAG_LITERAL | (n << 2))
    elif n < (1 << 8):
        out.append(_TAG_LITERAL | (60 << 2))
        out.append(n)
    elif n < (1 << 16):
        out.append(_TAG_LITERAL | (61 << 2))
        out += n.to_bytes(2, "little")
    elif n < (1 << 24):
        out.append(_TAG_LITERAL | (62 << 2))
        out += n.to_bytes(3, "little")
    else:
        out.append(_TAG_LITERAL | (63 << 2))
        out += n.to_bytes(4, "little")
    out += data[start:end]


def _emit_copy(offset: int, length: int, out: bytearray) -> None:
    # Long matches become a run of <=64-byte copies.  Keep the tail >= 4
    # bytes so the final element is always encodable.
    while length >= 68:
        _emit_copy_upto64(offset, 64, out)
        length -= 64
    if length > 64:
        _emit_copy_upto64(offset, 60, out)
        length -= 60
    _emit_copy_upto64(offset, length, out)


def _emit_copy_upto64(offset: int, length: int, out: bytearray) -> None:
    if 4 <= length <= 11 and offset < (1 << 11):
        out.append(_TAG_COPY1 | ((length - 4) << 2) | ((offset >> 8) << 5))
        out.append(offset & 0xFF)
    elif offset < (1 << 16):
        out.append(_TAG_COPY2 | ((length - 1) << 2))
        out += offset.to_bytes(2, "little")
    else:
        out.append(_TAG_COPY4 | ((length - 1) << 2))
        out += offset.to_bytes(4, "little")


def decompress(data: bytes) -> bytes:
    """Decompress a Snappy block-format byte string.

    Raises :class:`CorruptionError` on malformed input or when the output
    does not match the preamble length.
    """
    expected, pos = decode_varint32(data, 0)
    out = bytearray()
    n = len(data)
    while pos < n:
        tag = data[pos]
        kind = tag & 0b11
        pos += 1
        if kind == _TAG_LITERAL:
            length_code = tag >> 2
            if length_code < 60:
                length = length_code + 1
            else:
                extra = length_code - 59
                if pos + extra > n:
                    raise CorruptionError("truncated literal length")
                length = int.from_bytes(data[pos:pos + extra], "little") + 1
                pos += extra
            if pos + length > n:
                raise CorruptionError("literal overruns input")
            out += data[pos:pos + length]
            pos += length
            continue
        if kind == _TAG_COPY1:
            length = ((tag >> 2) & 0x7) + 4
            if pos >= n:
                raise CorruptionError("truncated copy-1 offset")
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
        elif kind == _TAG_COPY2:
            length = (tag >> 2) + 1
            if pos + 2 > n:
                raise CorruptionError("truncated copy-2 offset")
            offset = int.from_bytes(data[pos:pos + 2], "little")
            pos += 2
        else:
            length = (tag >> 2) + 1
            if pos + 4 > n:
                raise CorruptionError("truncated copy-4 offset")
            offset = int.from_bytes(data[pos:pos + 4], "little")
            pos += 4
        if offset == 0 or offset > len(out):
            raise CorruptionError("copy offset out of range")
        # Copies may overlap their own output (offset < length): byte-wise.
        src = len(out) - offset
        if offset >= length:
            out += out[src:src + length]
        else:
            for _ in range(length):
                out.append(out[src])
                src += 1
    if len(out) != expected:
        raise CorruptionError(
            f"decompressed length {len(out)} != preamble {expected}")
    return bytes(out)
