"""Property tests for the SSTable format: arbitrary sorted entry sets
round-trip through build/read, under both compression modes, and point
lookups always find exactly what iteration yields."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image

ICMP = InternalKeyComparator(BytewiseComparator())

_user_keys = st.sets(st.binary(min_size=1, max_size=32), min_size=1,
                     max_size=120)
_compression = st.sampled_from(["snappy", "none"])


def _entries_from(keys):
    entries = []
    for sequence, user in enumerate(sorted(keys), start=1):
        entries.append((encode_internal_key(user, sequence, TYPE_VALUE),
                        user[::-1] * 3))
    return entries


def _options(compression):
    return Options(block_size=256, sstable_size=1 << 20,
                   compression=compression, bloom_bits_per_key=10,
                   block_restart_interval=4)


@settings(max_examples=40, deadline=None)
@given(_user_keys, _compression)
def test_build_read_roundtrip_property(keys, compression):
    options = _options(compression)
    entries = _entries_from(keys)
    reader = TableReader(build_table_image(entries, options, ICMP),
                         ICMP, options)
    assert list(reader) == entries


@settings(max_examples=30, deadline=None)
@given(_user_keys, _compression, st.binary(min_size=1, max_size=32))
def test_point_get_matches_iteration_property(keys, compression, probe):
    options = _options(compression)
    entries = _entries_from(keys)
    reader = TableReader(build_table_image(entries, options, ICMP),
                         ICMP, options)
    target = encode_internal_key(probe, 2 ** 40, TYPE_VALUE)
    expected = next(
        ((k, v) for k, v in entries if ICMP.compare(k, target) >= 0), None)
    assert reader.get(target) == expected


@settings(max_examples=30, deadline=None)
@given(_user_keys)
def test_bloom_filter_never_rejects_present_property(keys):
    options = _options("none")
    entries = _entries_from(keys)
    reader = TableReader(build_table_image(entries, options, ICMP),
                         ICMP, options)
    for user in keys:
        assert reader.key_may_match(user)
