"""Fig 13 — acceleration ratio vs the CPU baseline: 2-input vs 9-input.

The 9-input CPU baseline is a 9-way software merge (deeper heap), so the
hardware's parallel compare tree earns a *larger* ratio even though its
absolute speed is lower than the 2-input engine's (§VII-C1).
"""

from __future__ import annotations

from repro.bench import fig12
from repro.bench.common import VALUE_LENGTHS, ExperimentResult
from repro.sim.cpu import CpuCostModel

KEY_LENGTH = 16


def run(scale: float = 1.0) -> ExperimentResult:
    grid = fig12.run(scale)
    cpu = CpuCostModel()
    result = ExperimentResult(
        name="Fig 13",
        title="Acceleration ratio vs CPU: 2-input vs 9-input",
        columns=["L_value", "2-input ratio", "9-input ratio"],
    )
    for row_index, value_length in enumerate(VALUE_LENGTHS):
        cpu2 = cpu.compaction_speed_mbps(KEY_LENGTH, value_length,
                                         num_inputs=2)
        cpu9 = cpu.compaction_speed_mbps(KEY_LENGTH, value_length,
                                         num_inputs=9)
        ratio2 = grid.cell(row_index, "2-input") / cpu2
        ratio9 = grid.cell(row_index, "9-input") / cpu9
        result.add_row(value_length, ratio2, ratio9)
    return result
