"""LsmDB end-to-end: CRUD, scans, flush/compaction, invariants."""

import random

import pytest

from repro.errors import DBStateError, NotFoundError
from repro.lsm import LsmDB, WriteBatch
from repro.lsm.env import MemEnv
from repro.lsm.options import NUM_LEVELS


@pytest.fixture
def db(options):
    return LsmDB("testdb", options, env=MemEnv())


def key(i: int) -> bytes:
    return f"key{i:012d}".encode()


class TestCrud:
    def test_put_get(self, db):
        db.put(b"hello", b"world")
        assert db.get(b"hello") == b"world"

    def test_get_missing(self, db):
        with pytest.raises(NotFoundError):
            db.get(b"missing")

    def test_overwrite(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"

    def test_delete(self, db):
        db.put(b"k", b"v")
        db.delete(b"k")
        with pytest.raises(NotFoundError):
            db.get(b"k")

    def test_delete_missing_is_ok(self, db):
        db.delete(b"never-existed")
        with pytest.raises(NotFoundError):
            db.get(b"never-existed")

    def test_empty_value(self, db):
        db.put(b"k", b"")
        assert db.get(b"k") == b""

    def test_batch_atomicity(self, db):
        batch = WriteBatch()
        batch.put(b"a", b"1")
        batch.put(b"b", b"2")
        batch.delete(b"a")
        db.write(batch)
        with pytest.raises(NotFoundError):
            db.get(b"a")
        assert db.get(b"b") == b"2"

    def test_closed_db_rejects_ops(self, db):
        db.close()
        with pytest.raises(DBStateError):
            db.put(b"k", b"v")
        with pytest.raises(DBStateError):
            db.get(b"k")


class TestFlushAndCompaction:
    def test_flush_creates_l0_file(self, db):
        for i in range(50):
            db.put(key(i), b"v" * 40)
        db.flush()
        assert db.level_file_counts()[0] >= 1
        assert db.get(key(25)) == b"v" * 40

    def test_values_survive_compaction(self, db):
        for i in range(1200):
            db.put(key(i), f"value-{i}".encode())
        db.compact_range()
        for i in range(0, 1200, 37):
            assert db.get(key(i)) == f"value-{i}".encode()

    def test_deletes_survive_compaction(self, db):
        for i in range(800):
            db.put(key(i), b"x" * 30)
        for i in range(0, 800, 5):
            db.delete(key(i))
        db.compact_range()
        for i in range(800):
            if i % 5 == 0:
                with pytest.raises(NotFoundError):
                    db.get(key(i))
            else:
                assert db.get(key(i)) == b"x" * 30

    def test_compaction_moves_data_down(self, db):
        for i in range(3000):
            db.put(key(i), b"y" * 40)
        db.compact_range()
        counts = db.level_file_counts()
        assert sum(counts[1:]) > 0  # data left level 0

    def test_sorted_levels_disjoint(self, db):
        rng = random.Random(3)
        for _ in range(2500):
            db.put(key(rng.randrange(1500)), b"z" * 40)
        db.compact_range()
        version = db.versions.current
        for level in range(1, NUM_LEVELS):
            files = version.files[level]
            for prev, cur in zip(files, files[1:]):
                assert prev.user_range()[1] < cur.user_range()[0]

    def test_overwrites_reclaimed(self, db):
        for _ in range(4):
            for i in range(400):
                db.put(key(i), bytes(40))
        db.compact_range()
        live_pairs = len(list(db.scan()))
        assert live_pairs == 400


class TestScan:
    def test_full_scan_sorted_unique(self, db):
        rng = random.Random(7)
        expected = {}
        for _ in range(1500):
            i = rng.randrange(700)
            value = f"v{rng.randrange(10**6)}".encode()
            db.put(key(i), value)
            expected[key(i)] = value
        scanned = list(db.scan())
        assert [k for k, _ in scanned] == sorted(expected)
        assert dict(scanned) == expected

    def test_range_scan_bounds(self, db):
        for i in range(100):
            db.put(key(i), b"v")
        result = [k for k, _ in db.scan(start=key(10), end=key(20))]
        assert result == [key(i) for i in range(10, 20)]

    def test_scan_sees_memtable_and_disk(self, db):
        db.put(key(1), b"disk")
        db.flush()
        db.put(key(2), b"mem")
        assert dict(db.scan()) == {key(1): b"disk", key(2): b"mem"}

    def test_scan_skips_tombstones(self, db):
        db.put(key(1), b"v")
        db.flush()
        db.delete(key(1))
        assert list(db.scan()) == []

    def test_scan_newest_version_wins_across_levels(self, db):
        db.put(key(1), b"old")
        db.flush()
        db.put(key(1), b"new")
        assert dict(db.scan()) == {key(1): b"new"}


class TestContextManager:
    def test_with_statement(self, options):
        with LsmDB("ctx", options, env=MemEnv()) as db:
            db.put(b"a", b"1")
        with pytest.raises(DBStateError):
            db.put(b"b", b"2")
