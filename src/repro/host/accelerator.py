"""Pluggable compaction-accelerator backends.

The paper hard-wires one offload target (the FCAE pipeline); LUDA shows
a second accelerator shape with a different cost profile.  This module
extracts the executor behind :class:`repro.host.scheduler.CompactionScheduler`
into an :class:`AcceleratorBackend` interface with three registered
implementations:

``cpu``
    The streaming software merge (`repro.lsm.compaction.compact`, or the
    partitioned sub-compaction splice when configured) — always capable,
    and the terminal fallback target for faulting accelerators.
``fpga-sim``
    The existing pipeline-sim device (`repro.host.device.FcaeDevice`),
    capability-limited by the engine's input-stream count.
``batch``
    The LUDA-style vectorized batched merge
    (`repro.host.batch_merge.BatchMergeEngine`).

Each backend carries a wall-clock cost model
(:mod:`repro.fpga.cost_model`) estimating how long *this process* would
take to run a task, so ``Options.accelerator = "auto"`` can route each
:class:`~repro.lsm.version.CompactionSpec` to the argmin-cost backend.
All backends produce byte-identical output tables for the same inputs —
routing is purely a performance decision, never a correctness one.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.fpga.cost_model import (
    BatchCostModel,
    CPU_WALL_MODEL,
    FPGA_SIM_WALL_MODEL,
    WallCostModel,
    estimate_pairs,
)
from repro.host.batch_merge import BatchMergeEngine
from repro.host.device import FcaeDevice
from repro.lsm.compaction import (
    OutputTable,
    compact,
    make_compaction_sources,
)
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.version import CompactionSpec
from repro.sim.cpu import CpuCostModel


@dataclass
class BackendResult:
    """What one backend execution hands back to the scheduler."""

    outputs: list[OutputTable]
    #: Input bytes actually consumed (marshalled bytes for devices,
    #: ``spec.total_input_bytes`` for in-process merges).
    input_bytes: int
    #: Wall-clock seconds the backend spent executing.
    wall_seconds: float
    #: Modeled per-phase attribution folded into
    #: ``scheduler_phase_seconds_total`` (marshal/pcie_in/kernel/
    #: pcie_out for the device, software/batch for host merges).
    phase_seconds: dict[str, float] = field(default_factory=dict)


class AcceleratorBackend(ABC):
    """One compaction executor the scheduler can route a task to."""

    #: Registry key, ``Options.accelerator`` value and metric label.
    name: str

    def can_run(self, spec: CompactionSpec) -> bool:
        """Capability check — ``False`` excludes the backend from
        routing for this task (e.g. engine input-count limits)."""
        return True

    @abstractmethod
    def estimate_seconds(self, spec: CompactionSpec) -> float:
        """Predicted wall-clock seconds to execute ``spec`` here."""

    @abstractmethod
    def run(self, spec: CompactionSpec, input_tables: list,
            parent_tables: list, drop_deletions: bool) -> BackendResult:
        """Execute the merge; raises device faults for the scheduler's
        retry/fallback machinery to absorb."""


def _device_streams(spec: CompactionSpec, input_tables: list,
                    parent_tables: list) -> list[list]:
    """Paper §IV step 2: L0 files are separate streams (they overlap),
    sorted-level inputs and parents concatenate into one stream each."""
    if spec.level == 0:
        streams = [[t] for t in input_tables]
    else:
        streams = [input_tables] if input_tables else []
    if parent_tables:
        streams.append(parent_tables)
    return streams


class CpuBackend(AcceleratorBackend):
    """The streaming software merge — the reference executor."""

    name = "cpu"

    def __init__(self, options: Options, comparator: InternalKeyComparator,
                 cpu_model: CpuCostModel,
                 wall_model: WallCostModel = CPU_WALL_MODEL):
        self.options = options
        self.comparator = comparator
        self.cpu_model = cpu_model
        self.wall_model = wall_model

    def estimate_seconds(self, spec: CompactionSpec) -> float:
        pairs = estimate_pairs(spec.total_input_bytes,
                               self.options.key_length,
                               self.options.value_length)
        return self.wall_model.merge_seconds(spec.total_input_bytes, pairs)

    def run(self, spec: CompactionSpec, input_tables: list,
            parent_tables: list, drop_deletions: bool) -> BackendResult:
        start = time.perf_counter()
        if self.options.max_subcompactions > 1:
            from repro.lsm.subcompaction import subcompact

            stats = subcompact(spec.level, input_tables, parent_tables,
                               self.options, self.comparator,
                               drop_deletions)
        else:
            sources = make_compaction_sources(spec.level, input_tables,
                                              parent_tables)
            stats = compact(sources, self.options, self.comparator,
                            drop_deletions)
        wall = time.perf_counter() - start
        # The "software" phase keeps its historical meaning: the *modeled*
        # harness-CPU merge time of the paper's evaluation machine.
        modeled = self.cpu_model.compaction_seconds(
            spec.total_input_bytes,
            self.options.key_length,
            self.options.value_length,
            num_inputs=max(2, spec.fpga_input_count()),
        )
        return BackendResult(outputs=stats.outputs,
                             input_bytes=spec.total_input_bytes,
                             wall_seconds=wall,
                             phase_seconds={"software": modeled})


class FpgaSimBackend(AcceleratorBackend):
    """The paper's FCAE device behind the backend interface."""

    name = "fpga-sim"

    def __init__(self, device: FcaeDevice,
                 wall_model: WallCostModel = FPGA_SIM_WALL_MODEL):
        self.device = device
        self.wall_model = wall_model

    def can_run(self, spec: CompactionSpec) -> bool:
        return spec.fpga_input_count() <= self.device.config.num_inputs

    def estimate_seconds(self, spec: CompactionSpec) -> float:
        options = self.device.options
        pairs = estimate_pairs(spec.total_input_bytes,
                               options.key_length, options.value_length)
        return self.wall_model.merge_seconds(spec.total_input_bytes, pairs)

    def run(self, spec: CompactionSpec, input_tables: list,
            parent_tables: list, drop_deletions: bool) -> BackendResult:
        streams = _device_streams(spec, input_tables, parent_tables)
        start = time.perf_counter()
        result = self.device.compact(streams, drop_deletions)
        wall = time.perf_counter() - start
        return BackendResult(
            outputs=result.outputs,
            input_bytes=result.input_bytes,
            wall_seconds=wall,
            phase_seconds={"marshal": result.host_marshal_seconds,
                           "pcie_in": result.pcie_in_seconds,
                           "kernel": result.kernel_seconds,
                           "pcie_out": result.pcie_out_seconds})


class BatchBackend(AcceleratorBackend):
    """The LUDA-style batched merge behind the backend interface."""

    name = "batch"

    def __init__(self, options: Options, comparator: InternalKeyComparator,
                 cost_model: Optional[BatchCostModel] = None,
                 fault_injector=None,
                 force_fallback: bool = False):
        self.options = options
        self.engine = BatchMergeEngine(options, comparator,
                                       force_fallback=force_fallback)
        self.cost_model = cost_model or BatchCostModel()
        self.fault_injector = fault_injector

    def estimate_seconds(self, spec: CompactionSpec) -> float:
        pairs = estimate_pairs(spec.total_input_bytes,
                               self.options.key_length,
                               self.options.value_length)
        return self.cost_model.merge_seconds(
            spec.total_input_bytes, pairs,
            vectorized=self.engine.vectorized)

    def run(self, spec: CompactionSpec, input_tables: list,
            parent_tables: list, drop_deletions: bool) -> BackendResult:
        if self.fault_injector is not None:
            self.fault_injector.check(spec.total_input_bytes,
                                      backend=self.name)
        streams = _device_streams(spec, input_tables, parent_tables)
        start = time.perf_counter()
        stats = self.engine.compact(streams, drop_deletions)
        wall = time.perf_counter() - start
        return BackendResult(outputs=stats.outputs,
                             input_bytes=spec.total_input_bytes,
                             wall_seconds=wall,
                             phase_seconds={"batch": wall})


def make_backends(device: FcaeDevice, options: Options,
                  comparator: InternalKeyComparator,
                  cpu_model: CpuCostModel,
                  batch_cost_model: Optional[BatchCostModel] = None,
                  batch_force_fallback: bool = False
                  ) -> dict[str, AcceleratorBackend]:
    """The scheduler's standard backend registry.

    The batch backend shares the device's fault injector (when one is
    attached) so a fault schedule exercises every accelerator path.
    """
    return {backend.name: backend for backend in (
        CpuBackend(options, comparator, cpu_model),
        FpgaSimBackend(device),
        BatchBackend(options, comparator, cost_model=batch_cost_model,
                     fault_injector=device.fault_injector,
                     force_fallback=batch_force_fallback),
    )}
