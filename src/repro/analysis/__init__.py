"""Concurrency-contract analyzer: static lint + runtime lock watchdog.

Two halves, one contract:

* :mod:`repro.analysis.lockdiscipline` / :mod:`repro.analysis.contracts`
  — an AST-based static pass that codifies the repo's ``*_locked``
  naming convention and guarded-attribute registry the way Clang's
  thread-safety annotations codify ``GUARDED_BY``, plus repo-wide
  contract lints (metric names must exist in
  :data:`repro.obs.names.FAMILIES`, journal event types must be known
  to ``tools/validate_events.py``, no swallowed ``BaseException`` on
  worker paths).  Run it as ``python -m repro.analysis src/`` or via
  ``tools/lint.py``.
* :mod:`repro.analysis.watchdog` — an opt-in instrumented
  ``Lock``/``RLock``/``Condition`` layer that records the per-thread
  lock-acquisition graph at runtime, flags cycles (potential ABBA
  deadlocks) and long-hold outliers, and reports through the existing
  journal/metrics plumbing.  Enable with ``REPRO_LOCK_WATCHDOG=1`` or
  :func:`repro.analysis.watchdog.enable`.

Only the watchdog is imported eagerly (stdlib-only, zero overhead when
disabled); the static passes import the AST machinery on demand.
"""

from __future__ import annotations

from repro.analysis import watchdog

__all__ = ["watchdog", "run_analysis"]


def run_analysis(paths, strict: bool = False):
    """Run every static pass over ``paths`` (files or directories);
    returns the list of :class:`repro.analysis.findings.Finding`."""
    from repro.analysis.cli import analyze_paths

    return analyze_paths(paths, strict=strict)
