"""Key comparators.

The store orders user keys with a pluggable :class:`Comparator`; the default
is bytewise (memcmp) order, matching LevelDB.  Comparators also provide the
two key-shortening hooks LevelDB uses to keep index blocks small:
``find_shortest_separator`` and ``find_short_successor``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Comparator(ABC):
    """Total order over byte-string user keys."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Identity of the order; persisted and checked when reopening."""

    @abstractmethod
    def compare(self, a: bytes, b: bytes) -> int:
        """Return <0, 0 or >0 as ``a`` sorts before, equal to, after ``b``."""

    def find_shortest_separator(self, start: bytes, limit: bytes) -> bytes:
        """Return a key ``k`` with ``start <= k < limit`` that is as short
        as possible; used for index-block keys.  May return ``start``."""
        return start

    def find_short_successor(self, key: bytes) -> bytes:
        """Return a short key ``k >= key``.  May return ``key``."""
        return key


class BytewiseComparator(Comparator):
    """Lexicographic order on raw bytes — LevelDB's default."""

    @property
    def name(self) -> str:
        return "leveldb.BytewiseComparator"

    def compare(self, a: bytes, b: bytes) -> int:
        if a == b:
            return 0
        return -1 if a < b else 1

    def find_shortest_separator(self, start: bytes, limit: bytes) -> bytes:
        # Shorten `start` to the common prefix plus one incremented byte,
        # provided the result still sorts strictly below `limit`.
        min_len = min(len(start), len(limit))
        shared = 0
        while shared < min_len and start[shared] == limit[shared]:
            shared += 1
        if shared >= min_len:
            # One key is a prefix of the other; no shortening possible.
            return start
        byte = start[shared]
        if byte < 0xFF and byte + 1 < limit[shared]:
            return start[:shared] + bytes([byte + 1])
        return start

    def find_short_successor(self, key: bytes) -> bytes:
        for i, byte in enumerate(key):
            if byte != 0xFF:
                return key[:i] + bytes([byte + 1])
        return key
