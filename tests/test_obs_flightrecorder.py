"""Flight-recorder acceptance: journal replay reproduces the live
registry's per-level write-amplification, ``repro.levelstats`` reports
the amplification table, and windowed percentiles reach the Prometheus
exposition."""

import random

import pytest

from repro.lsm.db import LsmDB
from repro.lsm.options import Options
from repro.obs.events import EventJournal, replay
from repro.obs.exposition import to_prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs import names


def small_options(**overrides):
    return Options(block_size=512, sstable_size=8 * 1024,
                   write_buffer_size=16 * 1024,
                   max_level0_size=64 * 1024, compression="none",
                   **overrides)


def fill(db, entries=4000, key_space=1600, seed=5):
    rng = random.Random(seed)
    for _ in range(entries):
        db.put(f"k{rng.randrange(key_space):08d}".encode(), b"v" * 64)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    names.register_all(registry)
    return registry


class TestStatsReport:
    def test_uptime_segments_and_tenant_ops(self, registry):
        db = LsmDB("repdb", small_options(latency_window_seconds=60.0,
                                          event_journal=True),
                   metrics=registry)
        db.put(b"a", b"1", tenant="gold")
        db.put(b"b", b"2", tenant="batch")
        db.get(b"a", tenant="gold")
        report = db.property("repro.stats")
        assert "uptime_seconds:" in report
        assert "journal_segments: 1" in report
        assert "tenant ops:" in report
        assert "gold/put" in report
        assert "gold/get" in report
        # a put is also a write at the batch layer, and both are
        # attributed to the tenant
        counts = db.tenant_op_counts()
        assert counts["gold"] == {"write": 1, "put": 1, "get": 1}
        assert counts["batch"] == {"write": 1, "put": 1}

    def test_untenanted_db_omits_tenant_block(self, registry):
        db = LsmDB("plaindb", small_options(), metrics=registry)
        db.put(b"a", b"1")
        report = db.property("repro.stats")
        assert "uptime_seconds:" in report
        assert "journal_segments: 0" in report
        assert "tenant ops:" not in report


class TestReplayEqualsLiveRegistry:
    def test_fillrandom_with_background_compaction(self, registry):
        journal = EventJournal(keep_events=True)
        db = LsmDB("wadb", small_options(), metrics=registry,
                   events=journal, auto_compact=False,
                   background_compaction=True, num_units=2)
        fill(db)
        db.compact_range()

        live_total = db.stats.write_amplification
        live_levels = {row["level"]: row["write_amp"]
                       for row in db.level_amplification()
                       if row["write_amp"]}
        level_bytes = {row["level"]: row["write_bytes"]
                       for row in db.level_amplification()}
        db.close()

        summary = replay(journal.events)
        assert summary.compactions > 0 and summary.flushes > 0
        assert summary.write_amplification == pytest.approx(
            live_total, abs=1e-9)
        replayed = {level: amp
                    for level, amp in summary.per_level_write_amp().items()
                    if amp}
        assert replayed == pytest.approx(live_levels)
        # The byte-level accounting matches the registry counters too.
        for level, amp_bytes in summary.level_write_bytes.items():
            assert amp_bytes == level_bytes[level]

    def test_replay_matches_synchronous_compaction(self, registry):
        journal = EventJournal(keep_events=True)
        db = LsmDB("syncdb", small_options(), metrics=registry,
                   events=journal)
        fill(db, entries=2500)
        db.flush()
        db.close()
        summary = replay(journal.events)
        assert summary.write_amplification == pytest.approx(
            db.stats.write_amplification, abs=1e-9)


class TestLevelStatsProperty:
    def test_table_reports_per_level_amplification(self, registry):
        db = LsmDB("statsdb", small_options(), metrics=registry)
        fill(db, entries=3000)
        db.flush()
        text = db.property("repro.levelstats")
        assert text is not None
        rows = db.level_amplification()

        assert "W-Amp" in text and "S-Amp" in text and "R-Amp" in text
        for level, row in enumerate(rows):
            assert f"level {level}   {row['files']:5d}" in text
            if row["files"]:
                assert f"{row['write_amp']:8.3f}" in text
        assert f"write_amplification: " \
               f"{db.stats.write_amplification:.3f}" in text
        db.close()

    def test_rows_cover_all_levels_and_definitions(self, registry):
        db = LsmDB("ampdb", small_options(), metrics=registry)
        fill(db, entries=3000)
        db.flush()
        rows = db.level_amplification()
        assert [row["level"] for row in rows] == list(range(len(rows)))
        sizes = [row["bytes"] for row in rows]
        last = next((s for s in reversed(sizes) if s), 0)
        for row in rows:
            if row["bytes"]:
                assert row["space_amp"] == pytest.approx(
                    row["bytes"] / last)
            if row["level"] == 0:
                assert row["read_amp"] == row["files"]
        db.close()

    def test_amp_gauges_land_in_registry(self, registry):
        db = LsmDB("gaugedb", small_options(), metrics=registry)
        fill(db, entries=3000)
        db.flush()
        db.compact_range()
        text = to_prometheus_text(registry)
        assert 'lsm_level_write_amp{' in text
        l0 = next(line for line in text.splitlines()
                  if line.startswith("lsm_level_write_amp")
                  and 'level="0"' in line)
        row0 = db.level_amplification()[0]
        assert float(l0.split()[-1]) == pytest.approx(row0["write_amp"])
        db.close()


class TestWindowedExposition:
    def test_windowed_p99_in_prometheus_text(self, registry):
        db = LsmDB("windb", small_options(latency_window_seconds=60.0),
                   metrics=registry)
        fill(db, entries=1500)
        for i in range(200):
            db.put(f"g{i:08d}".encode(), b"v" * 64)
            db.get(f"g{i:08d}".encode())
        text = to_prometheus_text(registry)
        lines = [line for line in text.splitlines()
                 if line.startswith("lsm_op_latency_window_seconds")]
        ops = {op for op in ("get", "put", "write")
               if any(f'op="{op}"' in line for line in lines)}
        assert ops == {"get", "put", "write"}
        p99_put = next(line for line in lines
                       if 'op="put"' in line and 'quantile="p99"' in line)
        assert float(p99_put.split()[-1]) > 0.0
        db.close()
