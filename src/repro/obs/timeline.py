"""Event-level timeline: bounded-memory intervals + Chrome trace export.

Where :mod:`repro.obs.tracing` records coarse host *phases* (one span per
compaction), this module records the pipeline's *concurrency structure*:
one interval per decode, Comparer round, value-path move and block flush,
plus counter series for KV-FIFO occupancy.  The export is the Chrome
trace-event JSON format, loadable in Perfetto or ``chrome://tracing``,
with one process per domain (``host``, ``fpga``) and one thread track
per pipeline module (``decoder[i]``, ``comparer``, ``value_bus``,
``encoder``, ``writer``, ``kernel``) or host phase (``scheduler``,
``pcie``).

All timestamps are **microseconds of modeled time**.  Producers convert
their own clocks: the pipeline simulator maps cycles at the configured
engine clock (``us = cycles / clock_mhz``), the host cost models map
modeled seconds (``us = seconds * 1e6``).  A shared monotonic *cursor*
stitches consecutive kernel runs and host phases into one contiguous
timeline: each producer starts its intervals at :attr:`cursor_us` and
calls :meth:`advance_to` when done.

Memory is bounded by ``max_events``: once full, further events are
dropped (counted in :attr:`dropped_events` and surfaced in the exported
trace metadata) rather than growing without limit, so tracing a long
benchmark run cannot exhaust the host.
"""

from __future__ import annotations

import json
import threading
from typing import Optional

#: Default event capacity (~tens of MB of JSON when fully exported).
DEFAULT_MAX_EVENTS = 250_000

_INTERVAL = 0
_COUNTER = 1


class TimelineRecorder:
    """Accumulates intervals and counter samples on named tracks.

    A track is addressed as ``(process, track)`` — e.g. ``("fpga",
    "decoder[0]")`` or ``("host", "pcie")``.  Counter series are
    addressed as ``(process, series)`` and render as Chrome counter
    tracks.  Thread-safe; producers only ever append.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.dropped_events = 0
        self._events: list[tuple] = []
        self._cursor_us = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cursor — the shared modeled clock
    # ------------------------------------------------------------------

    @property
    def cursor_us(self) -> float:
        """End of the last scheduled work on the modeled timeline; the
        origin for the next kernel run or host phase."""
        return self._cursor_us

    def advance_to(self, t_us: float) -> None:
        """Move the cursor forward (never backward)."""
        with self._lock:
            if t_us > self._cursor_us:
                self._cursor_us = t_us

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def interval(self, process: str, track: str, name: str,
                 start_us: float, end_us: float,
                 args: Optional[dict] = None) -> None:
        """One completed occupancy interval on ``(process, track)``."""
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped_events += 1
                return
            self._events.append(
                (_INTERVAL, process, track, name, start_us, end_us, args))

    def counter(self, process: str, series: str, ts_us: float,
                value: float) -> None:
        """One sample of a counter series (FIFO occupancy)."""
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped_events += 1
                return
            self._events.append(
                (_COUNTER, process, series, None, ts_us, ts_us, value))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def intervals(self, process: Optional[str] = None,
                  track: Optional[str] = None) -> list[tuple]:
        """``(process, track, name, start_us, end_us, args)`` tuples,
        optionally filtered; counter samples are excluded."""
        with self._lock:
            return [event[1:] for event in self._events
                    if event[0] == _INTERVAL
                    and (process is None or event[1] == process)
                    and (track is None or event[2] == track)]

    def span_us(self) -> tuple[float, float]:
        """``(first_start, last_end)`` over all recorded events."""
        with self._lock:
            if not self._events:
                return (0.0, 0.0)
            return (min(e[4] for e in self._events),
                    max(e[5] for e in self._events))

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Render as a Chrome trace-event JSON object.

        Intervals become complete events (``"ph": "X"``), counter
        samples become counter events (``"ph": "C"``); process and
        thread metadata events name the tracks.  Events are sorted by
        timestamp so every track is monotonic.
        """
        with self._lock:
            events = list(self._events)
            dropped = self.dropped_events

        pids: dict[str, int] = {}
        tids: dict[tuple[str, str], int] = {}
        trace_events: list[dict] = []

        def pid_for(process: str) -> int:
            pid = pids.get(process)
            if pid is None:
                pid = pids[process] = len(pids) + 1
                trace_events.append({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": process}})
            return pid

        def tid_for(process: str, track: str) -> int:
            key = (process, track)
            tid = tids.get(key)
            if tid is None:
                tid = tids[key] = sum(
                    1 for p, _ in tids if p == process) + 1
                trace_events.append({
                    "name": "thread_name", "ph": "M",
                    "pid": pid_for(process), "tid": tid,
                    "args": {"name": track}})
            return tid

        body: list[dict] = []
        for kind, process, track, name, start, end, payload in events:
            pid = pid_for(process)
            if kind == _INTERVAL:
                event = {
                    "name": name, "ph": "X", "pid": pid,
                    "tid": tid_for(process, track),
                    "ts": start, "dur": end - start,
                }
                if payload:
                    event["args"] = payload
            else:
                event = {
                    "name": track, "ph": "C", "pid": pid, "tid": 0,
                    "ts": start, "args": {"value": payload},
                }
            body.append(event)
        body.sort(key=lambda e: (e["ts"], e.get("dur", 0.0)))

        trace: dict = {
            "traceEvents": trace_events + body,
            "displayTimeUnit": "ms",
        }
        if dropped:
            trace["otherData"] = {"dropped_events": dropped}
        return trace

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")
