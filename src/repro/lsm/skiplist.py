"""Probabilistic skiplist, the memtable's ordered index.

Same structure LevelDB uses (and the paper's Fig 1 shows for the
MemTable): a multi-level linked list where each node's tower height is
geometric with branching factor 4.  Insertion and search are O(log n)
expected.  The implementation is deterministic given the seed, which keeps
tests and the simulators reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "next")

    def __init__(self, key: Optional[bytes], height: int):
        self.key = key
        self.next: list[Optional[_Node]] = [None] * height


class SkipList:
    """Ordered set of byte-string keys.

    ``compare(a, b)`` must return <0/0/>0.  Duplicate inserts raise
    ``ValueError`` — the memtable guarantees uniqueness by embedding the
    sequence number in each key.
    """

    def __init__(self, compare: Callable[[bytes, bytes], int], seed: int = 0xDECAF):
        self._compare = compare
        self._head = _Node(None, MAX_HEIGHT)
        self._max_height = 1
        self._random = random.Random(seed)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < MAX_HEIGHT and self._random.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _key_is_after_node(self, key: bytes, node: Optional[_Node]) -> bool:
        return node is not None and self._compare(node.key, key) < 0

    def _find_greater_or_equal(
            self, key: bytes, prev: Optional[list[_Node]] = None) -> Optional[_Node]:
        node = self._head
        level = self._max_height - 1
        while True:
            nxt = node.next[level]
            if self._key_is_after_node(key, nxt):
                node = nxt
            else:
                if prev is not None:
                    prev[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def insert(self, key: bytes) -> None:
        """Insert ``key``; raises ``ValueError`` if it is already present."""
        prev: list[_Node] = [self._head] * MAX_HEIGHT
        node = self._find_greater_or_equal(key, prev)
        if node is not None and self._compare(node.key, key) == 0:
            raise ValueError("duplicate key inserted into skiplist")
        height = self._random_height()
        if height > self._max_height:
            for level in range(self._max_height, height):
                prev[level] = self._head
            self._max_height = height
        new_node = _Node(key, height)
        for level in range(height):
            new_node.next[level] = prev[level].next[level]
            prev[level].next[level] = new_node
        self._size += 1

    def contains(self, key: bytes) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and self._compare(node.key, key) == 0

    def seek(self, key: bytes) -> Optional[bytes]:
        """Smallest stored key >= ``key``, or ``None``."""
        node = self._find_greater_or_equal(key)
        return node.key if node is not None else None

    def __iter__(self) -> Iterator[bytes]:
        node = self._head.next[0]
        while node is not None:
            yield node.key
            node = node.next[0]

    def iter_from(self, key: bytes) -> Iterator[bytes]:
        """Iterate keys >= ``key`` in order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key
            node = node.next[0]

    def first(self) -> Optional[bytes]:
        node = self._head.next[0]
        return node.key if node is not None else None

    def last(self) -> Optional[bytes]:
        node = self._head
        level = self._max_height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None:
                node = nxt
            elif level == 0:
                return node.key if node is not self._head else None
            else:
                level -= 1
