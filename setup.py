from setuptools import setup

# Metadata lives in pyproject.toml; this shim exists because the build
# environment has no `wheel` package for PEP 660 editable installs.
setup(
    entry_points={
        "console_scripts": [
            "fcae-bench = repro.bench.cli:main",
        ],
    },
)
