"""MemTable semantics: versions, tombstones, snapshots, iteration."""

import pytest

from repro.errors import NotFoundError
from repro.lsm.internal import InternalKeyComparator, extract_user_key
from repro.lsm.memtable import MemTable
from repro.util.comparator import BytewiseComparator


@pytest.fixture
def memtable():
    return MemTable(InternalKeyComparator(BytewiseComparator()))


class TestPutGet:
    def test_get_missing_returns_none(self, memtable):
        assert memtable.get(b"nope", 100) is None

    def test_put_then_get(self, memtable):
        memtable.put(1, b"k", b"v")
        assert memtable.get(b"k", 100) == b"v"

    def test_newest_version_wins(self, memtable):
        memtable.put(1, b"k", b"old")
        memtable.put(2, b"k", b"new")
        assert memtable.get(b"k", 100) == b"new"

    def test_snapshot_isolation(self, memtable):
        memtable.put(1, b"k", b"old")
        memtable.put(5, b"k", b"new")
        assert memtable.get(b"k", 1) == b"old"
        assert memtable.get(b"k", 4) == b"old"
        assert memtable.get(b"k", 5) == b"new"

    def test_delete_raises_not_found(self, memtable):
        memtable.put(1, b"k", b"v")
        memtable.delete(2, b"k")
        with pytest.raises(NotFoundError):
            memtable.get(b"k", 100)

    def test_delete_then_old_snapshot_still_sees_value(self, memtable):
        memtable.put(1, b"k", b"v")
        memtable.delete(2, b"k")
        assert memtable.get(b"k", 1) == b"v"

    def test_reinsert_after_delete(self, memtable):
        memtable.put(1, b"k", b"v1")
        memtable.delete(2, b"k")
        memtable.put(3, b"k", b"v2")
        assert memtable.get(b"k", 100) == b"v2"

    def test_prefix_keys_do_not_collide(self, memtable):
        memtable.put(1, b"ab", b"1")
        memtable.put(2, b"abc", b"2")
        assert memtable.get(b"ab", 100) == b"1"
        assert memtable.get(b"abc", 100) == b"2"


class TestIteration:
    def test_sorted_by_user_key_then_sequence_desc(self, memtable):
        memtable.put(1, b"b", b"b1")
        memtable.put(2, b"a", b"a1")
        memtable.put(3, b"a", b"a2")
        entries = list(memtable)
        user_keys = [extract_user_key(k) for k, _ in entries]
        assert user_keys == [b"a", b"a", b"b"]
        assert entries[0][1] == b"a2"  # newer version first
        assert entries[1][1] == b"a1"

    def test_len_counts_all_versions(self, memtable):
        memtable.put(1, b"k", b"1")
        memtable.put(2, b"k", b"2")
        assert len(memtable) == 2


class TestMemoryAccounting:
    def test_usage_grows(self, memtable):
        before = memtable.approximate_memory_usage
        memtable.put(1, b"key", b"x" * 100)
        assert memtable.approximate_memory_usage > before + 100

    def test_empty_usage_zero(self, memtable):
        assert memtable.approximate_memory_usage == 0
