"""CRC32C (Castagnoli) with LevelDB's masking.

LevelDB stores CRCs *masked* — rotated and offset — so that computing the
CRC of a string that already contains an embedded CRC does not degrade the
checksum.  The polynomial here is the Castagnoli polynomial 0x1EDC6F41
(reflected form 0x82F63B78), the same one used by LevelDB/RocksDB, iSCSI
and ext4.

Three update paths share the same byte-table semantics and are verified
against the same golden vectors:

* tiny inputs (< ``_BULK_MIN`` bytes) use the classic byte-at-a-time
  loop — lowest constant cost;
* with numpy available, larger inputs use a *contribution table*: CRC is
  GF(2)-linear, so ``raw(M) = XOR_i F[n-1-i][M[i]]`` where ``F[d][b]`` is
  the state contribution of byte ``b`` followed by ``d`` zero bytes.  One
  fancy-index gather plus an XOR reduction handles a whole 4 KB chunk,
  and the running state is carried across chunks through the same table
  (``shift_m(c)`` decomposes over the four state bytes into rows
  ``m-1..m-4`` of ``F``);
* otherwise a pure-Python slice-by-8 loop over 64-bit words with paired
  16-bit tables (four 64 Ki-entry tables, two message bytes per lookup).

All tables are built lazily on first bulk use, so importing this module
stays cheap for callers that only checksum short records.
"""

from __future__ import annotations

import struct

_POLY = 0x82F63B78
_MASK_DELTA = 0xA282EAD8
_U32 = 0xFFFFFFFF

#: Inputs shorter than this use the byte-at-a-time loop: below ~64 bytes
#: the bulk paths' fixed setup cost exceeds the per-byte savings.
_BULK_MIN = 64

#: Chunk length of the numpy contribution table (rows = zero-distance).
_CHUNK = 4096

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()

# Lazily built bulk-path state (see _ensure_numpy_tables / _ensure_slice8).
_F = None           # numpy (CHUNK, 256) contribution table
_IDX_DESC = None    # numpy arange(CHUNK-1, -1, -1) for row gathers
_SLICE8 = None      # four 64 Ki-entry paired-byte tables
_STEP8 = struct.Struct("<Q")


def _ensure_numpy_tables() -> None:
    global _F, _IDX_DESC
    if _F is not None:
        return
    t0 = _np.array(_TABLE, dtype=_np.uint32)
    table = _np.empty((_CHUNK, 256), dtype=_np.uint32)
    table[0] = t0
    eight = _np.uint32(8)
    for distance in range(1, _CHUNK):
        prev = table[distance - 1]
        table[distance] = t0[prev & 0xFF] ^ (prev >> eight)
    _IDX_DESC = _np.arange(_CHUNK - 1, -1, -1)
    _F = table


def _ensure_slice8() -> None:
    global _SLICE8
    if _SLICE8 is not None:
        return
    # tables[k][b] = contribution of byte b followed by k zero bytes.
    tables = [_TABLE]
    for _ in range(7):
        prev = tables[-1]
        tables.append([_TABLE[v & 0xFF] ^ (v >> 8) for v in prev])
    t0, t1, t2, t3, t4, t5, t6, t7 = tables
    # Pair adjacent byte tables into 16-bit-indexed tables so one lookup
    # covers two message bytes.
    _SLICE8 = (
        [t7[w & 0xFF] ^ t6[w >> 8] for w in range(65536)],
        [t5[w & 0xFF] ^ t4[w >> 8] for w in range(65536)],
        [t3[w & 0xFF] ^ t2[w >> 8] for w in range(65536)],
        [t1[w & 0xFF] ^ t0[w >> 8] for w in range(65536)],
    )


def _crc_bytes(data, crc: int) -> int:
    """Byte-at-a-time state update (``crc`` already init-XORed)."""
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc


def _crc_numpy(data, crc: int) -> int:
    _ensure_numpy_tables()
    arr = _np.frombuffer(data, dtype=_np.uint8)
    table, idx_desc = _F, _IDX_DESC
    n = len(arr)
    pos = 0
    while pos < n:
        length = min(_CHUNK, n - pos)
        chunk = arr[pos:pos + length]
        if length < 4:
            # Too short for the 4-row shift decomposition below.
            return _crc_bytes(chunk.tolist(), crc)
        # raw contribution of this chunk: one gather + one XOR reduce.
        raw = int(_np.bitwise_xor.reduce(
            table[idx_desc[_CHUNK - length:], chunk]))
        # Carry the running state across `length` bytes: shift_m over the
        # four state bytes maps to rows m-1..m-4 (length >= _BULK_MIN).
        crc = (int(table[length - 1, crc & 0xFF])
               ^ int(table[length - 2, (crc >> 8) & 0xFF])
               ^ int(table[length - 3, (crc >> 16) & 0xFF])
               ^ int(table[length - 4, crc >> 24])
               ^ raw)
        pos += length
    return crc


def _crc_slice8(data, crc: int) -> int:
    _ensure_slice8()
    v3, v2, v1, v0 = _SLICE8
    view = memoryview(data)
    n8 = len(view) - (len(view) % 8)
    for (word,) in _STEP8.iter_unpack(view[:n8]):
        x = word ^ crc
        crc = (v3[x & 0xFFFF] ^ v2[(x >> 16) & 0xFFFF]
               ^ v1[(x >> 32) & 0xFFFF] ^ v0[x >> 48])
    return _crc_bytes(view[n8:], crc)


def crc32c(data, value: int = 0) -> int:
    """Return the CRC32C of ``data``, extending a running ``value``.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview`` — no
    copies are made on any path.
    """
    crc = value ^ _U32
    if len(data) < _BULK_MIN:
        crc = _crc_bytes(data, crc)
    elif _np is not None:
        crc = _crc_numpy(data, crc)
    else:
        crc = _crc_slice8(data, crc)
    return crc ^ _U32


def mask_crc(crc: int) -> int:
    """Mask a raw CRC for storage (LevelDB's ``crc32c::Mask``)."""
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & _U32


def unmask_crc(masked: int) -> int:
    """Invert :func:`mask_crc`."""
    rot = (masked - _MASK_DELTA) & _U32
    return ((rot >> 17) | (rot << 15)) & _U32
