"""Options validation and derived level budgets."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm.options import (
    L0_COMPACTION_TRIGGER,
    L0_SLOWDOWN_TRIGGER,
    L0_STOP_TRIGGER,
    Options,
)


class TestDefaults:
    def test_paper_table_iv(self):
        options = Options()
        assert options.key_length == 16
        assert options.value_length == 128
        assert options.leveling_ratio == 10
        assert options.block_size == 4096

    def test_leveldb_constants(self):
        assert L0_COMPACTION_TRIGGER == 4
        assert L0_SLOWDOWN_TRIGGER == 8
        assert L0_STOP_TRIGGER == 12
        options = Options()
        assert options.sstable_size == 2 * 1024 * 1024
        assert options.write_buffer_size == 4 * 1024 * 1024


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(InvalidArgumentError):
            Options(key_length=0)

    def test_negative_value_length(self):
        with pytest.raises(InvalidArgumentError):
            Options(value_length=-1)

    def test_bad_ratio(self):
        with pytest.raises(InvalidArgumentError):
            Options(leveling_ratio=1)

    def test_tiny_block(self):
        with pytest.raises(InvalidArgumentError):
            Options(block_size=32)

    def test_sstable_smaller_than_block(self):
        with pytest.raises(InvalidArgumentError):
            Options(block_size=8192, sstable_size=4096)

    def test_bad_restart_interval(self):
        with pytest.raises(InvalidArgumentError):
            Options(block_restart_interval=0)

    def test_unknown_compression(self):
        with pytest.raises(InvalidArgumentError):
            Options(compression="lz4")

    def test_zero_value_length_ok(self):
        Options(value_length=0)


class TestLevelBudgets:
    def test_geometric_growth(self):
        options = Options(max_level0_size=10 << 20, leveling_ratio=10)
        assert options.max_bytes_for_level(1) == 10 << 20
        assert options.max_bytes_for_level(2) == 100 << 20
        assert options.max_bytes_for_level(3) == 1000 << 20

    def test_ratio_knob(self):
        options = Options(max_level0_size=10 << 20, leveling_ratio=4)
        assert (options.max_bytes_for_level(2)
                == 4 * options.max_bytes_for_level(1))

    def test_level_zero_has_no_byte_budget(self):
        with pytest.raises(InvalidArgumentError):
            Options().max_bytes_for_level(0)
