"""Virtual clock and event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import EventQueue, VirtualClock


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_by(2.0)
        assert clock.now == 7.0

    def test_backwards_rejected(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance_by(-1.0)


class TestEventQueue:
    def test_events_in_time_order(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        order = []
        queue.schedule(3.0, lambda: order.append("c"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(2.0, lambda: order.append("b"))
        queue.run_until_empty()
        assert order == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_tie_break_by_schedule_order(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        order = []
        queue.schedule(1.0, lambda: order.append("first"))
        queue.schedule(1.0, lambda: order.append("second"))
        queue.run_until_empty()
        assert order == ["first", "second"]

    def test_schedule_after(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        queue = EventQueue(clock)
        fired = []
        queue.schedule_after(5.0, lambda: fired.append(clock.now))
        queue.run_until_empty()
        assert fired == [15.0]

    def test_past_scheduling_rejected(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        queue = EventQueue(clock)
        with pytest.raises(SimulationError):
            queue.schedule(5.0, lambda: None)

    def test_cascading_events(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        hits = []

        def recurse(depth):
            hits.append(clock.now)
            if depth < 3:
                queue.schedule_after(1.0, lambda: recurse(depth + 1))

        queue.schedule(0.0, lambda: recurse(0))
        executed = queue.run_until_empty()
        assert executed == 4
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_runaway_guard(self):
        clock = VirtualClock()
        queue = EventQueue(clock)

        def forever():
            queue.schedule_after(0.001, forever)

        queue.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            queue.run_until_empty(max_events=100)
