"""Property and type-mix tests for the zero-copy hot paths.

The codec overhaul made ``decode_varint32/64``, ``VarintCursor``, and
``Block`` operate directly on ``memoryview``/``bytearray`` slices
without materializing ``bytes``.  These tests hold that contract:

* seeded/Hypothesis round-trips for varints (both widths, boundary
  values, concatenated streams walked by cursor and by offset);
* block codec round-trips including the prefix-compression edge cases —
  empty key, shared prefix longer than a restart interval's worth of
  deltas, zero-length values;
* sstable build -> iterate round-trips driven by the same generators;
* every decoder accepts bytes, bytearray, and memoryview (including
  non-zero-offset slices) and yields identical results.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator
from repro.util.varint import (
    VarintCursor,
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
)

from tests.conftest import build_table_image

ICMP = InternalKeyComparator(BytewiseComparator())
CMP = BytewiseComparator()

#: The three buffer types every decoder must treat identically.
BUFFER_KINDS = [bytes, bytearray, memoryview]


def kinds_of(data: bytes):
    return [bytes(data), bytearray(data), memoryview(data)]


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------

_BOUNDARY_VALUES = sorted({0, 1, 127, 128, (1 << 14) - 1, 1 << 14,
                           (1 << 21) - 1, 1 << 21, (1 << 28) - 1, 1 << 28,
                           (1 << 32) - 1, (1 << 35) - 1, 1 << 35,
                           (1 << 56) - 1, (1 << 64) - 1})


class TestVarintRoundTrip:
    @pytest.mark.parametrize("value", _BOUNDARY_VALUES)
    def test_boundary_values(self, value):
        encoded = encode_varint64(value)
        for buf in kinds_of(encoded):
            assert decode_varint64(buf) == (value, len(encoded))
        if value < (1 << 32):
            encoded32 = encode_varint32(value)
            for buf in kinds_of(encoded32):
                assert decode_varint32(buf) == (value, len(encoded32))

    @given(st.lists(st.integers(0, (1 << 64) - 1), min_size=1,
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_concatenated_stream(self, values):
        stream = b"".join(encode_varint64(v) for v in values)
        for buf in kinds_of(stream):
            offset = 0
            decoded = []
            while offset < len(stream):
                value, offset = decode_varint64(buf, offset)
                decoded.append(value)
            assert decoded == values

    @given(st.lists(st.integers(0, (1 << 64) - 1), min_size=1,
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_cursor_matches_offset_walk(self, values):
        stream = b"".join(encode_varint64(v) for v in values)
        for buf in kinds_of(stream):
            cursor = VarintCursor(buf)
            assert [cursor.next64() for _ in values] == values
            assert cursor.at_end

    def test_cursor_skip_and_mixed_widths(self):
        rng = random.Random(99)
        parts, expect = [], []
        for _ in range(300):
            width = rng.choice((32, 64))
            value = rng.randrange(1 << (28 if width == 32 else 56))
            payload = bytes(rng.randrange(256)
                            for _ in range(rng.randrange(0, 5)))
            parts.append((encode_varint32(value) if width == 32
                          else encode_varint64(value)) + payload)
            expect.append((width, value, len(payload)))
        stream = b"".join(parts)
        for buf in kinds_of(stream):
            cursor = VarintCursor(buf)
            for width, value, skip in expect:
                got = cursor.next32() if width == 32 else cursor.next64()
                assert got == value
                cursor.skip(skip)
            assert cursor.at_end

    def test_nonzero_offset_slices(self):
        """Decoding from a sliced memoryview must match decoding the
        same varint at an offset of the full buffer."""
        value = 123456789
        stream = b"\xff" * 7 + encode_varint64(value)
        full = memoryview(stream)
        assert decode_varint64(full, 7)[0] == value
        assert decode_varint64(full[7:], 0)[0] == value


# ----------------------------------------------------------------------
# Block codec
# ----------------------------------------------------------------------

def _round_trip(entries, restart_interval):
    builder = BlockBuilder(restart_interval)
    for key, value in entries:
        builder.add(key, value)
    image = builder.finish()
    for buf in kinds_of(image):
        assert list(Block(buf)) == entries
    return image


class TestBlockRoundTrip:
    def test_empty_key(self):
        """An empty first key yields a zero-length restart key; every
        later entry shares a 0-byte prefix with it."""
        entries = [(b"", b"root"), (b"a", b"1"), (b"ab", b"2")]
        _round_trip(entries, restart_interval=16)

    def test_zero_length_values(self):
        entries = [(b"k%03d" % i, b"") for i in range(50)]
        _round_trip(entries, restart_interval=4)

    def test_shared_prefix_longer_than_restart_interval(self):
        """A run of keys sharing a long prefix spans several restart
        intervals, so restarts re-emit the full key mid-run."""
        prefix = b"shared/prefix/longer/than/one/interval/"
        entries = [(prefix + b"%04d" % i, b"v%d" % i) for i in range(40)]
        image = _round_trip(entries, restart_interval=4)
        block = Block(image)
        for key, value in entries:
            assert block.seek(key, CMP) == (key, value)

    @given(st.sets(st.binary(max_size=48), min_size=1, max_size=150),
           st.sampled_from([1, 2, 4, 16]))
    @settings(max_examples=60, deadline=None)
    def test_random_entries(self, keys, restart_interval):
        entries = [(key, key[::-1]) for key in sorted(keys)]
        image = _round_trip(entries, restart_interval)
        block = Block(image)
        for key, value in random.Random(0).sample(
                entries, min(10, len(entries))):
            assert block.seek(key, CMP) == (key, value)

    def test_iter_from_on_all_buffer_kinds(self):
        entries = [(b"key%04d" % i, b"v" * (i % 7)) for i in range(100)]
        builder = BlockBuilder(8)
        for key, value in entries:
            builder.add(key, value)
        image = builder.finish()
        for buf in kinds_of(image):
            tail = list(Block(buf).iter_from(b"key0050", CMP))
            assert tail == entries[50:]


# ----------------------------------------------------------------------
# SSTable build -> iterate
# ----------------------------------------------------------------------

_user_keys = st.sets(st.binary(min_size=1, max_size=24), min_size=1,
                     max_size=100)


class TestSstableRoundTrip:
    @given(_user_keys, st.sampled_from(["snappy", "none"]))
    @settings(max_examples=40, deadline=None)
    def test_build_iterate(self, keys, compression):
        options = Options(block_size=256, sstable_size=1 << 20,
                          compression=compression, bloom_bits_per_key=10,
                          block_restart_interval=4)
        entries = [(encode_internal_key(user, seq, TYPE_VALUE),
                    user * (seq % 4))
                   for seq, user in enumerate(sorted(keys), start=1)]
        image = build_table_image(entries, options, ICMP)
        reader = TableReader(image, ICMP, options)
        assert list(reader) == entries

    def test_reader_accepts_all_buffer_kinds(self):
        options = Options(compression="none", bloom_bits_per_key=0,
                          block_size=512, sstable_size=1 << 20)
        entries = [(encode_internal_key(b"key%05d" % i, i + 1, TYPE_VALUE),
                    b"value" * 3) for i in range(200)]
        image = build_table_image(entries, options, ICMP)
        for buf in kinds_of(image):
            assert list(TableReader(buf, ICMP, options)) == entries
