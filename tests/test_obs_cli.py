"""End-to-end observability through the CLIs (the ISSUE's acceptance
check): ``--metrics-out`` dumps parse, advertise all subsystem families,
and trace spans nest with phase totals matching the metrics; the
event-timeline flags (``--chrome-trace``/``--profile``/``--bench-json``)
produce valid artifacts that the tools under ``tools/`` accept."""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.cli import main as bench_main
from repro.lsm.cli import main as lsm_main
from repro.obs.exposition import parse_prometheus_text
from repro.obs.tracing import read_jsonl

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_tool(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", name), *args],
        capture_output=True, text=True)


@pytest.fixture(scope="module")
def fig12_outputs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fig12obs")
    metrics_path = str(tmp / "m.prom")
    trace_path = str(tmp / "t.jsonl")
    assert bench_main(["fig12", "--scale", "0.05",
                       "--metrics-out", metrics_path,
                       "--trace-out", trace_path]) == 0
    return metrics_path, trace_path


class TestBenchAcceptance:
    def test_metrics_dump_parses_with_all_families(self, fig12_outputs):
        metrics_path, _ = fig12_outputs
        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        families = parsed["families"]
        for prefix in ("lsm_", "scheduler_", "fpga_pipeline_"):
            assert any(name.startswith(prefix) for name in families), prefix
        assert parsed["samples"]["fpga_pipeline_runs_total"][()] > 0

    def test_trace_spans_nest(self, fig12_outputs):
        _, trace_path = fig12_outputs
        events = read_jsonl(trace_path)
        assert events, "trace is empty"
        by_id = {e["id"]: e for e in events}
        compactions = [e for e in events if e["name"] == "compaction"]
        assert compactions
        kernels = [e for e in events if e["name"] == "phase:kernel"]
        assert kernels
        for kernel in kernels:
            assert by_id[kernel["parent"]]["name"] == "compaction"

    def test_phase_totals_match_metrics_within_1pct(self, fig12_outputs):
        metrics_path, trace_path = fig12_outputs
        events = read_jsonl(trace_path)
        traced = sum(e["sim_seconds"] for e in events
                     if e["name"] == "phase:kernel")
        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        reported = sum(
            parsed["samples"]["fpga_pipeline_kernel_seconds_total"].values())
        assert reported > 0
        assert traced == pytest.approx(reported, rel=0.01)


@pytest.fixture(scope="module")
def fig12_timeline_outputs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fig12timeline")
    trace_path = str(tmp / "t.trace.json")
    profile_path = str(tmp / "p.json")
    bench_path = str(tmp / "BENCH_fig12.json")
    assert bench_main(["fig12", "--scale", "0.05",
                       "--chrome-trace", trace_path,
                       "--profile", profile_path,
                       "--bench-json", bench_path]) == 0
    return trace_path, profile_path, bench_path


class TestChromeTraceAcceptance:
    """``fcae-bench fig12 --chrome-trace t.json`` must yield a valid
    Chrome trace: parseable JSON, one named track per pipeline module
    and per-input FIFO, non-overlapping per-track intervals, and kernel
    spans within 1% of ``TimingReport.total_cycles`` at the clock."""

    def test_trace_parses_with_module_and_fifo_tracks(
            self, fig12_timeline_outputs):
        trace_path, _, _ = fig12_timeline_outputs
        with open(trace_path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        thread_tracks = {e["args"]["name"] for e in events
                         if e["ph"] == "M" and e["name"] == "thread_name"}
        # fig12 runs 2-input and 9-input engines: per-input decoders.
        for i in range(9):
            assert f"decoder[{i}]" in thread_tracks
        for module in ("comparer", "value_bus", "encoder", "kernel"):
            assert module in thread_tracks
        counter_series = {e["name"] for e in events if e["ph"] == "C"}
        assert {f"fifo[{i}]" for i in range(9)} <= counter_series

    def test_intervals_non_overlapping_and_kernel_spans_match(
            self, fig12_timeline_outputs):
        trace_path, _, _ = fig12_timeline_outputs
        with open(trace_path) as handle:
            trace = json.load(handle)
        last_end = {}
        kernel_runs = 0
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last_end.get(key, 0.0) - 1e-6
            last_end[key] = event["ts"] + event["dur"]
            if event["name"] == "kernel_run":
                kernel_runs += 1
                expected = (event["args"]["cycles"]
                            / event["args"]["clock_mhz"])
                assert event["dur"] == pytest.approx(expected, rel=0.01)
        assert kernel_runs == 12  # 6 value lengths x 2 engines

    def test_validate_trace_tool_accepts(self, fig12_timeline_outputs):
        trace_path, _, _ = fig12_timeline_outputs
        proc = run_tool("validate_trace.py", trace_path)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_validate_trace_tool_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X", "pid": 1, '
                       '"name": "x", "ts": 5, "dur": -1}]}')
        proc = run_tool("validate_trace.py", str(bad))
        assert proc.returncode == 1

    def test_profile_report_fractions_sum_to_one(
            self, fig12_timeline_outputs):
        _, profile_path, _ = fig12_timeline_outputs
        with open(profile_path) as handle:
            profile = json.load(handle)
        modules = profile["kernel"]["modules"]
        total = sum(m["attributed_fraction"] for m in modules.values())
        assert total == pytest.approx(1.0, abs=1e-6)
        assert profile["kernel"]["bottleneck"] in modules
        assert sum(m["bound_runs"] for m in modules.values()) == 12


class TestBenchRegressionTool:
    def test_baseline_diffs_clean_against_itself(
            self, fig12_timeline_outputs):
        _, _, bench_path = fig12_timeline_outputs
        proc = run_tool("check_regression.py", "--baseline", bench_path,
                        "--run", bench_path)
        assert proc.returncode == 0, proc.stderr

    def test_matches_committed_baseline(self, fig12_timeline_outputs):
        _, _, bench_path = fig12_timeline_outputs
        committed = os.path.join(REPO_ROOT, "benchmarks", "baselines",
                                 "BENCH_fig12.json")
        proc = run_tool("check_regression.py", "--baseline", committed,
                        "--run", bench_path)
        assert proc.returncode == 0, proc.stderr

    def test_drift_beyond_tolerance_fails(self, fig12_timeline_outputs,
                                          tmp_path):
        _, _, bench_path = fig12_timeline_outputs
        with open(bench_path) as handle:
            doc = json.load(handle)
        doc["experiments"]["fig12"]["rows"][0][1] *= 1.5
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(doc))
        proc = run_tool("check_regression.py", "--baseline", bench_path,
                        "--run", str(drifted))
        assert proc.returncode == 1
        assert "drifted" in proc.stderr

    def test_scale_mismatch_fails(self, fig12_timeline_outputs, tmp_path):
        _, _, bench_path = fig12_timeline_outputs
        with open(bench_path) as handle:
            doc = json.load(handle)
        doc["scale"] = 1.0
        other = tmp_path / "other_scale.json"
        other.write_text(json.dumps(doc))
        proc = run_tool("check_regression.py", "--baseline", bench_path,
                        "--run", str(other))
        assert proc.returncode == 1


class TestAllModeRegistryReset:
    def test_families_do_not_bleed_between_experiments(self, tmp_path,
                                                       monkeypatch):
        """`all` mode must give each experiment a fresh registry: the
        second experiment's dump must not contain samples produced by
        the first."""
        from repro import obs
        from repro.bench import cli
        from repro.bench.common import ExperimentResult

        def fake_first(scale=1.0):
            obs.current_registry().counter(
                "fpga_pipeline_runs_total", inst="first").inc(7)
            return ExperimentResult(name="first", title="first",
                                    columns=["x"], rows=[[1]])

        def fake_second(scale=1.0):
            obs.current_registry().counter(
                "lsm_writes_total", inst="second").inc(3)
            return ExperimentResult(name="second", title="second",
                                    columns=["x"], rows=[[2]])

        monkeypatch.setitem(cli.EXPERIMENTS, "first", fake_first)
        monkeypatch.setitem(cli.EXPERIMENTS, "second", fake_second)
        monkeypatch.setattr(cli, "ALL_ORDER", ("first", "second"))

        metrics_path = str(tmp_path / "m.prom")
        assert bench_main(["all", "--metrics-out", metrics_path]) == 0

        first_path = str(tmp_path / "m.first.prom")
        second_path = str(tmp_path / "m.second.prom")
        assert os.path.exists(first_path)
        assert os.path.exists(second_path)
        with open(first_path) as handle:
            first = parse_prometheus_text(handle.read())
        with open(second_path) as handle:
            second = parse_prometheus_text(handle.read())
        assert first["samples"]["fpga_pipeline_runs_total"][
            (("inst", "first"),)] == 7
        assert not any(key == (("inst", "first"),)
                       for key in second["samples"].get(
                           "fpga_pipeline_runs_total", {}))
        assert second["samples"]["lsm_writes_total"][
            (("inst", "second"),)] == 3

    def test_single_mode_unsuffixed(self, tmp_path):
        metrics_path = str(tmp_path / "m.prom")
        assert bench_main(["table7", "--metrics-out", metrics_path]) == 0
        assert os.path.exists(metrics_path)

    def test_suffixed_path_helper(self):
        from repro.bench.cli import suffixed_path
        assert suffixed_path("m.prom", "fig12") == "m.fig12.prom"
        assert suffixed_path("trace", "fig9") == "trace.fig9"
        assert suffixed_path("m.prom", None) == "m.prom"


class TestLsmCli:
    def test_fill_and_compact_with_observability(self, tmp_path):
        db = str(tmp_path / "db")
        metrics_path = str(tmp_path / "m.prom")
        trace_path = str(tmp_path / "t.jsonl")
        for _ in range(4):
            assert lsm_main(["fill", db, "--entries", "4000",
                             "--value-size", "256"]) == 0
        assert lsm_main(["compact", db, "--fpga", "4",
                         "--metrics-out", metrics_path,
                         "--trace-out", trace_path]) == 0

        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        samples = parsed["samples"]
        tasks = samples["scheduler_tasks_total"]
        assert sum(tasks.values()) >= 1
        assert sum(samples["lsm_compactions_total"].values()) >= 1

        events = read_jsonl(trace_path)
        by_id = {e["id"]: e for e in events}
        routes = [e for e in events if e["name"] == "compaction.route"]
        assert routes
        for route in routes:
            assert by_id[route["parent"]]["name"] == "compaction"
        phases = [e for e in events if e["name"].startswith("phase:")]
        assert phases
        traced = sum(p["sim_seconds"] for p in phases)
        reported = sum(samples["scheduler_phase_seconds_total"].values())
        assert traced == pytest.approx(reported, rel=0.01)

    def test_stats_command_uses_property_report(self, tmp_path, capsys):
        db = str(tmp_path / "db")
        assert lsm_main(["fill", db, "--entries", "500"]) == 0
        capsys.readouterr()
        assert lsm_main(["stats", db]) == 0
        out = capsys.readouterr().out
        assert "level 0" in out
        assert "sequence" in out
        assert "block_cache" in out

    def test_metrics_out_without_trace(self, tmp_path):
        db = str(tmp_path / "db")
        metrics_path = str(tmp_path / "m.prom")
        assert lsm_main(["fill", db, "--entries", "200",
                         "--metrics-out", metrics_path]) == 0
        with open(metrics_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        assert sum(parsed["samples"]["lsm_writes_total"].values()) == 200

    def test_trace_is_valid_json_lines(self, tmp_path):
        db = str(tmp_path / "db")
        trace_path = str(tmp_path / "t.jsonl")
        assert lsm_main(["fill", db, "--entries", "2000",
                         "--trace-out", trace_path]) == 0
        with open(trace_path) as handle:
            for line in handle:
                event = json.loads(line)
                assert event["type"] == "span"
