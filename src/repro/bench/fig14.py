"""Fig 14 — write throughput vs data size (0.2 GB - 1 TB), 9-input FCAE.

The large-scale sweep of §VII-C2: L_value = 512, multi-input engine so
level-0 compactions offload too.  The paper's observations — both systems
drop as depth grows, FCAE's speedup settles near a constant — emerge from
the statistical level model.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, N9_CONFIG, scale_bytes
from repro.lsm.options import Options
from repro.sim.system import SystemConfig, SystemResult, simulate_fillrandom

DATA_SIZES_GB = (0.2, 0.5, 1, 2, 4, 8, 16, 32, 64, 256, 1024)
VALUE_LENGTH = 512


def run_point(gigabytes: float,
              scale: float = 1.0) -> tuple[SystemResult, SystemResult]:
    options = Options(value_length=VALUE_LENGTH)
    nbytes = scale_bytes(int(gigabytes * (1 << 30)), scale)
    base = simulate_fillrandom(SystemConfig(
        mode="leveldb", options=options, data_size_bytes=nbytes))
    fcae = simulate_fillrandom(SystemConfig(
        mode="fcae", options=options, fpga=N9_CONFIG,
        data_size_bytes=nbytes))
    return base, fcae


def run(scale: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 14",
        title="Write throughput vs data size, multi-input FCAE "
              "(L_value=512)",
        columns=["data_GB", "LevelDB_MBps", "FCAE_MBps", "speedup",
                 "write_amp"],
    )
    sizes = DATA_SIZES_GB if scale >= 1.0 else DATA_SIZES_GB[:6]
    for gigabytes in sizes:
        base, fcae = run_point(gigabytes, scale)
        result.add_row(gigabytes, base.throughput_mbps,
                       fcae.throughput_mbps,
                       fcae.throughput_mbps / base.throughput_mbps,
                       fcae.write_amplification)
    result.notes.append(
        "paper shape: both decline with scale; the speedup approaches a "
        "steady value (paper ~2.5x)")
    return result
