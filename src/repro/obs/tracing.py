"""Span-based tracing with a JSONL event log.

A :class:`Tracer` records nested phases of the write path — write →
flush → compaction pick → route → fpga kernel/pcie/marshal or software
merge — against **both** clocks that matter in this repo:

* **wall clock** (``time.perf_counter``): what the host actually spent;
* **simulated time**: either read from a :class:`repro.sim.clock.
  VirtualClock` attached to the tracer, or supplied as a *modeled*
  duration by the cost models (PCIe transfer seconds, kernel cycles →
  seconds) via :meth:`Tracer.phase`.

Finished spans stream to a JSONL sink (one object per line, children
before parents because spans are emitted at completion) and/or accumulate
in memory for assertions.  The schema per line::

    {"type": "span", "id": 7, "parent": 5, "name": "phase:kernel",
     "start_wall": ..., "end_wall": ..., "wall_seconds": ...,
     "start_sim": ..., "end_sim": ..., "sim_seconds": ...,
     "attrs": {"level": 1, "route": "fpga"}}

``sim_seconds`` is the modeled duration when one was recorded, else the
simulated-clock interval, else ``null``.

**Trace propagation.**  Work that crosses threads — a write kicks the
background driver, a worker picks and runs the compaction — would
otherwise produce disconnected span trees.  :meth:`Tracer.mint_context`
captures a :class:`TraceContext` (a fresh trace id plus the minting
span, if any); the driver carries it through its queues and the worker
re-activates it with :meth:`Tracer.activate`.  Spans opened under an
active remote context inherit its ``trace`` id and parent the minting
span, so one compaction's host/DMA/kernel spans stitch under a single
trace id across threads.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Iterator, NamedTuple, Optional


class TraceContext(NamedTuple):
    """Portable link to a trace: carried across thread/queue boundaries."""

    trace_id: int
    span_id: Optional[int]


class Span:
    """One traced phase.  Mutable until its ``with`` block exits."""

    __slots__ = ("span_id", "parent_id", "trace_id", "name", "attrs",
                 "start_wall", "end_wall", "start_sim", "end_sim",
                 "sim_seconds")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 attrs: dict, trace_id: Optional[int] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.attrs = attrs
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_sim: Optional[float] = None
        self.end_sim: Optional[float] = None
        self.sim_seconds: Optional[float] = None

    def set(self, **attrs) -> None:
        """Attach attributes to the span (route decision, byte counts)."""
        self.attrs.update(attrs)

    @property
    def wall_seconds(self) -> float:
        return self.end_wall - self.start_wall

    def to_dict(self) -> dict:
        sim_seconds = self.sim_seconds
        if sim_seconds is None and self.start_sim is not None:
            sim_seconds = (self.end_sim or self.start_sim) - self.start_sim
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "wall_seconds": self.wall_seconds,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "sim_seconds": sim_seconds,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`; accepts the same
    calls and discards them."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    trace_id = None
    name = ""
    sim_seconds = None
    wall_seconds = 0.0

    def set(self, **attrs) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer: the default when no trace sink is installed,
    so instrumentation costs one method call on hot paths."""

    spans: list = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def phase(self, name: str, seconds: float, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record_sim_span(self, name: str, sim_start: float, sim_end: float,
                        **attrs) -> _NullSpan:
        return _NULL_SPAN

    def mint_context(self) -> Optional[TraceContext]:
        return None

    def current_context(self) -> Optional[TraceContext]:
        return None

    @contextmanager
    def activate(self, ctx: Optional[TraceContext]) -> Iterator[None]:
        yield

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans; optionally streams them to a JSONL file.

    Parameters
    ----------
    sim_clock:
        A ``repro.sim.clock.VirtualClock`` (anything with a ``.now``
        float attribute); when present, spans record simulated start/end
        timestamps alongside wall-clock ones.
    sink_path / sink:
        Stream finished spans to a file as JSON lines.  ``sink_path`` is
        opened (and closed by :meth:`close`); ``sink`` is any writable
        text handle the caller owns.
    keep_spans:
        Retain finished spans in :attr:`spans` (on by default; turn off
        for long streaming runs to bound memory).
    """

    def __init__(self, sim_clock=None, sink_path: Optional[str] = None,
                 sink: Optional[IO[str]] = None, keep_spans: bool = True):
        self.sim_clock = sim_clock
        self.spans: list[Span] = []
        self.keep_spans = keep_spans
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._owns_sink = sink_path is not None
        self._sink: Optional[IO[str]] = sink
        if sink_path is not None:
            # Append: a resumed run or a shared sink path extends the
            # trace instead of silently clobbering it.
            self._sink = open(sink_path, "a")

    # ------------------------------------------------------------------
    # Span stack (per thread)
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _ctx_stack(self) -> list[TraceContext]:
        stack = getattr(self._local, "ctx_stack", None)
        if stack is None:
            stack = self._local.ctx_stack = []
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Trace-context propagation (across threads / queues)
    # ------------------------------------------------------------------

    def mint_context(self) -> TraceContext:
        """New trace id anchored at the current span (if any).  The
        returned context is a plain tuple, safe to push through queues
        to other threads."""
        parent = self.current_span
        if parent is not None and parent.trace_id is not None:
            return TraceContext(parent.trace_id, parent.span_id)
        return TraceContext(next(self._trace_ids),
                            parent.span_id if parent else None)

    def current_context(self) -> Optional[TraceContext]:
        """Context new root spans would join: the enclosing span's, else
        the remotely-activated one, else None."""
        span = self.current_span
        if span is not None and span.trace_id is not None:
            return TraceContext(span.trace_id, span.span_id)
        ctx_stack = self._ctx_stack()
        return ctx_stack[-1] if ctx_stack else None

    @contextmanager
    def activate(self, ctx: Optional[TraceContext]) -> Iterator[None]:
        """Adopt a context minted on another thread: spans opened inside
        the block (with no local parent) join ``ctx``'s trace and parent
        its minting span.  ``activate(None)`` is a no-op."""
        if ctx is None:
            yield
            return
        stack = self._ctx_stack()
        stack.append(ctx)
        try:
            yield
        finally:
            stack.pop()

    def _new_span(self, name: str, attrs: dict) -> Span:
        parent = self.current_span
        if parent is not None:
            return Span(next(self._ids), parent.span_id, name, attrs,
                        trace_id=parent.trace_id)
        ctx_stack = self._ctx_stack()
        if ctx_stack:
            ctx = ctx_stack[-1]
            return Span(next(self._ids), ctx.span_id, name, attrs,
                        trace_id=ctx.trace_id)
        return Span(next(self._ids), None, name, attrs)

    def _sim_now(self) -> Optional[float]:
        return self.sim_clock.now if self.sim_clock is not None else None

    def _record(self, span: Span) -> None:
        with self._lock:
            if self.keep_spans:
                self.spans.append(span)
            if self._sink is not None:
                self._sink.write(json.dumps(span.to_dict()) + "\n")

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; attributes may be added via ``span.set``."""
        span = self._new_span(name, attrs)
        span.start_wall = time.perf_counter()
        span.start_sim = self._sim_now()
        self._stack().append(span)
        try:
            yield span
        finally:
            self._stack().pop()
            span.end_wall = time.perf_counter()
            span.end_sim = self._sim_now()
            self._record(span)

    def phase(self, name: str, seconds: float, **attrs) -> Span:
        """Record a *modeled* phase under the current span: a completed
        child whose duration comes from a cost model (PCIe DMA time,
        kernel cycles → seconds) rather than from a clock."""
        span = self._new_span(name, attrs)
        now = time.perf_counter()
        span.start_wall = span.end_wall = now
        span.start_sim = span.end_sim = self._sim_now()
        span.sim_seconds = float(seconds)
        self._record(span)
        return span

    def record_sim_span(self, name: str, sim_start: float, sim_end: float,
                        **attrs) -> Span:
        """Record a completed span positioned on the simulated timeline
        (used by the discrete-event system simulator, whose phases do
        not occupy wall-clock time)."""
        span = self._new_span(name, attrs)
        now = time.perf_counter()
        span.start_wall = span.end_wall = now
        span.start_sim = float(sim_start)
        span.end_sim = float(sim_end)
        span.sim_seconds = float(sim_end) - float(sim_start)
        self._record(span)
        return span

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """Dump retained spans as JSON lines (appending, so two runs
        sharing a path concatenate instead of clobbering)."""
        with open(path, "a") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()) + "\n")

    def write_chrome_trace(self, path: str) -> None:
        """Dump retained spans as a Chrome trace-event file."""
        with open(path, "w") as handle:
            json.dump(spans_to_chrome_trace(
                [span.to_dict() for span in self.spans]), handle)

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None


def spans_to_chrome_trace(events: list[dict]) -> dict:
    """Convert span dicts (from :meth:`Tracer.spans` / a JSONL sink) to
    the Chrome trace-event format.

    Spans are placed on the wall-clock timeline relative to the earliest
    span; modeled phases (zero wall duration, ``sim_seconds`` set) render
    with their modeled duration.  Each event's ``args`` carries the
    span's attrs plus ``trace``/``span``/``parent`` ids, so Perfetto can
    filter one compaction's host/DMA/kernel spans by trace id."""
    spans = [e for e in events if e.get("type") == "span"]
    origin = min((s["start_wall"] for s in spans), default=0.0)
    trace_events: list[dict] = [
        {"ph": "M", "pid": "host", "name": "process_name",
         "args": {"name": "repro tracer"}},
    ]
    for span in spans:
        wall = span.get("wall_seconds") or 0.0
        dur_us = wall * 1e6
        if dur_us <= 0 and span.get("sim_seconds"):
            dur_us = span["sim_seconds"] * 1e6
        args = dict(span.get("attrs") or {})
        args["span"] = span.get("id")
        args["parent"] = span.get("parent")
        args["trace"] = span.get("trace")
        trace_events.append({
            "ph": "X", "pid": "host", "tid": "spans",
            "name": span.get("name", "?"),
            "ts": (span["start_wall"] - origin) * 1e6,
            "dur": dur_us,
            "args": args,
        })
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs.tracing"}}


def read_jsonl(path: str) -> list[dict]:
    """Load a trace file back into dicts (tests, analysis scripts)."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def span_children(events: list[dict], parent_id: int) -> list[dict]:
    """Direct children of ``parent_id`` within one trace."""
    return [e for e in events if e.get("parent") == parent_id]
