"""Host-side table splicing (paper §V-B1/B2).

With Decoder/Encoder Separation the card consumes and produces *split*
tables: a data region (the data blocks, streamed at ``W_out``) and an
index region (the index entries, emitted per flushed block).  "The host
is in charge of combining data blocks with index blocks into new
formatted SSTables."

These helpers perform both directions over standard table images:

* :func:`split_table_image` — tear a standard SSTable into its data
  region and decoded index entries (what the host uploads into the
  separated Index/Data Block Memory of Fig 7);
* :func:`combine_regions` — rebuild a standard SSTable from a data
  region + index entries (the host's post-kernel combining step).

``combine_regions(split_table_image(x)) == x`` holds bit-exactly for any
table this library produces, which is the property that guarantees the
offload never perturbs the storage format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptionError
from repro.lsm.block import BlockBuilder
from repro.lsm.sstable import (
    BLOCK_TRAILER_SIZE,
    BlockHandle,
    COMPRESSION_NONE,
    FOOTER_SIZE,
    TABLE_MAGIC,
    _read_block,
)
from repro.util.coding import encode_fixed32
from repro.util.crc32c import crc32c, mask_crc


@dataclass(frozen=True)
class SplitTable:
    """A standard SSTable torn into the device's two memory regions."""

    #: Data blocks exactly as stored (payload + type + CRC trailers),
    #: ending where the first meta block begins.
    data_region: bytes
    #: Decoded index entries: (separator key, handle into data_region).
    index_entries: tuple[tuple[bytes, BlockHandle], ...]
    #: The filter block image, if the table carries one.
    filter_block: bytes | None
    filter_name: bytes | None


def split_table_image(image: bytes) -> SplitTable:
    """Tear a standard table image into data region + index entries."""
    if len(image) < FOOTER_SIZE:
        raise CorruptionError("table too short to split")
    footer = image[-FOOTER_SIZE:]
    if int.from_bytes(footer[-8:], "little") != TABLE_MAGIC:
        raise CorruptionError("bad table magic")
    metaindex_handle, pos = BlockHandle.decode(footer, 0)
    index_handle, _ = BlockHandle.decode(footer, pos)

    from repro.lsm.block import Block
    index_entries = []
    index_image = _read_block(image, index_handle, verify=True)
    data_end = 0
    for key, handle_bytes in Block(index_image):
        handle, _ = BlockHandle.decode(handle_bytes, 0)
        index_entries.append((key, handle))
        data_end = max(data_end,
                       handle.offset + handle.size + BLOCK_TRAILER_SIZE)

    filter_block = filter_name = None
    metaindex = Block(_read_block(image, metaindex_handle, verify=True))
    for key, handle_bytes in metaindex:
        if key.startswith(b"filter."):
            handle, _ = BlockHandle.decode(handle_bytes, 0)
            filter_block = _read_block(image, handle, verify=True)
            filter_name = key
    return SplitTable(
        data_region=image[:data_end],
        index_entries=tuple(index_entries),
        filter_block=filter_block,
        filter_name=filter_name,
    )


def _append_block(out: bytearray, contents: bytes,
                  compression: str) -> BlockHandle:
    """Store one meta block with TableBuilder's exact policy: snappy when
    it saves at least 12.5%, raw otherwise."""
    block_type = COMPRESSION_NONE
    payload = contents
    if compression == "snappy":
        from repro.compress import snappy
        from repro.lsm.sstable import COMPRESSION_SNAPPY

        compressed = snappy.compress(contents)
        if len(compressed) < len(contents) - len(contents) // 8:
            payload, block_type = compressed, COMPRESSION_SNAPPY
    handle = BlockHandle(len(out), len(payload))
    crc = mask_crc(crc32c(payload + bytes([block_type])))
    out += payload
    out.append(block_type)
    out += encode_fixed32(crc)
    return handle


def combine_regions(split: SplitTable,
                    compression: str = "snappy") -> bytes:
    """Rebuild the standard table image from its split regions.

    The data region is used verbatim (it still carries per-block
    compression trailers); the index, metaindex and footer are
    re-encoded around it.  ``compression`` must match the
    ``Options.compression`` the table was built with for the round trip
    to be bit-exact.
    """
    out = bytearray(split.data_region)

    metaindex_builder = BlockBuilder(1)
    if split.filter_block is not None:
        filter_handle = _append_block(out, split.filter_block, compression)
        metaindex_builder.add(split.filter_name or b"filter.unknown",
                              filter_handle.encode())
    metaindex_handle = _append_block(out, metaindex_builder.finish(),
                                     compression)

    index_builder = BlockBuilder(1)
    for key, handle in split.index_entries:
        index_builder.add(key, handle.encode())
    index_handle = _append_block(out, index_builder.finish(), compression)

    footer = bytearray()
    footer += metaindex_handle.encode()
    footer += index_handle.encode()
    footer += b"\x00" * (FOOTER_SIZE - 8 - len(footer))
    footer += TABLE_MAGIC.to_bytes(8, "little")
    out += footer
    return bytes(out)
