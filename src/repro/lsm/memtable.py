"""The in-memory write buffer (MemTable).

New writes land here first; when :attr:`approximate_memory_usage` crosses
``Options.write_buffer_size`` the table is frozen as an *immutable
memtable* and dumped to a level-0 SSTable — the paper's first type of
compaction.

Entries are stored in a skiplist keyed by
``varint32(len(internal_key)) || internal_key || varint32(len(value)) || value``
exactly like LevelDB, so iteration yields internal keys in merge order for
free.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import NotFoundError
from repro.lsm.internal import (
    TYPE_DELETION,
    TYPE_VALUE,
    InternalKeyComparator,
    encode_internal_key,
    extract_user_key,
    parse_internal_key,
)
from repro.lsm.skiplist import SkipList
from repro.util.coding import get_length_prefixed_slice
from repro.util.varint import encode_varint32


class MemTable:
    """Sorted in-memory buffer of (internal key, value) entries."""

    def __init__(self, comparator: InternalKeyComparator):
        self._comparator = comparator
        self._table = SkipList(self._compare_entries)
        self._memory_usage = 0

    def _compare_entries(self, a: bytes, b: bytes) -> int:
        key_a, _ = get_length_prefixed_slice(a, 0)
        key_b, _ = get_length_prefixed_slice(b, 0)
        return self._comparator.compare(key_a, key_b)

    def __len__(self) -> int:
        return len(self._table)

    @property
    def approximate_memory_usage(self) -> int:
        """Bytes consumed by stored entries (payload, not node overhead)."""
        return self._memory_usage

    def add(self, sequence: int, value_type: int, user_key: bytes,
            value: bytes) -> None:
        """Insert one entry.  ``value`` is ignored for deletions' semantics
        but still stored (LevelDB stores an empty value)."""
        internal_key = encode_internal_key(user_key, sequence, value_type)
        entry = bytearray()
        entry += encode_varint32(len(internal_key))
        entry += internal_key
        entry += encode_varint32(len(value))
        entry += value
        entry = bytes(entry)
        self._table.insert(entry)
        self._memory_usage += len(entry)

    def put(self, sequence: int, user_key: bytes, value: bytes) -> None:
        self.add(sequence, TYPE_VALUE, user_key, value)

    def delete(self, sequence: int, user_key: bytes) -> None:
        self.add(sequence, TYPE_DELETION, user_key, b"")

    def get(self, user_key: bytes, sequence: int) -> Optional[bytes]:
        """Newest value of ``user_key`` visible at snapshot ``sequence``.

        Returns the value, raises :class:`NotFoundError` if a deletion
        tombstone is the newest entry, or returns ``None`` when the key is
        absent from this memtable (the caller falls through to SSTables).
        """
        lookup = encode_internal_key(user_key, sequence, TYPE_VALUE)
        probe = encode_varint32(len(lookup)) + lookup
        for entry in self._table.iter_from(probe):
            internal_key, pos = get_length_prefixed_slice(entry, 0)
            if extract_user_key(internal_key) != user_key:
                return None
            parsed = parse_internal_key(internal_key)
            if parsed.sequence > sequence:
                # Entry newer than the snapshot (possible when iter_from
                # lands mid-run); keep scanning.
                continue
            if parsed.is_deletion:
                raise NotFoundError(user_key)
            value, _ = get_length_prefixed_slice(entry, pos)
            return value
        return None

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(internal_key, value)`` in internal-key order."""
        for entry in self._table:
            internal_key, pos = get_length_prefixed_slice(entry, 0)
            value, _ = get_length_prefixed_slice(entry, pos)
            yield internal_key, value
