"""LRU block cache.

Caches decompressed data blocks keyed by ``(file_number, block_offset)``.
Capacity is accounted in bytes of cached payload.  Eviction is strict LRU,
implemented over an ordered dict; hit/miss counters are exposed because
the read-path experiments report them.

The cache is thread-safe: readers on foreground threads and the
background compaction driver's workers share one instance, so every
structural operation holds a private lock (the bound obs counters carry
their own registry lock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional


class LRUCache:
    """Byte-capacity-bounded LRU map.

    ``hit_counter`` / ``miss_counter`` / ``usage_gauge`` are optional
    :mod:`repro.obs` metrics the owning store can bind, so cache traffic
    flows into its registry without this module importing it.
    """

    def __init__(self, capacity: int, hit_counter=None, miss_counter=None,
                 usage_gauge=None):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, bytes] = OrderedDict()
        self._usage = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._hit_counter = hit_counter
        self._miss_counter = miss_counter
        self._usage_gauge = usage_gauge

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def usage(self) -> int:
        """Bytes currently cached."""
        return self._usage

    def get(self, key: Hashable) -> Optional[bytes]:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
        if value is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            return None
        self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()
        return value

    def put(self, key: Hashable, value: bytes) -> None:
        if self.capacity == 0:
            return
        if len(value) > self.capacity:
            # An oversized value can never be resident: admitting it used
            # to evict the whole cache and then the value itself.  Reject
            # it up front without disturbing resident entries.
            return
        with self._lock:
            if key in self._entries:
                self._usage -= len(self._entries.pop(key))
            self._entries[key] = value
            self._usage += len(value)
            while self._usage > self.capacity and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._usage -= len(evicted)
            usage = self._usage
        if self._usage_gauge is not None:
            self._usage_gauge.set(usage)

    def erase(self, key: Hashable) -> None:
        with self._lock:
            value = self._entries.pop(key, None)
            if value is not None:
                self._usage -= len(value)
            usage = self._usage
        if value is not None and self._usage_gauge is not None:
            self._usage_gauge.set(usage)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._usage = 0
        if self._usage_gauge is not None:
            self._usage_gauge.set(0)
