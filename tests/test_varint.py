"""Varint coding round-trips, boundaries, and corruption handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError, InvalidArgumentError
from repro.util.varint import (
    MAX_VARINT32_BYTES,
    MAX_VARINT64_BYTES,
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
)


class TestEncode:
    def test_zero_is_single_byte(self):
        assert encode_varint32(0) == b"\x00"

    def test_small_values_single_byte(self):
        for value in (1, 63, 127):
            assert len(encode_varint32(value)) == 1

    def test_128_needs_two_bytes(self):
        assert encode_varint32(128) == b"\x80\x01"

    def test_max_uint32_length(self):
        assert len(encode_varint32(2 ** 32 - 1)) == MAX_VARINT32_BYTES

    def test_max_uint64_length(self):
        assert len(encode_varint64(2 ** 64 - 1)) == MAX_VARINT64_BYTES

    def test_negative_rejected(self):
        with pytest.raises(InvalidArgumentError):
            encode_varint32(-1)

    def test_too_large_rejected(self):
        with pytest.raises(InvalidArgumentError):
            encode_varint32(2 ** 32)
        with pytest.raises(InvalidArgumentError):
            encode_varint64(2 ** 64)


class TestDecode:
    def test_roundtrip_known_values(self):
        for value in (0, 1, 127, 128, 300, 2 ** 21, 2 ** 32 - 1):
            encoded = encode_varint32(value)
            decoded, offset = decode_varint32(encoded)
            assert decoded == value
            assert offset == len(encoded)

    def test_decode_at_offset(self):
        buf = b"\xff\xff" + encode_varint32(777)
        value, offset = decode_varint32(buf, 2)
        assert value == 777
        assert offset == 2 + len(encode_varint32(777))

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint32(b"\x80")

    def test_overlong_raises(self):
        # Six continuation bytes exceed the varint32 budget.
        with pytest.raises(CorruptionError):
            decode_varint32(b"\x80\x80\x80\x80\x80\x01")

    def test_value_exceeding_range_raises(self):
        # A 5-byte varint encoding a value above 2**32.
        with pytest.raises(CorruptionError):
            decode_varint32(b"\xff\xff\xff\xff\x7f")

    def test_empty_buffer_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint64(b"")


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_varint32_roundtrip_property(value):
    decoded, offset = decode_varint32(encode_varint32(value))
    assert decoded == value
    assert offset <= MAX_VARINT32_BYTES


@given(st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_varint64_roundtrip_property(value):
    decoded, _ = decode_varint64(encode_varint64(value))
    assert decoded == value


@given(st.lists(st.integers(min_value=0, max_value=2 ** 64 - 1),
                max_size=20))
def test_varint_stream_roundtrip(values):
    buf = b"".join(encode_varint64(v) for v in values)
    offset = 0
    decoded = []
    for _ in values:
        value, offset = decode_varint64(buf, offset)
        decoded.append(value)
    assert decoded == values
    assert offset == len(buf)
