"""DB edge cases: binary keys, big values, degraded configurations."""

import pytest

from repro.errors import NotFoundError
from repro.lsm import LsmDB, Options, WriteBatch
from repro.lsm.env import MemEnv


class TestBinaryKeys:
    def test_null_and_ff_bytes(self, options):
        db = LsmDB("edb", options, env=MemEnv())
        keys = [b"\x00", b"\x00\x00", b"\xff", b"\xff\xff", b"a\x00b",
                b"\x00\xff\x00"]
        for i, key in enumerate(keys):
            db.put(key, f"v{i}".encode())
        db.compact_range()
        for i, key in enumerate(keys):
            assert db.get(key) == f"v{i}".encode()
        assert [k for k, _ in db.scan()] == sorted(keys)

    def test_key_is_prefix_of_other(self, options):
        db = LsmDB("edb2", options, env=MemEnv())
        db.put(b"abc", b"short")
        db.put(b"abcdef", b"long")
        db.compact_range()
        assert db.get(b"abc") == b"short"
        assert db.get(b"abcdef") == b"long"

    def test_single_byte_keyspace(self, options):
        db = LsmDB("edb3", options, env=MemEnv())
        for byte in range(256):
            db.put(bytes([byte]), bytes([byte]) * 3)
        db.compact_range()
        assert db.get(b"\x80") == b"\x80\x80\x80"
        assert len(list(db.scan())) == 256


class TestLargeEntries:
    def test_value_larger_than_block(self, options):
        db = LsmDB("big", options, env=MemEnv())
        huge = bytes(range(256)) * 40  # 10 KB > 512 B block
        db.put(b"huge", huge)
        db.flush()
        assert db.get(b"huge") == huge

    def test_value_larger_than_sstable_target(self, options):
        db = LsmDB("big2", options, env=MemEnv())
        monster = b"M" * (options.sstable_size * 2)
        db.put(b"monster", monster)
        db.compact_range()
        assert db.get(b"monster") == monster

    def test_many_versions_of_one_key(self, options):
        db = LsmDB("ver", options, env=MemEnv())
        for i in range(500):
            db.put(b"hot", f"version-{i}".encode())
        db.compact_range()
        assert db.get(b"hot") == b"version-499"
        assert len(list(db.scan())) == 1


class TestDegradedConfigurations:
    def test_no_cache_no_bloom_no_compression(self):
        options = Options(block_size=512, sstable_size=8 * 1024,
                          write_buffer_size=16 * 1024,
                          compression="none", bloom_bits_per_key=0,
                          block_cache_capacity=0)
        db = LsmDB("bare", options, env=MemEnv())
        assert db.block_cache is None
        for i in range(600):
            db.put(f"k{i:08d}".encode(), f"v{i}".encode())
        db.compact_range()
        assert db.get(b"k00000300") == b"v300"
        with pytest.raises(NotFoundError):
            db.get(b"nope")

    def test_empty_batch_is_noop(self, options):
        db = LsmDB("noop", options, env=MemEnv())
        before = db.versions.last_sequence
        db.write(WriteBatch())
        assert db.versions.last_sequence == before

    def test_flush_empty_memtable_is_noop(self, options):
        db = LsmDB("noflush", options, env=MemEnv())
        db.flush()
        assert db.level_file_counts() == [0] * 7

    def test_compact_empty_db(self, options):
        db = LsmDB("empty", options, env=MemEnv())
        db.compact_range()
        assert db.level_file_counts() == [0] * 7

    def test_scan_empty_db(self, options):
        db = LsmDB("empty2", options, env=MemEnv())
        assert list(db.scan()) == []


class TestAutoCompactOff:
    def test_manual_maintenance_only(self, options):
        db = LsmDB("manual", options, env=MemEnv(), auto_compact=False)
        for i in range(3000):
            db.put(f"k{i:08d}".encode(), b"x" * 40)
        # Nothing flushed automatically.
        assert db.level_file_counts() == [0] * 7
        assert db.get(b"k00001500") == b"x" * 40  # served from memtable
        db.flush()
        assert db.level_file_counts()[0] == 1


class FlakyEnv(MemEnv):
    """MemEnv whose next ``new_writable_file`` calls fail on demand."""

    def __init__(self):
        super().__init__()
        self.fail_next = 0

    def new_writable_file(self, name):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise OSError(f"injected write failure for {name}")
        return super().new_writable_file(name)


class TestFlushFailure:
    def test_failed_flush_strands_no_writes(self, options):
        """A flush that dies mid-build must leave every committed write
        readable and re-flushable (no data stranded in ``_imm``)."""
        env = FlakyEnv()
        db = LsmDB("flaky", options, env=env, auto_compact=False)
        for i in range(200):
            db.put(f"k{i:04d}".encode(), b"v" * 64)
        env.fail_next = 1
        with pytest.raises(OSError):
            db.flush()
        # All writes survived the failure...
        assert db._imm is None
        for i in range(0, 200, 13):
            assert db.get(f"k{i:04d}".encode()) == b"v" * 64
        assert len(dict(db.scan())) == 200
        # ...and the retry flushes them to level 0.
        db.flush()
        assert db.versions.current.num_files(0) == 1
        assert len(dict(db.scan())) == 200

    def test_writes_after_failed_flush_not_lost(self, options):
        env = FlakyEnv()
        db = LsmDB("flaky2", options, env=env, auto_compact=False)
        db.put(b"before", b"1")
        env.fail_next = 1
        with pytest.raises(OSError):
            db.flush()
        db.put(b"after", b"2")
        db.flush()
        assert db.get(b"before") == b"1"
        assert db.get(b"after") == b"2"

    def test_partial_table_file_removed(self, options):
        env = FlakyEnv()
        db = LsmDB("flaky3", options, env=env, auto_compact=False)
        for i in range(50):
            db.put(f"k{i:04d}".encode(), b"v" * 64)
        before = set(env.list_dir("flaky3"))
        env.fail_next = 1
        with pytest.raises(OSError):
            db.flush()
        assert set(env.list_dir("flaky3")) == before
