"""Iterator utilities: k-way merging over sorted (key, value) streams.

The merging iterator is the heart of CPU compaction and of multi-source
reads: given N iterators each yielding internal keys in ascending order,
it yields the globally smallest next key each round — the same job the
FPGA Comparer module performs in hardware.  Ties (equal internal keys
cannot happen; equal *user* keys differ in sequence) are resolved by the
internal-key order itself, which places newer entries first.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

KVPair = tuple[bytes, bytes]


class _Cursor:
    """Pull-based wrapper over an iterator with one-element lookahead."""

    __slots__ = ("_iter", "head", "exhausted")

    def __init__(self, source: Iterator[KVPair]):
        self._iter = source
        self.head: KVPair | None = None
        self.exhausted = False
        self.advance()

    def advance(self) -> None:
        try:
            self.head = next(self._iter)
        except StopIteration:
            self.head = None
            self.exhausted = True


def merging_iterator(sources: Iterable[Iterator[KVPair]],
                     compare: Callable[[bytes, bytes], int]
                     ) -> Iterator[KVPair]:
    """Merge ascending (key, value) streams into one ascending stream.

    When two sources hold keys that compare equal, the *earlier* source
    wins that round (it is emitted first); callers exploit this by
    ordering sources newest-first.
    """
    cursors = [_Cursor(s) for s in sources]
    cursors = [c for c in cursors if not c.exhausted]

    # A heap of (KeyWrapper, index) drives selection; the wrapper defers to
    # the pluggable comparator.
    class _KeyWrapper:
        __slots__ = ("key", "rank")

        def __init__(self, key: bytes, rank: int):
            self.key = key
            self.rank = rank

        def __lt__(self, other: "_KeyWrapper") -> bool:
            result = compare(self.key, other.key)
            if result != 0:
                return result < 0
            return self.rank < other.rank

    heap: list[tuple[_KeyWrapper, int]] = []
    for index, cursor in enumerate(cursors):
        heap.append((_KeyWrapper(cursor.head[0], index), index))
    heapq.heapify(heap)
    while heap:
        wrapper, index = heapq.heappop(heap)
        cursor = cursors[index]
        yield cursor.head
        cursor.advance()
        if not cursor.exhausted:
            heapq.heappush(heap, (_KeyWrapper(cursor.head[0], index), index))


def take_while_prefix(source: Iterator[KVPair], limit: bytes,
                      compare: Callable[[bytes, bytes], int]
                      ) -> Iterator[KVPair]:
    """Yield entries while ``key < limit``."""
    for key, value in source:
        if compare(key, limit) >= 0:
            return
        yield key, value
