import sys

from repro.service.cli import main

sys.exit(main())
