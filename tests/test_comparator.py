"""Bytewise comparator order and key-shortening hooks."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.comparator import BytewiseComparator

CMP = BytewiseComparator()


class TestCompare:
    def test_equal(self):
        assert CMP.compare(b"abc", b"abc") == 0

    def test_ordering(self):
        assert CMP.compare(b"a", b"b") < 0
        assert CMP.compare(b"b", b"a") > 0

    def test_prefix_sorts_first(self):
        assert CMP.compare(b"abc", b"abcd") < 0

    def test_byte_order_unsigned(self):
        assert CMP.compare(b"\x7f", b"\x80") < 0

    def test_name(self):
        assert CMP.name == "leveldb.BytewiseComparator"


class TestShortestSeparator:
    def test_shortens_to_prefix_plus_one(self):
        sep = CMP.find_shortest_separator(b"abcdefghij", b"abzzzz")
        assert sep == b"abd"

    def test_separator_in_range(self):
        start, limit = b"helloworld", b"hellozzz"
        sep = CMP.find_shortest_separator(start, limit)
        assert start <= sep < limit

    def test_prefix_relationship_unchanged(self):
        assert CMP.find_shortest_separator(b"abc", b"abcdef") == b"abc"

    def test_no_room_unchanged(self):
        # 'a' + 1 == 'b' which is not < limit[shared]... boundary case.
        assert CMP.find_shortest_separator(b"abc1", b"abc2") == b"abc1"

    def test_0xff_unchanged(self):
        assert CMP.find_shortest_separator(b"a\xff1", b"azz") == b"a\xff1"


class TestShortSuccessor:
    def test_increments_first_byte(self):
        assert CMP.find_short_successor(b"abc") == b"b"

    def test_skips_0xff(self):
        assert CMP.find_short_successor(b"\xffabc") == b"\xffb"

    def test_all_0xff_unchanged(self):
        assert CMP.find_short_successor(b"\xff\xff") == b"\xff\xff"

    def test_successor_not_smaller(self):
        for key in (b"", b"a", b"zz", b"\xff", b"m\xffq"):
            assert CMP.find_short_successor(key) >= key


@given(st.binary(min_size=1, max_size=30), st.binary(min_size=1, max_size=30))
def test_separator_invariant_property(a, b):
    if a >= b:
        a, b = b, a
    if a == b:
        return
    sep = CMP.find_shortest_separator(a, b)
    assert a <= sep < b
    assert len(sep) <= len(a)


@given(st.binary(max_size=30))
def test_successor_invariant_property(key):
    successor = CMP.find_short_successor(key)
    assert successor >= key
    assert len(successor) <= max(1, len(key))
