"""Fig 15 (a)-(d): sensitivity to LevelDB settings."""

from repro.bench import fig15

SCALE = 0.05


def test_bench_fig15a_key_length(benchmark, attach_rows):
    result = benchmark.pedantic(fig15.run_a, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    speedups = result.column("speedup")
    assert speedups[-1] < speedups[0]


def test_bench_fig15b_value_length(benchmark, attach_rows):
    result = benchmark.pedantic(fig15.run_b, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    speedups = result.column("speedup")
    assert speedups[-1] > speedups[0]


def test_bench_fig15c_block_size(benchmark, attach_rows):
    result = benchmark.pedantic(fig15.run_c, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    speedups = result.column("speedup")
    assert max(speedups) < 1.5 * min(speedups)


def test_bench_fig15d_leveling_ratio(benchmark, attach_rows):
    result = benchmark.pedantic(fig15.run_d, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    assert all(s > 1.2 for s in result.column("speedup"))
