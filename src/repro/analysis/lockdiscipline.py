"""Lock-discipline lint: the ``*_locked`` convention as a checkable rule.

Rules
-----

LD001 ``unguarded-locked-call``
    A ``*_locked`` method is invoked from a path that does not hold the
    owning object's mutex.  Holding is lexical: the call sits inside a
    ``with self._mutex:`` block (alias-aware — ``db = self.db`` then
    ``with db._mutex:`` counts), the caller is itself ``*_locked``, or
    the caller carries a ``# holds: _mutex`` annotation.

LD002 ``guarded-attr-escape``
    A guarded attribute (seeded registry + ``# guarded_by:`` comments,
    see :mod:`repro.analysis.guarded`) is mutated — assigned, augmented,
    deleted, subscript-stored, or hit with a mutating method such as
    ``.append``/``.pop`` — outside the guarding mutex.  ``__init__`` is
    exempt (no concurrent access before construction completes).
    Attributes in ``guarded_reads`` are checked on loads too.

LD003 ``blocking-under-mutex``
    A direct blocking call (``sync()``/``fsync``, socket I/O,
    ``time.sleep``, ``select.select``) while a mutex is held — the bug
    class group commit exists to avoid.  Error severity; waivable with
    ``# lint: waive[LD003] reason`` when the hold is the documented
    contract (e.g. ``wal_sync="always"``).

LD004 ``blocking-chain-under-mutex``
    Same as LD003 but transitive: a self-method whose body (or callees)
    blocks, invoked while held.  Warning severity — flagged for humans,
    never fails the build, because the interesting chains (group-commit
    leader syncing for followers) release the mutex at runtime in ways
    a lexical pass cannot always see.

The pass is intentionally lexical and per-class: no inter-file type
inference, no decorator magic.  Precision over recall — every finding
should be worth reading.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, SEVERITY_WARNING
from repro.analysis.guarded import ClassContract, build_contract

__all__ = ["check_lock_discipline"]

Path = Tuple[str, ...]

#: attribute names that block regardless of receiver type
_BLOCKING_ATTRS = {
    "sync": "fsync-like sync()",
    "fsync": "fsync",
    "recv": "socket recv",
    "recv_into": "socket recv_into",
    "sendall": "socket sendall",
    "sendto": "socket sendto",
    "accept": "socket accept",
    "connect": "socket connect",
}

#: module-level blocking calls: (module name, attr) -> description
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep",
    ("select", "select"): "select.select",
    ("os", "fsync"): "os.fsync",
    ("os", "fdatasync"): "os.fdatasync",
}

#: method names that mutate their receiver in place
_MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popleft", "remove", "setdefault", "update",
}


def _resolve_path(node: ast.expr,
                  aliases: Dict[str, Path]) -> Optional[Path]:
    """Attribute chain rooted at ``self`` (directly or via an alias)
    -> path relative to self; None when not self-rooted."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        if node.id == "self":
            return tuple(reversed(parts))
        base = aliases.get(node.id)
        if base is not None:
            return base + tuple(reversed(parts))
    return None


def _module_call(func: ast.expr) -> Optional[Tuple[str, str]]:
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)):
        return (func.value.id, func.attr)
    return None


class _ClassChecker:
    def __init__(self, path: str, classdef: ast.ClassDef,
                 contract: ClassContract):
        self.path = path
        self.classdef = classdef
        self.contract = contract
        self.findings: List[Finding] = []
        self.methods: Dict[str, ast.FunctionDef] = {
            node.name: node for node in classdef.body
            if isinstance(node, ast.FunctionDef)}
        self.blocking_methods = self._compute_blocking_methods()

    # ------------------------------------------------- blocking closure

    def _direct_blocking(self, method: ast.FunctionDef) -> bool:
        for node in self._walk_no_nested(method):
            if isinstance(node, ast.Call):
                if self._blocking_call_desc(node) is not None:
                    return True
        return False

    def _self_calls(self, method: ast.FunctionDef) -> Set[str]:
        calls: Set[str] = set()
        for node in self._walk_no_nested(method):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"):
                calls.add(node.func.attr)
        return calls

    def _compute_blocking_methods(self) -> Set[str]:
        """Fixpoint of 'this method can block' over the self-call graph."""
        blocking = {name for name, m in self.methods.items()
                    if self._direct_blocking(m)}
        call_graph = {name: self._self_calls(m)
                      for name, m in self.methods.items()}
        changed = True
        while changed:
            changed = False
            for name, callees in call_graph.items():
                if name not in blocking and callees & blocking:
                    blocking.add(name)
                    changed = True
        return blocking

    @staticmethod
    def _walk_no_nested(method: ast.FunctionDef):
        """Walk a method body, not descending into nested defs/lambdas
        (their bodies execute later, under unknown lock state)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(method))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_call_desc(self, call: ast.Call) -> Optional[str]:
        mod = _module_call(call.func)
        if mod in _BLOCKING_MODULE_CALLS:
            return _BLOCKING_MODULE_CALLS[mod]
        if isinstance(call.func, ast.Attribute):
            return _BLOCKING_ATTRS.get(call.func.attr)
        return None

    # ---------------------------------------------------------- checking

    def check(self) -> List[Finding]:
        for method in self.methods.values():
            self._check_method(method)
        return self.findings

    def _method_initial_held(self, method: ast.FunctionDef) -> Set[Path]:
        contract = self.contract
        if method.name.endswith("_locked"):
            return {contract.mutex} if contract.mutex else set()
        holds = contract.holds_methods.get(method.name)
        if holds is not None:
            return {contract.canonical(holds)}
        return set()

    def _check_method(self, method: ast.FunctionDef) -> None:
        held = self._method_initial_held(method)
        aliases: Dict[str, Path] = {}
        self._walk_stmts(method.body, method, held, aliases)

    def _walk_stmts(self, stmts, method, held: Set[Path],
                    aliases: Dict[str, Path]) -> None:
        for stmt in stmts:
            self._walk_node(stmt, method, held, aliases)

    def _walk_node(self, node: ast.AST, method, held: Set[Path],
                   aliases: Dict[str, Path]) -> None:
        contract = self.contract
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # deferred execution: unknown lock state
        if isinstance(node, ast.With):
            added: Set[Path] = set()
            for item in node.items:
                self._visit_expr(item.context_expr, method, held, aliases)
                path = _resolve_path(item.context_expr, aliases)
                if path is not None:
                    canon = contract.canonical(path)
                    if (canon in contract.lock_paths()
                            or path in contract.lock_paths()):
                        added.add(canon)
            inner = held | added
            self._walk_stmts(node.body, method, inner, aliases)
            return
        if isinstance(node, ast.Assign):
            self._visit_expr(node.value, method, held, aliases)
            for target in node.targets:
                self._check_store_target(target, method, held, aliases)
            # track ``x = self`` / ``x = self.db`` aliases
            if (len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                path = _resolve_path(node.value, aliases)
                if path is not None:
                    aliases[node.targets[0].id] = path
                else:
                    aliases.pop(node.targets[0].id, None)
            return
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is not None:
                self._visit_expr(node.value, method, held, aliases)
            self._check_store_target(node.target, method, held, aliases)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_store_target(target, method, held, aliases)
            return
        if isinstance(node, ast.expr):
            self._visit_expr(node, method, held, aliases)
            return
        if isinstance(node, ast.Expr):
            self._visit_expr(node.value, method, held, aliases)
            return
        for child in ast.iter_child_nodes(node):
            self._walk_node(child, method, held, aliases)

    # expressions ---------------------------------------------------------

    def _visit_expr(self, node: ast.expr, method, held: Set[Path],
                    aliases: Dict[str, Path]) -> None:
        if isinstance(node, (ast.Lambda,)):
            return
        if isinstance(node, ast.Call):
            self._check_call(node, method, held, aliases)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx,
                                                          ast.Load):
            self._check_guarded_read(node, method, held, aliases)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, method, held, aliases)

    def _holding(self, held: Set[Path], required: Path) -> bool:
        required = self.contract.canonical(required)
        return required in held

    def _holding_any_prefix(self, held: Set[Path], prefix: Path) -> bool:
        return any(h[:len(prefix)] == prefix for h in held)

    def _check_call(self, call: ast.Call, method, held: Set[Path],
                    aliases: Dict[str, Path]) -> None:
        contract = self.contract
        func = call.func
        # blocking (direct)
        desc = self._blocking_call_desc(call)
        if desc is not None and held:
            self._add(call, "LD003", "blocking-under-mutex",
                      f"{desc} called while holding "
                      f"{self._held_names(held)} in {method.name}()")
        if isinstance(func, ast.Attribute):
            receiver = _resolve_path(func.value, aliases)
            name = func.attr
            if receiver is not None and name.endswith("_locked"):
                if receiver == ():
                    ok = (contract.mutex is None
                          or self._holding(held, contract.mutex))
                else:
                    ok = self._holding_any_prefix(held, receiver)
                if not ok:
                    self._add(call, "LD001", "unguarded-locked-call",
                              f"{'.'.join(('self',) + receiver + (name,))}"
                              f"() called from {method.name}() without "
                              f"holding the mutex")
            # transitive blocking (self-calls only)
            if (receiver == () and held
                    and name in self.blocking_methods
                    and self._blocking_call_desc(call) is None):
                self._add(call, "LD004", "blocking-chain-under-mutex",
                          f"self.{name}() may block (transitively) and "
                          f"is called while holding "
                          f"{self._held_names(held)} in {method.name}()",
                          severity=SEVERITY_WARNING)
            # mutator method on a guarded attribute
            if name in _MUTATORS and receiver is not None:
                self._check_mutation_path(call, receiver, method, held)

    def _check_store_target(self, target: ast.expr, method,
                            held: Set[Path],
                            aliases: Dict[str, Path]) -> None:
        node = target
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._check_store_target(elt, method, held, aliases)
            return
        if isinstance(node, ast.Subscript):
            node = node.value
        path = _resolve_path(node, aliases)
        if path is not None:
            self._check_mutation_path(target, path, method, held)

    def _check_mutation_path(self, node: ast.AST, path: Path, method,
                             held: Set[Path]) -> None:
        if method.name == "__init__":
            return
        if len(path) != 1:
            return
        attr = path[0]
        required = self.contract.guards.get(attr)
        if required is None:
            return
        if not self._holding(held, required):
            self._add(node, "LD002", "guarded-attr-escape",
                      f"self.{attr} (guarded by "
                      f"{'.'.join(required)}) mutated in "
                      f"{method.name}() without holding it")

    def _check_guarded_read(self, node: ast.Attribute, method,
                            held: Set[Path],
                            aliases: Dict[str, Path]) -> None:
        if method.name == "__init__":
            return
        path = _resolve_path(node, aliases)
        if path is None or len(path) != 1:
            return
        attr = path[0]
        if attr not in self.contract.guarded_reads:
            return
        required = self.contract.guards.get(attr)
        if required is None:
            return
        if not self._holding(held, required):
            self._add(node, "LD002", "guarded-attr-escape",
                      f"self.{attr} (guarded by {'.'.join(required)}, "
                      f"reads included) read in {method.name}() without "
                      f"holding it")

    # utilities -----------------------------------------------------------

    def _held_names(self, held: Set[Path]) -> str:
        return ",".join(sorted(".".join(p) for p in held)) or "<none>"

    def _add(self, node: ast.AST, rule: str, slug: str, message: str,
             severity: str = "error") -> None:
        self.findings.append(Finding(
            rule=rule, slug=slug, path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message, severity=severity))


def check_lock_discipline(path: str, tree: ast.Module,
                          comments: Dict[int, List[str]]
                          ) -> List[Finding]:
    """Run LD001–LD004 over every class in ``tree``."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        contract = build_contract(node, comments)
        if not contract.lock_paths():
            continue  # no locks, nothing to check
        checker = _ClassChecker(path, node, contract)
        findings.extend(checker.check())
    return findings
