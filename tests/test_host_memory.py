"""Device memory interface: MetaIn/MetaOut codecs, marshalling layout."""

import pytest

from repro.errors import FpgaProtocolError
from repro.fpga.config import CONFIG_2_INPUT, CONFIG_9_INPUT
from repro.fpga.dram import Dram
from repro.host.memory import (
    MetaInEntry,
    MetaOutEntry,
    align_up,
    decode_meta_in,
    decode_meta_out,
    encode_meta_in,
    encode_meta_out,
    marshal_inputs,
)
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())


class TestAlign:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(129, 64) == 192

    def test_zero(self):
        assert align_up(0, 8) == 0

    def test_bad_alignment(self):
        with pytest.raises(FpgaProtocolError):
            align_up(10, 0)


class TestMetaCodecs:
    def test_meta_in_roundtrip(self):
        inputs = [
            [MetaInEntry(0, 100, 200, 5000)],
            [MetaInEntry(100, 50, 6000, 2000),
             MetaInEntry(150, 60, 8000, 3000)],
        ]
        assert decode_meta_in(encode_meta_in(inputs)) == inputs

    def test_meta_in_empty(self):
        assert decode_meta_in(encode_meta_in([])) == []

    def test_meta_out_roundtrip(self):
        entries = [
            MetaOutEntry(4096, b"aaa" + b"\x00" * 8, b"zzz" + b"\x00" * 8),
            MetaOutEntry(123, b"k1", b"k2"),
        ]
        assert decode_meta_out(encode_meta_out(entries)) == entries

    def test_meta_out_empty(self):
        assert decode_meta_out(encode_meta_out([])) == []


class TestMarshal:
    def _reader(self, entries, plain_options):
        image = build_table_image(entries, plain_options, ICMP)
        return TableReader(image, ICMP, plain_options)

    def test_layout_alignment(self, plain_options):
        readers = [[self._reader(make_entries(80, seed=1), plain_options)],
                   [self._reader(make_entries(90, seed=2), plain_options)]]
        dram = Dram(size=1 << 24)
        image = marshal_inputs(dram, CONFIG_2_INPUT, readers)
        for tables in image.layouts:
            for layout in tables:
                assert layout.data_offset % CONFIG_2_INPUT.w_in == 0

    def test_dma_byte_count_includes_everything(self, plain_options):
        readers = [[self._reader(make_entries(80, seed=1), plain_options)]]
        dram = Dram(size=1 << 24)
        image = marshal_inputs(dram, CONFIG_2_INPUT, readers)
        table_bytes = readers[0][0].file_size
        assert image.total_bytes > table_bytes  # + index + MetaIn

    def test_meta_in_readable_from_dram(self, plain_options):
        readers = [[self._reader(make_entries(40, seed=3), plain_options)]]
        dram = Dram(size=1 << 24)
        image = marshal_inputs(dram, CONFIG_2_INPUT, readers)
        raw = dram.read(image.meta_in_offset, len(image.meta_in))
        decoded = decode_meta_in(raw)
        assert len(decoded) == 1
        assert decoded[0][0].data_size == readers[0][0].file_size

    def test_too_many_inputs_rejected(self, plain_options):
        readers = [[self._reader(make_entries(10, seed=i), plain_options)]
                   for i in range(3)]
        dram = Dram(size=1 << 24)
        with pytest.raises(FpgaProtocolError):
            marshal_inputs(dram, CONFIG_2_INPUT, readers)

    def test_nine_input_marshal(self, plain_options):
        readers = [[self._reader(make_entries(30, seed=i), plain_options)]
                   for i in range(9)]
        dram = Dram(size=1 << 24)
        image = marshal_inputs(dram, CONFIG_9_INPUT, readers)
        assert len(image.layouts) == 9
