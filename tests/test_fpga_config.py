"""FpgaConfig validation and derived quantities."""

import pytest

from repro.errors import InvalidArgumentError
from repro.fpga.config import (
    CONFIG_2_INPUT,
    CONFIG_9_INPUT,
    FpgaConfig,
    PipelineVariant,
)


class TestValidation:
    def test_defaults_valid(self):
        config = FpgaConfig()
        assert config.num_inputs == 2
        assert config.variant is PipelineVariant.FULL

    def test_single_input_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FpgaConfig(num_inputs=1)

    def test_value_width_over_axi_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FpgaConfig(value_width=128)

    def test_value_width_over_w_in_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FpgaConfig(value_width=16, w_in=8)

    def test_zero_clock_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FpgaConfig(clock_mhz=0)

    def test_bad_fifo_depth_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FpgaConfig(kv_fifo_depth=0)


class TestDerived:
    def test_cycles_to_seconds_at_200mhz(self):
        config = FpgaConfig(clock_mhz=200)
        assert config.cycles_to_seconds(200e6) == pytest.approx(1.0)

    def test_fanin_depth(self):
        assert FpgaConfig(num_inputs=2).comparer_fanin_depth() == 1
        assert FpgaConfig(num_inputs=4, value_width=8,
                          w_in=16).comparer_fanin_depth() == 2
        assert FpgaConfig(num_inputs=9, value_width=8,
                          w_in=8).comparer_fanin_depth() == 4

    def test_paper_configs(self):
        assert CONFIG_2_INPUT.num_inputs == 2
        assert CONFIG_2_INPUT.w_in == 64
        assert CONFIG_9_INPUT.num_inputs == 9
        assert CONFIG_9_INPUT.value_width == 8
        assert CONFIG_9_INPUT.w_in == 8
        assert CONFIG_9_INPUT.w_out == 64
