"""Length-prefixed wire protocol for the KV service.

Every message — request or response — is one frame::

    u32 length (big-endian) | payload (length bytes)

Request payload::

    u8 op | body

    PING   ->  (empty)
    GET    ->  varstring key
    PUT    ->  varstring key | varstring value
    DELETE ->  varstring key
    BATCH  ->  WriteBatch wire format (sequence field ignored)
    STATS  ->  (empty)

Response payload::

    u8 status | body

    OK        -> op-specific body (GET: varstring value; STATS: JSON)
    NOT_FOUND -> (empty)
    ERROR     -> UTF-8 message
    BUSY      -> UTF-8 message (shard backpressure; retry later)

Key/value strings reuse the store's varint length-prefixed encoding
(:func:`repro.util.coding.put_length_prefixed_slice`), and ``BATCH``
bodies are literally :meth:`repro.lsm.WriteBatch.serialize` output, so
the service speaks the same bytes the WAL persists.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import CorruptionError
from repro.util.coding import (
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)

# Request opcodes.
OP_PING = 0
OP_GET = 1
OP_PUT = 2
OP_DELETE = 3
OP_BATCH = 4
OP_STATS = 5

OP_NAMES = {
    OP_PING: "ping", OP_GET: "get", OP_PUT: "put",
    OP_DELETE: "delete", OP_BATCH: "batch", OP_STATS: "stats",
}

# Response statuses.
OK = 0
NOT_FOUND = 1
ERROR = 2
BUSY = 3

STATUS_NAMES = {OK: "ok", NOT_FOUND: "not_found", ERROR: "error",
                BUSY: "busy"}

#: Frames larger than this are rejected before allocation (64 MiB).
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(CorruptionError):
    """Malformed frame or payload."""


# ---------------------------------------------------------------- framing

def write_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LEN.pack(len(payload)) + payload)


def read_frame(sock: socket.socket) -> bytes | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    header = _read_exact(sock, _LEN.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    if length == 0:
        return b""
    payload = _read_exact(sock, length, eof_ok=False)
    assert payload is not None
    return payload


def _read_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------- requests

def encode_request(op: int, *slices: bytes, raw: bytes = b"") -> bytes:
    """``u8 op`` + varstring ``slices`` + verbatim ``raw`` tail."""
    out = bytearray([op])
    for piece in slices:
        put_length_prefixed_slice(out, piece)
    out += raw
    return bytes(out)


def decode_request(payload: bytes) -> tuple[int, bytes]:
    """Split a request payload into (op, body)."""
    if not payload:
        raise ProtocolError("empty request payload")
    op = payload[0]
    if op not in OP_NAMES:
        raise ProtocolError(f"unknown opcode {op}")
    return op, payload[1:]


def decode_slices(body: bytes, count: int) -> list[bytes]:
    """Decode exactly ``count`` varstrings; the body must be consumed."""
    out = []
    pos = 0
    try:
        for _ in range(count):
            piece, pos = get_length_prefixed_slice(body, pos)
            out.append(piece)
    except (CorruptionError, IndexError) as error:
        raise ProtocolError(f"truncated request body: {error}") from error
    if pos != len(body):
        raise ProtocolError("trailing bytes after request body")
    return out


# -------------------------------------------------------------- responses

def encode_response(status: int, body: bytes = b"") -> bytes:
    return bytes([status]) + body


def decode_response(payload: bytes) -> tuple[int, bytes]:
    if not payload:
        raise ProtocolError("empty response payload")
    status = payload[0]
    if status not in STATUS_NAMES:
        raise ProtocolError(f"unknown status {status}")
    return status, payload[1:]
