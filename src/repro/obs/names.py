"""Canonical metric families and per-subsystem binders.

One table maps every family the repro emits to its kind, help text and
(for histograms) buckets, so the Prometheus exposition is stable and the
paper's figures have documented counterparts:

* ``lsm_*``        — the key-value store (Fig 14/15 write path, stalls,
  levels, block cache);
* ``scheduler_*``  — Fig 6 routing and the per-phase offload time that
  Table VIII decomposes;
* ``fpga_pcie_*``  — the DMA traffic behind Table VIII's PCIe share;
* ``fpga_pipeline_*`` — per-module busy/stall cycles and FIFO occupancy
  behind Table V / Figs 9-13.

The ``bind_*`` helpers hand instrumented components pre-created child
metrics, so hot paths increment objects instead of doing name lookups.
"""

from __future__ import annotations

from repro.obs.registry import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
)

#: Group-commit batch-count buckets (batches per spliced WAL record).
GROUP_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: (name, kind, help, buckets-or-None)
FAMILIES: tuple[tuple, ...] = (
    # -- LSM store ----------------------------------------------------
    ("lsm_writes_total", "counter",
     "Write operations committed (batch entries).", None),
    ("lsm_write_bytes_total", "counter",
     "User bytes accepted by the write path.", None),
    ("lsm_reads_total", "counter", "Point lookups issued.", None),
    ("lsm_read_hits_total", "counter",
     "Point lookups that found a live value.", None),
    ("lsm_flushes_total", "counter",
     "Memtable dumps to level-0 SSTables (compaction type 1).", None),
    ("lsm_flush_bytes_total", "counter",
     "Bytes written by memtable flushes.", None),
    ("lsm_compactions_total", "counter",
     "Merge compactions executed (compaction type 2).", None),
    ("lsm_compaction_input_bytes_total", "counter",
     "Bytes read by merge compactions.", None),
    ("lsm_compaction_output_bytes_total", "counter",
     "Bytes written by merge compactions.", None),
    ("lsm_write_stalls_total", "counter",
     "Writes that hit the L0 stop trigger (the paper's write pause).",
     None),
    ("lsm_wal_syncs_total", "counter",
     "WAL fsyncs issued by the write path (one per commit under "
     "wal_sync=always, one per spliced group under group, clock-driven "
     "under interval).", None),
    ("lsm_wal_sync_seconds", "histogram",
     "Duration of each WAL flush+fsync on the acknowledgement path.",
     SECONDS_BUCKETS),
    ("lsm_group_commit_batches", "histogram",
     "Writer batches spliced into one WAL record per group commit "
     "(1 = no batching win).", GROUP_BUCKETS),
    ("lsm_write_stall_seconds", "histogram",
     "Foreground write-path time blocked on maintenance: inline "
     "flush/compaction episodes in synchronous mode, waits on the "
     "background driver (memtable handoff, L0 stop) otherwise.",
     SECONDS_BUCKETS),
    ("lsm_snapshots_live", "gauge",
     "Snapshot handles currently registered (compaction preserves "
     "versions visible to them).", None),
    ("lsm_snapshot_merges_total", "counter",
     "Merge compactions routed to the snapshot-preserving software "
     "merge because live snapshots pinned old versions.", None),
    ("lsm_level_files", "gauge",
     "Live SSTable count per level.", None),
    ("lsm_level_bytes", "gauge",
     "Live SSTable bytes per level.", None),
    ("lsm_level_write_bytes_total", "counter",
     "Bytes installed into each level (flush output for level 0, "
     "compaction output for deeper levels).", None),
    ("lsm_level_read_bytes_total", "counter",
     "Bytes read from each level by merge compactions.", None),
    ("lsm_level_write_amp", "gauge",
     "Per-level write amplification: bytes written into the level / "
     "user write bytes.", None),
    ("lsm_level_space_amp", "gauge",
     "Per-level space amplification: level bytes / bytes of the last "
     "non-empty level.", None),
    ("lsm_level_read_amp", "gauge",
     "Estimated per-level read amplification: sorted runs a point "
     "lookup may touch (file count at L0, 1 for non-empty deeper "
     "levels).", None),
    ("lsm_op_latency_window_seconds", "gauge",
     "Sliding-window operation latency quantiles, by op "
     "(get|put|write) and quantile (p50|p95|p99|p999).", None),
    ("lsm_tenant_ops_total", "counter",
     "Operations by tenant and op (get|put|delete|write).", None),
    ("lsm_block_cache_hits_total", "counter",
     "Block cache hits.", None),
    ("lsm_block_cache_misses_total", "counter",
     "Block cache misses.", None),
    ("lsm_block_cache_usage_bytes", "gauge",
     "Bytes of payload currently cached.", None),
    # -- Compaction scheduler (Fig 6 / Table VIII) --------------------
    ("scheduler_tasks_total", "counter",
     "Merge compactions by route (fpga|software).", None),
    ("scheduler_input_bytes_total", "counter",
     "Compaction input bytes by route.", None),
    ("scheduler_phase_seconds_total", "counter",
     "Modeled seconds per offload phase "
     "(marshal|pcie_in|kernel|pcie_out|software|batch).", None),
    ("scheduler_backend_tasks_total", "counter",
     "Merge compactions by executor backend (cpu|fpga-sim|batch).", None),
    ("scheduler_backend_input_bytes_total", "counter",
     "Compaction input bytes by executor backend.", None),
    ("scheduler_backend_seconds_total", "counter",
     "Measured wall-clock seconds executing merges, by backend — the "
     "quantity the routing cost models estimate.", None),
    ("scheduler_task_input_bytes", "histogram",
     "Distribution of per-task compaction input sizes.", BYTES_BUCKETS),
    ("scheduler_faults_total", "counter",
     "Offload attempts that failed, by kind "
     "(protocol|timeout|dma).", None),
    ("scheduler_retries_total", "counter",
     "FPGA offload attempts retried after a fault.", None),
    ("scheduler_fallbacks_total", "counter",
     "Offloaded tasks degraded to the software merge after the device "
     "kept failing.", None),
    ("scheduler_task_window_seconds", "gauge",
     "Sliding-window compaction task duration quantiles, by quantile "
     "(p50|p95|p99|p999).", None),
    ("sim_stall_window_seconds", "gauge",
     "Sliding-window write-stall quantiles on *simulated* time, by sim "
     "mode and quantile (p50|p95|p99|p999).", None),
    ("sim_op_latency_window_seconds", "gauge",
     "Sliding-window open-loop arrival-to-completion latency quantiles "
     "on *simulated* time, by tenant/op/quantile — coordinated-omission "
     "free (includes queueing delay).", None),
    # -- SLO engine ---------------------------------------------------
    ("slo_events_total", "counter",
     "Operations classified against an SLO, by slo/tenant/outcome "
     "(good|bad).", None),
    ("slo_burn_rate", "gauge",
     "Error-budget burn rate by slo/tenant/policy/window (short|long); "
     "1.0 consumes the budget exactly over the SLO period.", None),
    ("slo_error_budget_remaining", "gauge",
     "Fraction of the error budget left over the longest policy "
     "window, by slo/tenant.", None),
    ("slo_alerts_total", "counter",
     "Burn-rate alert transitions by slo/tenant/policy/state "
     "(firing|resolved).", None),
    # -- Lock watchdog (repro.analysis.watchdog) ----------------------
    ("lockwatch_acquires", "gauge",
     "Instrumented lock acquisitions observed by the lock-order "
     "watchdog.", None),
    ("lockwatch_edges", "gauge",
     "Distinct held->acquired edges in the watchdog's lock-order "
     "graph.", None),
    ("lockwatch_cycles", "gauge",
     "Lock-order cycles detected (potential ABBA deadlocks); any "
     "non-zero value is a bug.", None),
    ("lockwatch_long_holds", "gauge",
     "Lock holds exceeding the watchdog's long-hold threshold.", None),
    # -- Background compaction driver (paper Fig 6's task queue) ------
    ("driver_queue_depth", "gauge",
     "Compaction tasks queued for the driver's units.", None),
    ("driver_tasks_total", "counter",
     "Tasks executed by the background driver, by kind "
     "(flush|compaction).", None),
    # -- PCIe link (Table VIII) ---------------------------------------
    ("fpga_pcie_transfers_total", "counter",
     "DMA transfers by direction (in|out).", None),
    ("fpga_pcie_bytes_total", "counter",
     "DMA payload bytes by direction.", None),
    ("fpga_pcie_seconds_total", "counter",
     "Modeled DMA seconds by direction.", None),
    # -- FPGA pipeline (Table V / Figs 9-13) --------------------------
    ("fpga_pipeline_runs_total", "counter",
     "Kernel invocations timed by the pipeline simulator.", None),
    ("fpga_pipeline_cycles_total", "counter",
     "Total kernel cycles across runs.", None),
    ("fpga_pipeline_busy_cycles_total", "counter",
     "Busy cycles per module (decoder|comparer|value_bus|encoder|writer).",
     None),
    ("fpga_pipeline_stall_cycles_total", "counter",
     "Stall cycles by kind (decoder_wait = Comparer starved, "
     "backpressure = Decoder blocked on a full KV FIFO).", None),
    ("fpga_pipeline_comparer_rounds_total", "counter",
     "Selection rounds executed by the Comparer.", None),
    ("fpga_pipeline_pairs_total", "counter",
     "Pairs leaving the Comparer by outcome (transferred|dropped).", None),
    ("fpga_pipeline_input_bytes_total", "counter",
     "SSTable bytes consumed by the kernel.", None),
    ("fpga_pipeline_output_bytes_total", "counter",
     "SSTable bytes produced by the kernel.", None),
    ("fpga_pipeline_kernel_seconds_total", "counter",
     "Kernel cycles converted to seconds at the configured clock.", None),
    ("fpga_pipeline_fifo_high_water", "gauge",
     "High-water KV-FIFO occupancy per input (elements).", None),
    ("fpga_pipeline_kernel_seconds", "histogram",
     "Distribution of per-run kernel times.", SECONDS_BUCKETS),
    ("fpga_pipeline_bottleneck_runs_total", "counter",
     "Kernel runs by dominating module from the critical-path "
     "attribution pass (decoder|comparer|value_bus|encoder|writer|"
     "backpressure).", None),
    ("fpga_pipeline_bottleneck_cycles_total", "counter",
     "Kernel cycles attributed per module by the critical-path pass; "
     "per run the module cycles partition total_cycles exactly.", None),
)

_HELP = {name: (kind, help_text, buckets)
         for name, kind, help_text, buckets in FAMILIES}


def register_all(registry: MetricsRegistry) -> None:
    """Pre-register every canonical family so exposition always shows the
    complete metric surface, sampled or not."""
    for name, kind, help_text, buckets in FAMILIES:
        registry.describe(name, kind, help_text, buckets=buckets)


def _counter(registry: MetricsRegistry, name: str, **labels):
    kind, help_text, _ = _HELP[name]
    assert kind == "counter", name
    return registry.counter(name, help=help_text, **labels)


def _gauge(registry: MetricsRegistry, name: str, **labels):
    kind, help_text, _ = _HELP[name]
    assert kind == "gauge", name
    return registry.gauge(name, help=help_text, **labels)


def _histogram(registry: MetricsRegistry, name: str, **labels):
    kind, help_text, buckets = _HELP[name]
    assert kind == "histogram", name
    return registry.histogram(name, help=help_text, buckets=buckets,
                              **labels)


class LsmMetrics:
    """The store's bound children.  ``counters[field]`` is keyed by the
    short field names that :class:`repro.lsm.db.DbStats` exposes."""

    def __init__(self, registry: MetricsRegistry, db: str, inst: str):
        self.registry = registry
        self.labels = {"db": db, "inst": inst}
        self.counters = {
            "writes": _counter(registry, "lsm_writes_total", **self.labels),
            "write_bytes": _counter(
                registry, "lsm_write_bytes_total", **self.labels),
            "reads": _counter(registry, "lsm_reads_total", **self.labels),
            "read_hits": _counter(
                registry, "lsm_read_hits_total", **self.labels),
            "flushes": _counter(
                registry, "lsm_flushes_total", **self.labels),
            "flush_bytes": _counter(
                registry, "lsm_flush_bytes_total", **self.labels),
            "compactions": _counter(
                registry, "lsm_compactions_total", **self.labels),
            "compaction_input_bytes": _counter(
                registry, "lsm_compaction_input_bytes_total", **self.labels),
            "compaction_output_bytes": _counter(
                registry, "lsm_compaction_output_bytes_total", **self.labels),
            "stalls": _counter(
                registry, "lsm_write_stalls_total", **self.labels),
            "block_cache_hits": _counter(
                registry, "lsm_block_cache_hits_total", **self.labels),
            "block_cache_misses": _counter(
                registry, "lsm_block_cache_misses_total", **self.labels),
        }
        self.cache_usage = _gauge(
            registry, "lsm_block_cache_usage_bytes", **self.labels)
        self.stall_seconds = _histogram(
            registry, "lsm_write_stall_seconds", **self.labels)
        self.wal_syncs = _counter(
            registry, "lsm_wal_syncs_total", **self.labels)
        self.wal_sync_seconds = _histogram(
            registry, "lsm_wal_sync_seconds", **self.labels)
        self.group_commit_batches = _histogram(
            registry, "lsm_group_commit_batches", **self.labels)
        self.snapshots_live = _gauge(
            registry, "lsm_snapshots_live", **self.labels)
        self.snapshot_merges = _counter(
            registry, "lsm_snapshot_merges_total", **self.labels)
        self._level_files: dict[int, object] = {}
        self._level_bytes: dict[int, object] = {}
        self._level_write_bytes: dict[int, object] = {}
        self._level_read_bytes: dict[int, object] = {}
        self._level_amps: dict[tuple[str, int], object] = {}

    def value(self, field: str) -> float:
        return self.counters[field].value

    def set_level(self, level: int, files: int, nbytes: int) -> None:
        gauge_f = self._level_files.get(level)
        if gauge_f is None:
            gauge_f = self._level_files[level] = _gauge(
                self.registry, "lsm_level_files",
                level=str(level), **self.labels)
        gauge_b = self._level_bytes.get(level)
        if gauge_b is None:
            gauge_b = self._level_bytes[level] = _gauge(
                self.registry, "lsm_level_bytes",
                level=str(level), **self.labels)
        gauge_f.set(files)
        gauge_b.set(nbytes)

    def add_level_write(self, level: int, nbytes: int) -> None:
        """Bytes installed into ``level`` (flush or compaction output)."""
        counter = self._level_write_bytes.get(level)
        if counter is None:
            counter = self._level_write_bytes[level] = _counter(
                self.registry, "lsm_level_write_bytes_total",
                level=str(level), **self.labels)
        counter.inc(nbytes)

    def add_level_read(self, level: int, nbytes: int) -> None:
        """Bytes read from ``level`` by a merge compaction."""
        counter = self._level_read_bytes.get(level)
        if counter is None:
            counter = self._level_read_bytes[level] = _counter(
                self.registry, "lsm_level_read_bytes_total",
                level=str(level), **self.labels)
        counter.inc(nbytes)

    def level_write_bytes(self, level: int) -> float:
        counter = self._level_write_bytes.get(level)
        return counter.value if counter is not None else 0.0

    def level_read_bytes(self, level: int) -> float:
        counter = self._level_read_bytes.get(level)
        return counter.value if counter is not None else 0.0

    def set_level_amp(self, level: int, write_amp: float,
                      space_amp: float, read_amp: float) -> None:
        for name, value in (("lsm_level_write_amp", write_amp),
                            ("lsm_level_space_amp", space_amp),
                            ("lsm_level_read_amp", read_amp)):
            gauge = self._level_amps.get((name, level))
            if gauge is None:
                gauge = self._level_amps[(name, level)] = _gauge(
                    self.registry, name, level=str(level), **self.labels)
            gauge.set(value)


class SchedulerMetrics:
    """The compaction scheduler's bound children."""

    ROUTES = ("fpga", "software")
    PHASES = ("marshal", "pcie_in", "kernel", "pcie_out", "software",
              "batch")
    BACKENDS = ("cpu", "fpga-sim", "batch")

    def __init__(self, registry: MetricsRegistry, inst: str):
        self.registry = registry
        self.labels = {"inst": inst}
        self.tasks = {route: _counter(
            registry, "scheduler_tasks_total", route=route, **self.labels)
            for route in self.ROUTES}
        self.input_bytes = {route: _counter(
            registry, "scheduler_input_bytes_total", route=route,
            **self.labels) for route in self.ROUTES}
        self.backend_tasks = {backend: _counter(
            registry, "scheduler_backend_tasks_total", backend=backend,
            **self.labels) for backend in self.BACKENDS}
        self.backend_input_bytes = {backend: _counter(
            registry, "scheduler_backend_input_bytes_total",
            backend=backend, **self.labels)
            for backend in self.BACKENDS}
        self.backend_seconds = {backend: _counter(
            registry, "scheduler_backend_seconds_total", backend=backend,
            **self.labels) for backend in self.BACKENDS}
        self.phase_seconds = {phase: _counter(
            registry, "scheduler_phase_seconds_total", phase=phase,
            **self.labels) for phase in self.PHASES}
        self.task_input_bytes = _histogram(
            registry, "scheduler_task_input_bytes", **self.labels)
        self.faults = {kind: _counter(
            registry, "scheduler_faults_total", kind=kind, **self.labels)
            for kind in ("protocol", "timeout", "dma")}
        self.retries = _counter(
            registry, "scheduler_retries_total", **self.labels)
        self.fallbacks = _counter(
            registry, "scheduler_fallbacks_total", **self.labels)


class DriverMetrics:
    """The background compaction driver's bound children."""

    KINDS = ("flush", "compaction")

    def __init__(self, registry: MetricsRegistry, inst: str):
        self.registry = registry
        self.labels = {"inst": inst}
        self.queue_depth = _gauge(
            registry, "driver_queue_depth", **self.labels)
        self.tasks = {kind: _counter(
            registry, "driver_tasks_total", kind=kind, **self.labels)
            for kind in self.KINDS}


def stall_histogram(registry: MetricsRegistry, **labels):
    """Bind the write-stall duration histogram (shared by the functional
    store and the discrete-event system simulator)."""
    return _histogram(registry, "lsm_write_stall_seconds", **labels)


class PcieMetrics:
    """Per-device DMA counters."""

    def __init__(self, registry: MetricsRegistry):
        self.transfers = {d: _counter(
            registry, "fpga_pcie_transfers_total", direction=d)
            for d in ("in", "out")}
        self.bytes = {d: _counter(
            registry, "fpga_pcie_bytes_total", direction=d)
            for d in ("in", "out")}
        self.seconds = {d: _counter(
            registry, "fpga_pcie_seconds_total", direction=d)
            for d in ("in", "out")}

    def record(self, direction: str, nbytes: int, seconds: float) -> None:
        self.transfers[direction].inc()
        self.bytes[direction].inc(nbytes)
        self.seconds[direction].inc(seconds)


def publish_timing_report(registry: MetricsRegistry, report,
                          config) -> None:
    """Fold one :class:`repro.fpga.pipeline_sim.TimingReport` into the
    ``fpga_pipeline_*`` families."""
    _counter(registry, "fpga_pipeline_runs_total").inc()
    _counter(registry, "fpga_pipeline_cycles_total").inc(
        report.total_cycles)
    for module, cycles in (
            ("decoder", report.decoder_busy_cycles),
            ("comparer", report.comparer_busy_cycles),
            ("value_bus", report.value_bus_busy_cycles),
            ("encoder", report.encoder_busy_cycles),
            ("writer", report.writer_busy_cycles)):
        _counter(registry, "fpga_pipeline_busy_cycles_total",
                 module=module).inc(cycles)
    _counter(registry, "fpga_pipeline_stall_cycles_total",
             kind="decoder_wait").inc(report.decoder_stall_cycles)
    _counter(registry, "fpga_pipeline_stall_cycles_total",
             kind="backpressure").inc(report.decoder_backpressure_cycles)
    _counter(registry, "fpga_pipeline_comparer_rounds_total").inc(
        report.comparer_rounds)
    _counter(registry, "fpga_pipeline_pairs_total",
             outcome="transferred").inc(report.pairs_transferred)
    _counter(registry, "fpga_pipeline_pairs_total",
             outcome="dropped").inc(report.pairs_dropped)
    _counter(registry, "fpga_pipeline_input_bytes_total").inc(
        report.input_bytes)
    _counter(registry, "fpga_pipeline_output_bytes_total").inc(
        report.output_bytes)
    kernel_seconds = report.kernel_seconds(config)
    _counter(registry, "fpga_pipeline_kernel_seconds_total").inc(
        kernel_seconds)
    _histogram(registry, "fpga_pipeline_kernel_seconds").observe(
        kernel_seconds)
    for input_no, occupancy in enumerate(report.fifo_high_water):
        _gauge(registry, "fpga_pipeline_fifo_high_water",
               input=str(input_no)).set_max(occupancy)
