"""CPU cost model, calibrated to the paper's measured baseline.

The paper's Table V reports a single i7-8700K thread compacting at
5.3-14.8 MB/s depending on value length.  Working backwards, one merged
pair costs

    t_pair = fixed + heap * (ceil(log2 N) - 1) + per_byte * bytes
             (+ a cache-pressure surcharge on value bytes beyond 1 KB)

and a two-point fit to the L_value = 64 and 2048 rows gives
``fixed = 10.4 us`` and ``per_byte = 70.2 ns`` — which then predicts the
four interior rows within ~15% (the L=1024 row, where the paper's CPU has
a local peak, is the worst).  The >1 KB surcharge reproduces the paper's
observation that CPU compaction *slows down* from L=1024 to L=2048
("even for CPU ... the value data movement also degrades the compaction
performance").

The same model prices the other CPU work the system simulator needs:
memtable inserts, WAL appends, flush encoding, and the host-side
marshalling around an FPGA offload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CpuCostModel:
    """Per-operation CPU timings (seconds)."""

    #: Fixed merge cost per pair: decode varints, heap pop/push, branchy
    #: restart-point bookkeeping, encode.
    merge_fixed_per_pair: float = 10.4e-6
    #: Streaming cost per byte moved through decode/compare/encode.
    merge_per_byte: float = 70.2e-9
    #: Extra cost per additional level of merge fan-in: heap sifts,
    #: branch misses and key traffic in an L0-style many-way merge.
    merge_heap_level: float = 5.0e-6
    #: Cache-pressure surcharge on value bytes beyond this threshold.
    cache_knee_bytes: int = 1024
    cache_surcharge: float = 0.15
    #: Memtable skiplist insert: fixed + per-byte copy.
    memtable_insert_fixed: float = 1.2e-6
    memtable_insert_per_byte: float = 2.0e-9
    #: WAL append (buffered, no fsync per record).
    wal_append_fixed: float = 0.6e-6
    wal_append_per_byte: float = 1.0e-9
    #: Flush encoding (memtable -> L0 table): sequential, snappy.
    flush_per_byte: float = 5.0e-9
    #: Client-read slowdown when the background merge saturates its core
    #: (shared LLC/memory bandwidth) — the paper's "main threads could be
    #: slowed down" effect; applied per unit of merge-core utilization.
    read_contention_factor: float = 0.15
    #: Host-side bookkeeping around one FPGA offload (task setup, meta
    #: marshalling, result installation) — excludes PCIe and disk I/O.
    offload_fixed: float = 150e-6
    offload_per_byte: float = 0.8e-9
    #: In-tree LevelDB compaction cost (per pair / per byte).  NOTE: the
    #: paper's Table V CPU column (5-13 MB/s) comes from its extracted
    #: single-thread comparison harness and is mutually inconsistent with
    #: its own end-to-end LevelDB throughput (~2.5 MB/s at write
    #: amplification ~25 requires ~65 MB/s of merge bandwidth).  The
    #: system simulator therefore prices *in-system* software compaction
    #: with these separately calibrated constants (~60-66 MB/s, nearly
    #: value-length-neutral), while the Table V / Fig 9/12/13 benchmarks
    #: keep the harness constants above.  Recorded in EXPERIMENTS.md.
    system_merge_fixed_per_pair: float = 0.3e-6
    system_merge_per_byte: float = 28.0e-9
    #: Point-read CPU work: memtable probe, bloom filters, index search.
    read_fixed: float = 8.0e-6
    #: Decoding one cached data block entry (prefix-restart scan).
    read_block_decode: float = 6.0e-6
    #: Advancing a scan iterator by one entry.
    scan_next_entry: float = 1.5e-6

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def merge_pair_seconds(self, key_length: int, value_length: int,
                           num_inputs: int = 2) -> float:
        """Cost for one pair through the software merge."""
        pair_bytes = key_length + value_length
        cost = self.merge_fixed_per_pair + self.merge_per_byte * pair_bytes
        fanin_levels = max(1, math.ceil(math.log2(max(2, num_inputs))))
        cost += self.merge_heap_level * (fanin_levels - 1)
        overflow = max(0, value_length - self.cache_knee_bytes)
        cost += self.merge_per_byte * self.cache_surcharge * overflow
        return cost

    def compaction_speed_mbps(self, user_key_length: int, value_length: int,
                              num_inputs: int = 2,
                              pair_overhead_bytes: int = 4) -> float:
        """The paper's metric for the CPU baseline (Table V column 1)."""
        pair_file_bytes = user_key_length + value_length + pair_overhead_bytes
        seconds = self.merge_pair_seconds(user_key_length + 8, value_length,
                                          num_inputs)
        return pair_file_bytes / seconds / 1e6

    def compaction_seconds(self, input_bytes: int, user_key_length: int,
                           value_length: int, num_inputs: int = 2) -> float:
        """Time to software-compact ``input_bytes`` in the *harness*
        model (Table V calibration)."""
        speed = self.compaction_speed_mbps(user_key_length, value_length,
                                           num_inputs)
        return input_bytes / (speed * 1e6)

    def system_merge_speed_mbps(self, user_key_length: int,
                                value_length: int,
                                pair_overhead_bytes: int = 4) -> float:
        """In-tree LevelDB compaction bandwidth (see the calibration note
        on ``system_merge_per_byte``)."""
        pair_file_bytes = user_key_length + value_length + pair_overhead_bytes
        pair_bytes = user_key_length + 8 + value_length
        seconds = (self.system_merge_fixed_per_pair
                   + self.system_merge_per_byte * pair_bytes)
        return pair_file_bytes / seconds / 1e6

    def system_compaction_seconds(self, input_bytes: int,
                                  user_key_length: int,
                                  value_length: int) -> float:
        """Time for LevelDB's own background thread to compact
        ``input_bytes``."""
        speed = self.system_merge_speed_mbps(user_key_length, value_length)
        return input_bytes / (speed * 1e6)

    # ------------------------------------------------------------------
    # Foreground write path
    # ------------------------------------------------------------------

    def write_seconds(self, key_length: int, value_length: int) -> float:
        """One put: WAL append + memtable insert."""
        nbytes = key_length + value_length
        return (self.wal_append_fixed + self.wal_append_per_byte * nbytes
                + self.memtable_insert_fixed
                + self.memtable_insert_per_byte * nbytes)

    def flush_seconds(self, memtable_bytes: int) -> float:
        """Encode an immutable memtable into an L0 table (CPU part)."""
        return memtable_bytes * self.flush_per_byte

    def offload_seconds(self, input_bytes: int) -> float:
        """Host CPU overhead of dispatching one FPGA compaction."""
        return self.offload_fixed + self.offload_per_byte * input_bytes

    def read_hit_seconds(self) -> float:
        """Point read served from cache."""
        return self.read_fixed + self.read_block_decode

    def scan_seconds(self, entries: int) -> float:
        """CPU part of a range scan of ``entries`` (I/O priced by the
        disk model)."""
        return self.read_fixed + entries * self.scan_next_entry
