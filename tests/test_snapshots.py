"""Snapshot reads: point-in-time gets and scans."""

import pytest

from repro.errors import DBStateError, NotFoundError
from repro.lsm import LsmDB
from repro.lsm.db import Snapshot
from repro.lsm.env import MemEnv


@pytest.fixture
def db(options):
    return LsmDB("snapdb", options, env=MemEnv(), auto_compact=False)


class TestSnapshotGet:
    def test_sees_value_at_capture_time(self, db):
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        assert db.get(b"k", snapshot=snap) == b"v1"

    def test_key_created_after_snapshot_invisible(self, db):
        snap = db.snapshot()
        db.put(b"new", b"v")
        with pytest.raises(NotFoundError):
            db.get(b"new", snapshot=snap)

    def test_delete_after_snapshot_invisible(self, db):
        db.put(b"k", b"v")
        snap = db.snapshot()
        db.delete(b"k")
        with pytest.raises(NotFoundError):
            db.get(b"k")
        assert db.get(b"k", snapshot=snap) == b"v"

    def test_snapshot_survives_flush(self, db):
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        db.flush()
        assert db.get(b"k", snapshot=snap) == b"v1"

    def test_foreign_snapshot_rejected(self, db, options):
        other = LsmDB("otherdb", options, env=MemEnv())
        snap = other.snapshot()
        db.put(b"k", b"v")
        with pytest.raises(DBStateError):
            db.get(b"k", snapshot=snap)

    def test_repr(self, db):
        snap = db.snapshot()
        assert "Snapshot" in repr(snap)
        assert isinstance(snap, Snapshot)


class TestSnapshotScan:
    def test_scan_at_snapshot(self, db):
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        snap = db.snapshot()
        db.put(b"c", b"3")
        db.delete(b"a")
        db.put(b"b", b"2-new")
        now = dict(db.scan())
        then = dict(db.scan(snapshot=snap))
        assert now == {b"b": b"2-new", b"c": b"3"}
        assert then == {b"a": b"1", b"b": b"2"}

    def test_scan_snapshot_across_flush(self, db):
        for i in range(50):
            db.put(f"k{i:04d}".encode(), b"old")
        snap = db.snapshot()
        db.flush()
        for i in range(50):
            db.put(f"k{i:04d}".encode(), b"new")
        then = dict(db.scan(snapshot=snap))
        assert all(v == b"old" for v in then.values())
        assert len(then) == 50


class TestSnapshotWithRange:
    def test_scan_range_and_snapshot_compose(self, db):
        for i in range(20):
            db.put(f"k{i:03d}".encode(), b"old")
        snap = db.snapshot()
        for i in range(20):
            db.put(f"k{i:03d}".encode(), b"new")
        window = dict(db.scan(start=b"k005", end=b"k010", snapshot=snap))
        assert window == {f"k{i:03d}".encode(): b"old"
                          for i in range(5, 10)}

    def test_snapshot_sequence_ordering(self, db):
        first = db.snapshot()
        db.put(b"x", b"1")
        second = db.snapshot()
        assert second.sequence > first.sequence


class TestSnapshotRegistry:
    def test_release_is_idempotent(self, db):
        snap = db.snapshot()
        assert not snap.released
        snap.close()
        assert snap.released
        snap.close()  # no-op
        assert db._smallest_live_snapshot_locked() is None

    def test_context_manager_releases(self, db):
        db.put(b"k", b"v")
        with db.snapshot() as snap:
            assert db._smallest_live_snapshot_locked() == snap.sequence
        assert snap.released
        assert db._smallest_live_snapshot_locked() is None

    def test_refcounted_same_sequence(self, db):
        db.put(b"k", b"v")
        first = db.snapshot()
        second = db.snapshot()
        assert first.sequence == second.sequence
        first.close()
        assert db._smallest_live_snapshot_locked() == second.sequence
        second.close()
        assert db._smallest_live_snapshot_locked() is None

    def test_smallest_wins(self, db):
        old = db.snapshot()
        db.put(b"x", b"1")
        new = db.snapshot()
        assert db._smallest_live_snapshot_locked() == old.sequence
        old.close()
        assert db._smallest_live_snapshot_locked() == new.sequence
        new.close()

    def test_live_gauge(self, db):
        a = db.snapshot()
        b = db.snapshot()
        assert db._m.snapshots_live.value == 2
        a.close()
        b.close()
        assert db._m.snapshots_live.value == 0


class TestSnapshotCompaction:
    """Compaction must keep, per user key, the newest version at or
    below every live snapshot (the removed 'read-only windows' caveat)."""

    def _churn(self, db, rounds, payload):
        for r in range(rounds):
            for i in range(60):
                db.put(f"k{i:03d}".encode(), payload(r, i))
            db.flush()

    def test_snapshot_survives_full_compaction(self, db):
        for i in range(60):
            db.put(f"k{i:03d}".encode(), b"old")
        snap = db.snapshot()
        self._churn(db, 4, lambda r, i: f"new{r}".encode())
        db.compact_range()
        assert db._m.snapshot_merges.value > 0
        for i in range(60):
            key = f"k{i:03d}".encode()
            assert db.get(key, snapshot=snap) == b"old"
            assert db.get(key) == b"new3"
        snap.close()

    def test_delete_under_snapshot_survives_compaction(self, db):
        db.put(b"doomed", b"precious")
        snap = db.snapshot()
        db.delete(b"doomed")
        self._churn(db, 3, lambda r, i: bytes(8))
        db.compact_range()
        assert db.get(b"doomed", snapshot=snap) == b"precious"
        with pytest.raises(NotFoundError):
            db.get(b"doomed")
        snap.close()

    def test_scan_at_snapshot_after_compaction(self, db):
        for i in range(40):
            db.put(f"k{i:03d}".encode(), b"v1")
        snap = db.snapshot()
        for i in range(40):
            if i % 2:
                db.delete(f"k{i:03d}".encode())
            else:
                db.put(f"k{i:03d}".encode(), b"v2")
        db.compact_range()
        then = dict(db.scan(snapshot=snap))
        assert then == {f"k{i:03d}".encode(): b"v1" for i in range(40)}
        now = dict(db.scan())
        assert now == {f"k{i:03d}".encode(): b"v2"
                       for i in range(0, 40, 2)}
        snap.close()

    def test_released_snapshot_lets_compaction_collect(self, db):
        for i in range(60):
            db.put(f"k{i:03d}".encode(), b"old")
        snap = db.snapshot()
        snap.close()
        self._churn(db, 3, lambda r, i: b"new")
        db.compact_range()
        # No live snapshot: the newest-only merge ran, not the
        # snapshot-preserving one.
        assert db._m.snapshot_merges.value == 0

    def test_snapshot_under_background_compaction(self, options):
        from repro.obs.registry import MetricsRegistry

        db = LsmDB("snap-bg", options, env=MemEnv(),
                   metrics=MetricsRegistry(),
                   background_compaction=True)
        try:
            for i in range(300):
                db.put(f"k{i:04d}".encode(), b"old" * 8)
            snap = db.snapshot()
            for round_ in range(4):
                for i in range(300):
                    db.put(f"k{i:04d}".encode(),
                           f"new{round_}".encode() * 8)
            db.compact_range()
            for i in range(0, 300, 23):
                key = f"k{i:04d}".encode()
                assert db.get(key, snapshot=snap) == b"old" * 8
                assert db.get(key) == b"new3" * 8
            snap.close()
        finally:
            db.close()
