"""FcaeDevice — the host's handle on the FPGA card.

One ``compact`` call performs the paper's §IV workflow steps 3-7:

3. read input SSTables into host memory (the caller supplies
   :class:`TableReader`\\ s whose images are already resident),
4. DMA the input memory image (MetaIn + index + data regions) to card
   DRAM,
5-6. run the hardware engine, which streams results back to card DRAM,
7. DMA the Output Memory (tables + MetaOut) back to the host.

The result carries the functional outputs *and* a per-phase timing
breakdown, so callers (the scheduler, the system simulator, Table VIII)
can attribute time to marshalling, PCIe and kernel separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.config import FpgaConfig
from repro.fpga.dram import Dram
from repro.fpga.engine import CompactionEngine, EngineResult
from repro.host.memory import (
    MetaOutEntry,
    decode_meta_out,
    marshal_inputs,
    write_outputs,
)
from repro.host.pcie import PcieModel
from repro.lsm.compaction import OutputTable
from repro.lsm.options import Options
from repro.lsm.sstable import TableReader
from repro.sim.cpu import CpuCostModel


@dataclass
class DeviceResult:
    """Functional outputs plus the phase timing of one offload."""

    outputs: list[OutputTable]
    meta_out: list[MetaOutEntry]
    engine_result: EngineResult
    host_marshal_seconds: float
    pcie_in_seconds: float
    kernel_seconds: float
    pcie_out_seconds: float
    input_bytes: int
    output_bytes: int

    @property
    def total_seconds(self) -> float:
        return (self.host_marshal_seconds + self.pcie_in_seconds
                + self.kernel_seconds + self.pcie_out_seconds)

    @property
    def pcie_seconds(self) -> float:
        return self.pcie_in_seconds + self.pcie_out_seconds

    @property
    def pcie_fraction(self) -> float:
        """Share of offload time spent on DMA (Table VIII's numerator is
        this against whole-system time; the scheduler aggregates it)."""
        total = self.total_seconds
        return self.pcie_seconds / total if total > 0 else 0.0


class FcaeDevice:
    """One FPGA card: engine instance + DRAM + PCIe link.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
    ``fpga_pcie_*`` DMA counters; the engine's pipeline timer publishes
    the ``fpga_pipeline_*`` families into the same registry."""

    def __init__(self, config: FpgaConfig, options: Options | None = None,
                 pcie: PcieModel | None = None,
                 cpu_model: CpuCostModel | None = None,
                 dram_size: int = 16 * 1024 * 1024 * 1024,
                 metrics=None, fault_injector=None):
        from repro import obs
        from repro.obs.names import PcieMetrics

        self.config = config
        #: Optional :class:`repro.host.faults.FaultInjector`; when set,
        #: ``compact`` consults it before touching device memory, so an
        #: injected fault leaves no partial DMA/timeline state behind.
        self.fault_injector = fault_injector
        self.options = options or Options()
        self.metrics = (metrics if metrics is not None
                        else obs.current_registry())
        self.engine = CompactionEngine(config, self.options,
                                       metrics=self.metrics)
        self.pcie = pcie or PcieModel()
        self.cpu_model = cpu_model or CpuCostModel()
        self.dram_size = dram_size
        self._pcie_metrics = (PcieMetrics(self.metrics)
                              if self.metrics is not None else None)

    def compact(self, inputs: list[list[TableReader]],
                drop_deletions: bool = False) -> DeviceResult:
        """Offload one merge compaction.

        ``inputs[i]`` is input *i*'s SSTables in key order.

        When a :class:`repro.obs.TimelineRecorder` is installed, the
        host-side phases are merged into the same unified trace as the
        kernel's pipeline events: ``marshal`` and the two DMAs become
        intervals on the ``host`` process, laid out back-to-back on the
        modeled clock, and the engine's kernel run lands between them —
        exactly the marshal → pcie_in → kernel → pcie_out sequence the
        scheduler's phase metrics aggregate.
        """
        from repro import obs

        if self.fault_injector is not None:
            self.fault_injector.check(
                sum(len(t) for tables in inputs for t in tables
                    if hasattr(t, "__len__")),
                backend="fpga-sim")

        timeline = obs.current_timeline()
        # The trace id propagated through the driver's task queue: stamp
        # it on the DMA/marshal intervals so Perfetto can correlate one
        # compaction's host spans with its timeline intervals.
        ctx = obs.current_tracer().current_context()
        trace_id = ctx.trace_id if ctx is not None else None

        dram = Dram(size=self.dram_size)
        image = marshal_inputs(dram, self.config, inputs)
        input_bytes = image.total_bytes
        marshal_seconds = self.cpu_model.offload_seconds(input_bytes)
        pcie_in = self.pcie.transfer_seconds(input_bytes)

        if timeline is not None:
            t0 = timeline.cursor_us
            setup, wire = self.pcie.transfer_breakdown(input_bytes)
            timeline.interval(
                "host", "scheduler", "marshal", t0,
                t0 + marshal_seconds * 1e6,
                {"bytes": input_bytes, "trace": trace_id})
            timeline.interval(
                "host", "pcie", "dma_in", t0 + marshal_seconds * 1e6,
                t0 + (marshal_seconds + pcie_in) * 1e6,
                {"bytes": input_bytes, "setup_us": setup * 1e6,
                 "wire_us": wire * 1e6, "trace": trace_id})
            # The kernel run (timed inside the engine) starts here.
            timeline.advance_to(t0 + (marshal_seconds + pcie_in) * 1e6)

        engine_result = self.engine.run(dram, image.layouts, drop_deletions)

        output_base = self.dram_size // 2
        meta_out_image, output_bytes = write_outputs(
            dram, self.config, engine_result.outputs, output_base)
        pcie_out = self.pcie.transfer_seconds(output_bytes)

        if timeline is not None:
            t1 = timeline.cursor_us  # kernel end
            setup, wire = self.pcie.transfer_breakdown(output_bytes)
            timeline.interval(
                "host", "pcie", "dma_out", t1, t1 + pcie_out * 1e6,
                {"bytes": output_bytes, "setup_us": setup * 1e6,
                 "wire_us": wire * 1e6, "trace": trace_id})
            timeline.advance_to(t1 + pcie_out * 1e6)

        if self._pcie_metrics is not None:
            self._pcie_metrics.record("in", input_bytes, pcie_in)
            self._pcie_metrics.record("out", output_bytes, pcie_out)

        return DeviceResult(
            outputs=engine_result.outputs,
            meta_out=decode_meta_out(meta_out_image),
            engine_result=engine_result,
            host_marshal_seconds=marshal_seconds,
            pcie_in_seconds=pcie_in,
            kernel_seconds=engine_result.kernel_seconds,
            pcie_out_seconds=pcie_out,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
        )
