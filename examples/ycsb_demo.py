#!/usr/bin/env python3
"""YCSB in two gears: functional (real database) and simulated (paper
scale).

Gear 1 loads a small record set into a real :class:`LsmDB` with the FPGA
compaction executor and runs each core workload's operation mix against
it — demonstrating the public API under realistic access patterns.

Gear 2 reruns the paper's Fig 16 point (20 M records x 1 KB, 20 M ops)
through the system simulator and prints the LevelDB vs LevelDB-FCAE
throughput comparison.

Run:  python examples/ycsb_demo.py
"""

from repro.bench.common import N9_CONFIG
from repro.fpga.config import CONFIG_9_INPUT
from repro.host import CompactionScheduler, FcaeDevice
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv
from repro.sim.system import SystemConfig, simulate_ycsb
from repro.workloads import YCSB_WORKLOADS, YcsbWorkloadRunner

FUNCTIONAL_RECORDS = 800
FUNCTIONAL_OPS = 1200
SIM_RECORDS = 20_000_000
SIM_OPS = 20_000_000


def functional_gear() -> None:
    print("== functional: real database, real operations ==")
    options = Options(write_buffer_size=64 * 1024, sstable_size=32 * 1024,
                      compression="none", value_length=128,
                      bloom_bits_per_key=10)
    device = FcaeDevice(CONFIG_9_INPUT, options)
    scheduler = CompactionScheduler(device, options)
    db = LsmDB("ycsb-demo", options, env=MemEnv(),
               compaction_executor=scheduler)

    loader = YcsbWorkloadRunner(YCSB_WORKLOADS["load"], FUNCTIONAL_RECORDS,
                                value_length=128)
    loader.load(db)
    print(f"loaded {FUNCTIONAL_RECORDS} records "
          f"({scheduler.stats.fpga_tasks} compactions on the FPGA)")

    for name in ("a", "b", "c", "d", "e", "f"):
        runner = YcsbWorkloadRunner(YCSB_WORKLOADS[name],
                                    FUNCTIONAL_RECORDS, value_length=128,
                                    seed=hash(name) % 1000)
        counters = runner.run(db, FUNCTIONAL_OPS)
        mix = ", ".join(f"{op}={count}" for op, count in counters.items()
                        if count and op != "not_found")
        print(f"  workload {name.upper()}: {mix}")
    db.close()


def simulated_gear() -> None:
    print("\n== simulated: the paper's Fig 16 configuration ==")
    options = Options(value_length=1024)
    print(f"{SIM_RECORDS // 10**6}M records x 1 KB, "
          f"{SIM_OPS // 10**6}M ops per workload\n")
    print(f"{'workload':>8}  {'LevelDB':>10}  {'FCAE':>10}  {'speedup':>7}")
    for name in ("load", "a", "b", "c", "d", "e", "f"):
        workload = YCSB_WORKLOADS[name]
        base = simulate_ycsb(
            SystemConfig(mode="leveldb", options=options),
            workload, SIM_RECORDS, SIM_OPS)
        fcae = simulate_ycsb(
            SystemConfig(mode="fcae", options=options, fpga=N9_CONFIG),
            workload, SIM_RECORDS, SIM_OPS)
        print(f"{name:>8}  {base.ops_per_second / 1e3:>8.1f}k"
              f"  {fcae.ops_per_second / 1e3:>8.1f}k"
              f"  {fcae.ops_per_second / base.ops_per_second:>6.2f}x")
    print("\nread-only C is untouched (same storage format, same read "
          "path); the speedup grows with the write ratio, as in Fig 16.")


def main() -> None:
    functional_gear()
    simulated_gear()


if __name__ == "__main__":
    main()
