"""Fixed-width coding and length-prefixed slices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.util.coding import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)


class TestFixed:
    def test_fixed32_little_endian(self):
        assert encode_fixed32(0x01020304) == b"\x04\x03\x02\x01"

    def test_fixed64_little_endian(self):
        assert encode_fixed64(1) == b"\x01" + b"\x00" * 7

    def test_fixed32_roundtrip(self):
        for value in (0, 1, 0xFFFFFFFF, 0xDEADBEEF):
            assert decode_fixed32(encode_fixed32(value)) == value

    def test_fixed64_roundtrip(self):
        for value in (0, 2 ** 63, 2 ** 64 - 1):
            assert decode_fixed64(encode_fixed64(value)) == value

    def test_decode_at_offset(self):
        buf = b"xx" + encode_fixed32(99)
        assert decode_fixed32(buf, 2) == 99

    def test_truncated_fixed32(self):
        with pytest.raises(CorruptionError):
            decode_fixed32(b"\x01\x02")

    def test_truncated_fixed64(self):
        with pytest.raises(CorruptionError):
            decode_fixed64(b"\x01" * 7)


class TestLengthPrefixed:
    def test_roundtrip(self):
        out = bytearray()
        put_length_prefixed_slice(out, b"hello")
        put_length_prefixed_slice(out, b"")
        put_length_prefixed_slice(out, b"world!")
        first, pos = get_length_prefixed_slice(out, 0)
        second, pos = get_length_prefixed_slice(out, pos)
        third, pos = get_length_prefixed_slice(out, pos)
        assert (first, second, third) == (b"hello", b"", b"world!")
        assert pos == len(out)

    def test_overrun_raises(self):
        out = bytearray()
        put_length_prefixed_slice(out, b"abcdef")
        with pytest.raises(CorruptionError):
            get_length_prefixed_slice(out[:4], 0)


@given(st.lists(st.binary(max_size=200), max_size=10))
def test_length_prefixed_stream_property(slices):
    out = bytearray()
    for data in slices:
        put_length_prefixed_slice(out, data)
    pos = 0
    decoded = []
    for _ in slices:
        data, pos = get_length_prefixed_slice(out, pos)
        decoded.append(data)
    assert decoded == slices
