"""Tiered (lazy-compaction) shape model and its system-level bench."""

import pytest

from repro.errors import InvalidArgumentError, SimulationError
from repro.fpga.config import CONFIG_9_INPUT, FpgaConfig
from repro.lsm.options import L0_COMPACTION_TRIGGER, Options
from repro.sim.lsm_model import TieredShapeModel
from repro.sim.system import SystemConfig, simulate_fillrandom

MEM = 4 << 20


def options():
    return Options()


class TestTieredModel:
    def test_flush_accumulates_runs(self):
        model = TieredShapeModel(options())
        for _ in range(3):
            model.add_l0_file(MEM)
        assert model.l0_files == 3
        assert not model.needs_compaction()

    def test_l0_merge_takes_all_runs(self):
        model = TieredShapeModel(options())
        for _ in range(L0_COMPACTION_TRIGGER):
            model.add_l0_file(MEM)
        task = model.pick_compaction()
        assert task.level == 0
        assert task.fpga_input_count == L0_COMPACTION_TRIGGER
        assert task.input_bytes == L0_COMPACTION_TRIGGER * MEM
        model.apply(task)
        assert len(model.runs[1]) == 1

    def test_deep_merge_needs_fanout_inputs(self):
        model = TieredShapeModel(options(), tier_fanout=8)
        model.runs[1] = [MEM] * 8
        task = model.pick_compaction()
        assert task.level == 1
        assert task.fpga_input_count == 8
        model.apply(task)
        assert len(model.runs[1]) == 0
        assert len(model.runs[2]) == 1

    def test_write_amplification_near_one_per_crossing(self):
        model = TieredShapeModel(options(), survival=1.0)
        for _ in range(64):
            model.add_l0_file(MEM)
            while model.needs_compaction():
                task = model.pick_compaction()
                if task is None:
                    break
                model.apply(task)
        # Tiering rewrites each byte roughly once per level crossing —
        # far less than leveled compaction's ratio-per-crossing.
        assert model.stats.write_amplification() < 4

    def test_busy_level_not_repicked(self):
        model = TieredShapeModel(options())
        for _ in range(L0_COMPACTION_TRIGGER):
            model.add_l0_file(MEM)
        first = model.pick_compaction()
        assert first is not None
        assert model.pick_compaction() is None
        model.apply(first)

    def test_apply_without_pick_rejected(self):
        from repro.sim.lsm_model import ModelCompactionTask
        model = TieredShapeModel(options())
        with pytest.raises(SimulationError):
            model.apply(ModelCompactionTask(1, 10, 0, 8, 10))

    def test_bad_fanout(self):
        with pytest.raises(SimulationError):
            TieredShapeModel(options(), tier_fanout=1)


class TestTieredSystem:
    def test_bad_style_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SystemConfig(compaction_style="fractal")

    def test_two_input_engine_useless_on_tiered_store(self):
        opts = Options(value_length=512)
        nbytes = 1 << 28
        software = simulate_fillrandom(SystemConfig(
            mode="leveldb", options=opts, data_size_bytes=nbytes,
            compaction_style="tiered"))
        two = simulate_fillrandom(SystemConfig(
            mode="fcae", options=opts, data_size_bytes=nbytes,
            compaction_style="tiered",
            fpga=FpgaConfig(num_inputs=2, value_width=16)))
        nine = simulate_fillrandom(SystemConfig(
            mode="fcae", options=opts, data_size_bytes=nbytes,
            compaction_style="tiered", fpga=CONFIG_9_INPUT))
        # N=2 rejects every multi-run merge; N=9 takes them all.
        assert two.fpga_tasks == 0
        assert nine.software_tasks == 0
        assert nine.throughput_mbps > 1.5 * software.throughput_mbps
        assert two.throughput_mbps < 1.2 * software.throughput_mbps

    def test_tiered_writes_faster_than_leveled(self):
        # The whole point of lazy compaction: higher write throughput.
        opts = Options(value_length=512)
        nbytes = 1 << 28
        leveled = simulate_fillrandom(SystemConfig(
            mode="leveldb", options=opts, data_size_bytes=nbytes))
        tiered = simulate_fillrandom(SystemConfig(
            mode="leveldb", options=opts, data_size_bytes=nbytes,
            compaction_style="tiered"))
        assert tiered.throughput_mbps > leveled.throughput_mbps


class TestTieredBench:
    def test_bench_story(self):
        from repro.bench import tiered as bench
        result = bench.run(scale=0.25)
        rows = {row[0]: row for row in result.rows}
        assert rows["FCAE N=2"][2] == 0          # no offloads possible
        assert rows["FCAE N=9"][3] == 0          # no software fallbacks
        assert rows["FCAE N=9"][4] > 1.5         # real speedup
        assert abs(rows["FCAE N=2"][4] - 1.0) < 0.2
