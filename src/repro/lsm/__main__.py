"""``python -m repro.lsm`` entry point."""

import sys

from repro.lsm.cli import main

sys.exit(main())
