"""Decoder chain: Index Block Decoder + Data Block Decoder (paper §V-A/B).

One chain exists per engine input.  The **Index Block Decoder** walks an
input's index blocks (one per SSTable) and emits data-block descriptors
(offset, size); the **Data Block Decoder** issues one large DRAM read per
data block, streams it through the input's Stream Downsizer, Snappy-
decompresses it and emits decoded (internal key, value) pairs into the
input's key/value FIFOs.

The two are split ("Decoder Separation", §V-B1) so the index walk is
hidden behind data-block decoding; the :class:`DecoderTiming` captures
both the optimized behaviour and the basic single-read-pointer variant
where the index fetch stalls the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import FpgaProtocolError
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.dram import Dram
from repro.lsm.block import Block
from repro.lsm.sstable import BLOCK_TRAILER_SIZE, BlockHandle, _read_block
from repro.util.comparator import Comparator


@dataclass(frozen=True)
class SSTableLayout:
    """Where one input SSTable lives in device memory.

    ``index_offset``/``index_size`` locate the (already extracted) index
    block image; ``data_offset`` is the base the index block's handles are
    relative to.  This mirrors the separated Index/Data Block Memory of
    the paper's Fig 7.
    """

    index_offset: int
    index_size: int
    data_offset: int
    data_size: int


@dataclass(frozen=True)
class DecodedPair:
    """One key-value pair leaving a Decoder."""

    internal_key: bytes
    value: bytes
    new_block: bool        # first pair of a data block (DRAM fetch happened)
    block_compressed_size: int


class IndexBlockDecoder:
    """Walks an input's SSTables and yields data-block descriptors."""

    def __init__(self, dram: Dram, tables: list[SSTableLayout]):
        self._dram = dram
        self._tables = tables
        self.blocks_decoded = 0

    def __iter__(self) -> Iterator[tuple[SSTableLayout, BlockHandle]]:
        for table in self._tables:
            image = self._dram.read(table.index_offset, table.index_size)
            for _, handle_bytes in Block(image):
                handle, _ = BlockHandle.decode(handle_bytes, 0)
                self.blocks_decoded += 1
                yield table, handle


class DataBlockDecoder:
    """Fetches, decompresses and parses data blocks into pairs."""

    def __init__(self, dram: Dram, verify_checksums: bool = True):
        self._dram = dram
        self._verify = verify_checksums
        self.pairs_decoded = 0
        self.bytes_fetched = 0

    def decode_block(self, table: SSTableLayout,
                     handle: BlockHandle) -> Iterator[DecodedPair]:
        start = table.data_offset + handle.offset
        length = handle.size + BLOCK_TRAILER_SIZE
        if handle.offset + length > table.data_size:
            raise FpgaProtocolError("data block handle outside input region")
        raw = self._dram.read(start, length)
        self.bytes_fetched += length
        contents = _read_block(raw, BlockHandle(0, handle.size), self._verify)
        first = True
        for key, value in Block(contents):
            self.pairs_decoded += 1
            yield DecodedPair(
                internal_key=key,
                value=value,
                new_block=first,
                block_compressed_size=length,
            )
            first = False


@dataclass(frozen=True)
class DecoderTiming:
    """Cycle accounting for one decoder chain."""

    config: FpgaConfig

    def pair_service_cycles(self, key_len: int, value_len: int) -> float:
        """Steady-state decode cost of one pair (Table II/III)."""
        if self.config.variant in (PipelineVariant.BASIC,
                                   PipelineVariant.SPLIT_BLOCKS,
                                   PipelineVariant.KV_SEPARATION):
            # Value path is byte-serial before §V-D's widening.
            return key_len + value_len
        return key_len + value_len / self.config.value_width

    def block_boundary_cycles(self, compressed_size: int) -> float:
        """Extra cycles when the stream crosses into a new data block."""
        extra = float(self.config.dram_read_latency)
        if self.config.variant is PipelineVariant.BASIC:
            # Single read pointer (Fig 2): the pipeline stalls while the
            # pointer returns to the index block, parses one entry
            # (~an index-entry's worth of bytes plus a second DRAM trip)
            # and seeks back to the data region.
            extra += 2 * self.config.dram_read_latency + 24
        if self.config.variant in (PipelineVariant.BASIC,):
            stream_width = 1
        else:
            stream_width = self.config.w_in
        # First beats of the block must arrive before decode can start.
        extra += min(compressed_size, 64) / stream_width
        return extra


class DecoderChain:
    """Functional composition: index walk feeding block decode."""

    def __init__(self, dram: Dram, tables: list[SSTableLayout],
                 config: FpgaConfig, comparator: Comparator | None = None):
        self.index_decoder = IndexBlockDecoder(dram, tables)
        self.data_decoder = DataBlockDecoder(dram)
        self.timing = DecoderTiming(config)
        self._comparator = comparator
        self._last_key: bytes | None = None

    def __iter__(self) -> Iterator[DecodedPair]:
        for table, handle in self.index_decoder:
            for pair in self.data_decoder.decode_block(table, handle):
                if self._comparator is not None and self._last_key is not None:
                    if self._comparator.compare(pair.internal_key,
                                                self._last_key) <= 0:
                        raise FpgaProtocolError(
                            "input SSTable stream is not sorted")
                self._last_key = pair.internal_key
                yield pair
