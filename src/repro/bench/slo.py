"""Extension bench: the multi-tenant SLO observatory.

Two open-loop tenants share one store: a latency-sensitive ``gold``
tenant (YCSB B, 95% reads) and a write-storm ``batch`` tenant (pure
inserts) whose offered rate exceeds what the foreground core sustains
once the L0 slowdown throttle engages.  Operations arrive as Poisson
processes and latency is measured arrival-to-completion, so the table
shows the *coordinated-omission-free* distribution next to the
service-time-only view a closed-loop harness would report — under
saturation they differ by orders of magnitude.

Each op is scored against declarative latency SLOs; multi-window
burn-rate alerts fire mid-run when the error budget burns too fast
(compaction storms jamming the writer core), and the ``alerts`` column
counts the firing transitions per tenant.  Run with ``--events-out`` to
capture the journal — every alert and tail exemplar lands there with a
trace id resolving to the compaction/flush/stall episode that caused it.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult, N9_CONFIG
from repro.lsm.options import Options
from repro.obs.slo import SloSpec
from repro.sim.system import SystemConfig, TenantSpec, simulate_open_loop

#: Arrival window (simulated seconds) at scale 1.0.
DURATION_SECONDS = 10.0
VALUE_LENGTH = 1024

#: Burn windows sized for a tens-of-seconds run (the Google-SRE 1h/6h
#: defaults would be silly inside a 10 s simulation).
_POLICIES = (
    {"name": "fast", "short_seconds": 5.0, "long_seconds": 30.0,
     "factor": 10.0},
    {"name": "slow", "short_seconds": 30.0, "long_seconds": 120.0,
     "factor": 6.0},
)

SLO_SPECS = (
    SloSpec("put-p999", "latency", target=0.999, threshold_seconds=2e-3,
            op="put", policies=_POLICIES),
    SloSpec("get-p99", "latency", target=0.99, threshold_seconds=1e-3,
            op="get", policies=_POLICIES),
)

TENANTS = (
    TenantSpec("gold", arrival_rate=4_000, workload="b", seed=11),
    TenantSpec("batch", arrival_rate=20_000, workload="load", seed=13),
)


def run(scale: float = 1.0) -> ExperimentResult:
    duration = max(2.0, DURATION_SECONDS * scale)
    options = Options(value_length=VALUE_LENGTH,
                      write_buffer_size=1 << 20, compression="none")
    result = ExperimentResult(
        name="SLO observatory",
        title="Open-loop two-tenant run: arrival-to-completion vs "
              "service-only latency, with burn-rate alerts",
        columns=["system", "tenant", "arrive_p50_s", "arrive_p99_s",
                 "service_p999_ms", "queue_mean_s", "stall_s", "alerts"],
    )
    for mode, label in (("leveldb", "LevelDB"), ("fcae", "LevelDB-FCAE")):
        config = SystemConfig(mode=mode, options=options, fpga=N9_CONFIG,
                              data_size_bytes=1 << 30)
        run_result = simulate_open_loop(config, TENANTS, duration,
                                        slo_specs=SLO_SPECS)
        for tenant, stats in sorted(run_result.tenants.items()):
            alerts = sum(1 for a in run_result.alert_transitions
                         if a["tenant"] == tenant
                         and a["state"] == "firing")
            result.add_row(
                label, tenant,
                round(stats.latency_percentile(50), 3),
                round(stats.latency_percentile(99), 3),
                round(stats.service_percentile(99.9) * 1e3, 3),
                round(stats.mean_queue_delay, 3),
                round(stats.stall_seconds, 3),
                alerts,
            )
    result.notes.append(
        "arrival-to-completion percentiles include queueing delay "
        "(coordinated-omission free); the service-only column is what a "
        "closed-loop harness would report")
    result.notes.append(
        "alerts = firing burn-rate transitions; run with --events-out "
        "to walk each slo_alert/exemplar back to the compaction or "
        "stall that caused it")
    return result
