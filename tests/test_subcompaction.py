"""Partitioned sub-compactions must be byte-identical to the single-unit
merge — file contents, not just key space — across level shapes,
snapshots, tombstones, and every execution mode."""

import random

import pytest

from repro.lsm.compaction import (
    CompactionStats,
    _BufferFile,
    compact,
    make_compaction_sources,
)
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder, TableReader
from repro.lsm.subcompaction import (
    partition_boundaries,
    subcompact,
)
from repro.errors import InvalidArgumentError
from repro.util.comparator import BytewiseComparator

ICMP = InternalKeyComparator(BytewiseComparator())


def options(**kwargs) -> Options:
    base = dict(compression="none", bloom_bits_per_key=0,
                sstable_size=32 * 1024, block_size=1024)
    base.update(kwargs)
    return Options(**base)


def build_table(entries, opts) -> TableReader:
    dest = _BufferFile()
    builder = TableBuilder(opts, dest, ICMP)
    for key, value in entries:
        builder.add(key, value)
    builder.finish()
    return TableReader(bytes(dest.data), ICMP, opts)


def make_inputs(opts, seed=17, tables=4, per_table=400, tombstone_pct=0.08):
    """Overlapping sorted runs from a shared key universe, with duplicate
    user keys across tables (newer sequences in earlier tables) and a
    sprinkle of tombstones."""
    rng = random.Random(seed)
    universe = [b"key%012d" % rng.randrange(10 ** 9) for _ in range(2000)]
    sequence = 1
    runs = []
    for _ in range(tables):
        chosen = sorted(set(rng.sample(universe, per_table)))
        entries = []
        for user_key in chosen:
            if rng.random() < tombstone_pct:
                entries.append((encode_internal_key(user_key, sequence,
                                                    TYPE_DELETION), b""))
            else:
                value = bytes([rng.randrange(256)]) * rng.randrange(20, 120)
                entries.append((encode_internal_key(user_key, sequence,
                                                    TYPE_VALUE), value))
            sequence += 1
        runs.append(entries)
    # Newest-first source order, like an L0 pick.
    runs.reverse()
    return [build_table(run, opts) for run in runs]


def single_unit(level, input_tables, parent_tables, opts, drop_deletions,
                smallest_snapshot=None) -> CompactionStats:
    sources = make_compaction_sources(level, input_tables, parent_tables)
    return compact(sources, opts, ICMP, drop_deletions,
                   smallest_snapshot=smallest_snapshot)


def assert_byte_identical(reference: CompactionStats,
                          partitioned: CompactionStats) -> None:
    assert [o.data for o in partitioned.outputs] == \
           [o.data for o in reference.outputs]
    for name in ("input_pairs", "output_pairs", "dropped_shadowed",
                 "dropped_tombstones", "input_bytes", "output_bytes"):
        assert getattr(partitioned, name) == getattr(reference, name), name


class TestByteIdentity:
    @pytest.mark.parametrize("max_subcompactions", [2, 3, 8])
    def test_l0_merge(self, max_subcompactions):
        opts = options(max_subcompactions=max_subcompactions)
        tables = make_inputs(opts)
        reference = single_unit(0, tables, [], opts, drop_deletions=True)
        partitioned = subcompact(0, tables, [], opts, ICMP,
                                 drop_deletions=True)
        assert_byte_identical(reference, partitioned)

    def test_sorted_level_with_parents(self):
        """Level-1 inputs and level-2 parents are each a disjoint sorted
        run (split across files); user keys overlap between the runs."""
        opts = options(max_subcompactions=4)
        rng = random.Random(23)
        universe = sorted({b"key%012d" % rng.randrange(10 ** 9)
                           for _ in range(1200)})
        newer = [(encode_internal_key(k, 10_000 + i, TYPE_VALUE),
                  b"new" * rng.randrange(5, 30))
                 for i, k in enumerate(rng.sample(universe, 500))]
        older = [(encode_internal_key(k, 1 + i, TYPE_VALUE),
                  b"old" * rng.randrange(5, 30))
                 for i, k in enumerate(rng.sample(universe, 700))]
        newer.sort(key=lambda e: e[0])
        older.sort(key=lambda e: e[0])
        inputs = [build_table(newer[:250], opts), build_table(newer[250:], opts)]
        parents = [build_table(older[:230], opts),
                   build_table(older[230:460], opts),
                   build_table(older[460:], opts)]
        reference = single_unit(1, inputs, parents, opts,
                                drop_deletions=False)
        partitioned = subcompact(1, inputs, parents, opts, ICMP,
                                 drop_deletions=False)
        assert reference.dropped_shadowed > 0
        assert_byte_identical(reference, partitioned)

    def test_snapshot_preserving_merge(self):
        """A live snapshot keeps older versions; partitioning must
        preserve exactly the same survivors."""
        opts = options(max_subcompactions=4)
        tables = make_inputs(opts, seed=41, tombstone_pct=0.15)
        smallest_snapshot = 600  # mid-run: both rules exercised
        reference = single_unit(0, tables, [], opts, drop_deletions=True,
                                smallest_snapshot=smallest_snapshot)
        partitioned = subcompact(0, tables, [], opts, ICMP,
                                 drop_deletions=True,
                                 smallest_snapshot=smallest_snapshot)
        assert reference.dropped_tombstones > 0
        assert_byte_identical(reference, partitioned)

    def test_tombstones_kept_above_bottommost(self):
        opts = options(max_subcompactions=3)
        tables = make_inputs(opts, seed=5, tombstone_pct=0.25)
        reference = single_unit(0, tables, [], opts, drop_deletions=False)
        partitioned = subcompact(0, tables, [], opts, ICMP,
                                 drop_deletions=False)
        assert_byte_identical(reference, partitioned)

    def test_more_partitions_than_boundaries(self):
        """A tiny input yields fewer separators than requested
        partitions; the splice must still be exact."""
        opts = options(max_subcompactions=16)
        tiny = [build_table(
            [(encode_internal_key(b"k%04d" % i, i + 1, TYPE_VALUE), b"v")
             for i in range(8)], opts)]
        reference = single_unit(0, tiny, [], opts, drop_deletions=True)
        partitioned = subcompact(0, tiny, [], opts, ICMP,
                                 drop_deletions=True)
        assert_byte_identical(reference, partitioned)

    def test_mapper_dispatch(self):
        """Results must come back in partition order even when the
        mapper runs tasks out of order (as a thread pool may)."""
        opts = options(max_subcompactions=4)
        tables = make_inputs(opts, seed=9)

        calls = {"tasks": 0}

        def reversed_mapper(tasks):
            calls["tasks"] = len(tasks)
            results = [None] * len(tasks)
            for i in reversed(range(len(tasks))):
                results[i] = tasks[i]()
            return results

        reference = single_unit(0, tables, [], opts, drop_deletions=True)
        partitioned = subcompact(0, tables, [], opts, ICMP,
                                 drop_deletions=True,
                                 mapper=reversed_mapper)
        assert calls["tasks"] > 1
        assert_byte_identical(reference, partitioned)

    def test_process_pool_path(self):
        """The ProcessPoolExecutor path ships images to workers and must
        still splice byte-identically."""
        opts = options(max_subcompactions=2, subcompaction_processes=True)
        tables = make_inputs(opts, seed=31, tables=2, per_table=120)
        reference = single_unit(0, tables, [], opts, drop_deletions=True)
        partitioned = subcompact(0, tables, [], opts, ICMP,
                                 drop_deletions=True)
        assert_byte_identical(reference, partitioned)


class TestBoundaries:
    def test_boundaries_sorted_and_bounded(self):
        opts = options()
        tables = make_inputs(opts, seed=3)
        for limit in (2, 3, 7, 64):
            bounds = partition_boundaries(tables, ICMP, limit)
            assert len(bounds) <= limit - 1
            assert bounds == sorted(bounds)
            assert len(set(bounds)) == len(bounds)

    def test_no_partitioning_when_single(self):
        opts = options()
        tables = make_inputs(opts, seed=3, tables=1, per_table=50)
        assert partition_boundaries(tables, ICMP, 1) == []


class TestDbIntegration:
    def test_db_compaction_with_subcompactions(self, tmp_path):
        """End-to-end: two DBs fed identically, one partitioned — every
        key readable and the same level contents."""
        from repro.lsm.db import LsmDB

        results = {}
        for label, extra in (("single", {}),
                             ("partitioned", {"max_subcompactions": 4})):
            opts = Options(compression="none", bloom_bits_per_key=0,
                           write_buffer_size=64 * 1024,
                           sstable_size=32 * 1024, **extra)
            with LsmDB(str(tmp_path / label), options=opts) as db:
                for i in range(3000):
                    db.put(b"key%06d" % (i % 900), b"v%06d" % i)
                db.compact_range()
                results[label] = {
                    "scan": list(db.scan()),
                    "levels": db.level_file_counts(),
                }
        assert results["single"]["scan"] == results["partitioned"]["scan"]
        assert results["single"]["levels"] == results["partitioned"]["levels"]


class TestOptionsValidation:
    def test_rejects_zero_subcompactions(self):
        with pytest.raises(InvalidArgumentError):
            Options(max_subcompactions=0)

    def test_rejects_processes_without_partitions(self):
        with pytest.raises(InvalidArgumentError):
            Options(subcompaction_processes=True)
