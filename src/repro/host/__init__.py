"""Software integration with the hardware compaction engine (paper §VI).

* :mod:`repro.host.memory` — the unified Input/Output memory interface:
  MetaIn/MetaOut blocks, Index Block Memory and W_in/W_out-aligned Data
  Block Memory (Figs 7 and 8).
* :mod:`repro.host.pcie` — PCIe gen3 x16 DMA transfer model.
* :mod:`repro.host.device` — :class:`FcaeDevice`: marshal -> DMA ->
  kernel -> DMA -> install, with a per-phase timing breakdown.
* :mod:`repro.host.scheduler` — the compaction-thread workflow of Fig 6,
  generalised to N accelerator backends: route each task to the forced
  or argmin-cost backend, fall back to the CPU merge on injected device
  faults after bounded retries, and account for the flush/kernel
  overlap the co-design enables.
* :mod:`repro.host.accelerator` — the :class:`AcceleratorBackend`
  interface and the cpu / fpga-sim / batch registry.
* :mod:`repro.host.batch_merge` — the LUDA-style vectorized batched
  merge engine (decode-all, numpy merge order, bulk re-encode).
* :mod:`repro.host.driver` — the asynchronous compaction driver: flush
  worker plus ``num_units`` unit workers behind a bounded task queue.
* :mod:`repro.host.faults` — deterministic fault injection for the
  offload path.
"""

from repro.host.accelerator import (
    AcceleratorBackend,
    BackendResult,
    BatchBackend,
    CpuBackend,
    FpgaSimBackend,
    make_backends,
)
from repro.host.batch_merge import BatchMergeEngine
from repro.host.device import DeviceResult, FcaeDevice
from repro.host.driver import CompactionDriver
from repro.host.faults import FaultInjector
from repro.host.near_storage import NearStorageDevice, NearStorageResult
from repro.host.pcie import PcieModel
from repro.host.scheduler import CompactionScheduler, SchedulerStats
from repro.host.splice import SplitTable, combine_regions, split_table_image

__all__ = [
    "AcceleratorBackend",
    "BackendResult",
    "BatchBackend",
    "BatchMergeEngine",
    "CompactionDriver",
    "CompactionScheduler",
    "CpuBackend",
    "DeviceResult",
    "FaultInjector",
    "FcaeDevice",
    "FpgaSimBackend",
    "make_backends",
    "NearStorageDevice",
    "NearStorageResult",
    "PcieModel",
    "SchedulerStats",
    "SplitTable",
    "combine_regions",
    "split_table_image",
]
