"""Host-side split/combine (§V-B2): bit-exact round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.host.splice import combine_regions, split_table_image
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.sstable import TableReader
from repro.util.comparator import BytewiseComparator

from tests.conftest import build_table_image, make_entries

ICMP = InternalKeyComparator(BytewiseComparator())


class TestSplit:
    def test_data_region_precedes_meta(self, options):
        image = build_table_image(make_entries(200), options, ICMP)
        split = split_table_image(image)
        assert 0 < len(split.data_region) < len(image)
        assert len(split.index_entries) >= 1

    def test_index_handles_stay_within_data_region(self, options):
        image = build_table_image(make_entries(300, value_size=64),
                                  options, ICMP)
        split = split_table_image(image)
        for _, handle in split.index_entries:
            assert handle.offset + handle.size <= len(split.data_region)

    def test_filter_extracted_when_present(self, options):
        image = build_table_image(make_entries(100), options, ICMP)
        split = split_table_image(image)
        assert split.filter_block is not None
        assert split.filter_name.startswith(b"filter.")

    def test_no_filter_when_disabled(self, plain_options):
        image = build_table_image(make_entries(100), plain_options, ICMP)
        split = split_table_image(image)
        assert split.filter_block is None

    def test_garbage_rejected(self):
        with pytest.raises(CorruptionError):
            split_table_image(b"not a table at all" * 10)


class TestCombine:
    def test_bit_exact_roundtrip_compressed(self, options):
        image = build_table_image(make_entries(400, value_size=64),
                                  options, ICMP)
        assert combine_regions(split_table_image(image),
                               compression="snappy") == image

    def test_bit_exact_roundtrip_plain(self, plain_options):
        image = build_table_image(make_entries(250), plain_options, ICMP)
        assert combine_regions(split_table_image(image),
                               compression="none") == image

    def test_combined_table_fully_readable(self, options):
        entries = make_entries(300, value_size=48)
        image = build_table_image(entries, options, ICMP)
        rebuilt = combine_regions(split_table_image(image))
        assert list(TableReader(rebuilt, ICMP, options)) == entries


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=400),
       st.integers(min_value=0, max_value=10 ** 6))
def test_roundtrip_property(count, seed):
    options = Options(block_size=512, sstable_size=1 << 20,
                      compression="snappy", bloom_bits_per_key=10)
    image = build_table_image(make_entries(count, seed=seed), options, ICMP)
    assert combine_regions(split_table_image(image)) == image
