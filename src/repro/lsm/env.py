"""Storage environment abstraction.

The database performs all file I/O through an :class:`Env`, in the style of
LevelDB's ``Env``.  Two implementations are provided:

* :class:`MemEnv` — an in-memory filesystem, used by tests and by the FPGA
  offload examples so runs are hermetic and fast;
* :class:`OsEnv` — thin wrapper over the real filesystem.

Both expose whole-file and append-style handles sufficient for SSTables,
WAL segments and MANIFEST files.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import NotFoundError


class WritableFile(ABC):
    """Append-only file handle."""

    @abstractmethod
    def append(self, data: bytes) -> None: ...

    @abstractmethod
    def flush(self) -> None: ...

    def sync(self) -> None:
        """Force written bytes to stable storage (``fsync``).

        ``flush`` only drains the userspace buffer into the OS page
        cache — bytes survive a process crash but not a power loss.
        ``sync`` is the durability point the WAL's fsync policies build
        on.  Default falls back to ``flush`` for implementations that
        predate this method."""
        self.flush()

    @abstractmethod
    def close(self) -> None: ...

    @property
    @abstractmethod
    def size(self) -> int: ...


class Env(ABC):
    """Filesystem facade used by the database."""

    @abstractmethod
    def new_writable_file(self, name: str) -> WritableFile: ...

    def new_appendable_file(self, name: str) -> WritableFile:
        """Open ``name`` for appending, keeping existing contents (the
        event journal extends across DB reopens).  Default falls back to
        truncate-on-open for Envs that predate this method."""
        return self.new_writable_file(name)

    @abstractmethod
    def read_file(self, name: str) -> bytes: ...

    @abstractmethod
    def file_exists(self, name: str) -> bool: ...

    @abstractmethod
    def file_size(self, name: str) -> int: ...

    @abstractmethod
    def delete_file(self, name: str) -> None: ...

    @abstractmethod
    def rename_file(self, src: str, dst: str) -> None: ...

    @abstractmethod
    def list_dir(self, path: str) -> Iterable[str]: ...

    @abstractmethod
    def create_dir(self, path: str) -> None: ...


class _MemWritableFile(WritableFile):
    def __init__(self, store: dict[str, bytearray], name: str,
                 append: bool = False):
        self._store = store
        self._name = name
        if not append or name not in store:
            self._store[name] = bytearray()
        self._closed = False
        #: Number of ``sync()`` calls — the in-memory store is always
        #: "durable", but tests assert fsync policies through this.
        self.sync_count = 0

    def append(self, data: bytes) -> None:
        if self._closed:
            raise ValueError(f"append to closed file {self._name}")
        self._store[self._name] += data

    def flush(self) -> None:
        pass

    def sync(self) -> None:
        self.sync_count += 1

    def close(self) -> None:
        self._closed = True

    @property
    def size(self) -> int:
        return len(self._store[self._name])


class MemEnv(Env):
    """In-memory filesystem keyed by normalized path strings.

    Directory-level operations (create/delete/rename/list) are guarded by
    a lock so background flush/compaction workers can create and retire
    files while another thread lists the directory.
    """

    def __init__(self) -> None:
        self._files: dict[str, bytearray] = {}
        self._dirs: set[str] = set()
        self._lock = threading.Lock()

    @staticmethod
    def _norm(name: str) -> str:
        return os.path.normpath(name)

    def new_writable_file(self, name: str) -> WritableFile:
        with self._lock:
            return _MemWritableFile(self._files, self._norm(name))

    def new_appendable_file(self, name: str) -> WritableFile:
        with self._lock:
            return _MemWritableFile(self._files, self._norm(name),
                                    append=True)

    def read_file(self, name: str) -> bytes:
        name = self._norm(name)
        with self._lock:
            if name not in self._files:
                raise NotFoundError(name)
            return bytes(self._files[name])

    def file_exists(self, name: str) -> bool:
        with self._lock:
            return self._norm(name) in self._files

    def file_size(self, name: str) -> int:
        name = self._norm(name)
        with self._lock:
            if name not in self._files:
                raise NotFoundError(name)
            return len(self._files[name])

    def delete_file(self, name: str) -> None:
        name = self._norm(name)
        with self._lock:
            if name not in self._files:
                raise NotFoundError(name)
            del self._files[name]

    def rename_file(self, src: str, dst: str) -> None:
        src, dst = self._norm(src), self._norm(dst)
        with self._lock:
            if src not in self._files:
                raise NotFoundError(src)
            self._files[dst] = self._files.pop(src)

    def list_dir(self, path: str) -> list[str]:
        prefix = self._norm(path) + os.sep
        seen = set()
        with self._lock:
            for name in self._files:
                if name.startswith(prefix):
                    rest = name[len(prefix):]
                    seen.add(rest.split(os.sep, 1)[0])
        return sorted(seen)

    def create_dir(self, path: str) -> None:
        self._dirs.add(self._norm(path))


class _OsWritableFile(WritableFile):
    def __init__(self, name: str, append: bool = False):
        self._file = open(name, "ab" if append else "wb")
        # An appendable reopen starts past the existing contents; the
        # WAL seeds its block accounting from this, so it must not lie.
        self._size = os.path.getsize(name) if append else 0

    def append(self, data: bytes) -> None:
        self._file.write(data)
        self._size += len(data)

    def flush(self) -> None:
        self._file.flush()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    @property
    def size(self) -> int:
        return self._size


class OsEnv(Env):
    """Real-filesystem environment."""

    def new_writable_file(self, name: str) -> WritableFile:
        return _OsWritableFile(name)

    def new_appendable_file(self, name: str) -> WritableFile:
        return _OsWritableFile(name, append=True)

    def read_file(self, name: str) -> bytes:
        try:
            with open(name, "rb") as handle:
                return handle.read()
        except FileNotFoundError as exc:
            raise NotFoundError(name) from exc

    def file_exists(self, name: str) -> bool:
        return os.path.exists(name)

    def file_size(self, name: str) -> int:
        try:
            return os.path.getsize(name)
        except FileNotFoundError as exc:
            raise NotFoundError(name) from exc

    def delete_file(self, name: str) -> None:
        try:
            os.remove(name)
        except FileNotFoundError as exc:
            raise NotFoundError(name) from exc

    def rename_file(self, src: str, dst: str) -> None:
        try:
            os.replace(src, dst)
        except FileNotFoundError as exc:
            raise NotFoundError(src) from exc

    def list_dir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def create_dir(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)
