"""Version set: level bookkeeping, overlap queries, compaction picking."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import L0_COMPACTION_TRIGGER, Options
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.util.comparator import BytewiseComparator


def ikey(user: bytes, seq: int = 1) -> bytes:
    return encode_internal_key(user, seq, TYPE_VALUE)


def meta(number: int, small: bytes, large: bytes,
         size: int = 1000) -> FileMetaData:
    return FileMetaData(number, size, ikey(small), ikey(large))


@pytest.fixture
def versions():
    options = Options(max_level0_size=10_000)
    return VersionSet(options, InternalKeyComparator(BytewiseComparator()))


class TestApply:
    def test_add_and_delete(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(1, b"a", b"m"))
        edit.add_file(1, meta(2, b"n", b"z"))
        versions.apply(edit)
        assert versions.current.num_files(1) == 2

        edit2 = VersionEdit()
        edit2.delete_file(1, 1)
        versions.apply(edit2)
        assert versions.current.num_files(1) == 1
        assert versions.current.files[1][0].number == 2

    def test_sorted_levels_stay_sorted(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(2, b"n", b"z"))
        edit.add_file(1, meta(1, b"a", b"m"))
        versions.apply(edit)
        smalls = [f.user_range()[0] for f in versions.current.files[1]]
        assert smalls == sorted(smalls)

    def test_overlap_in_sorted_level_rejected(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(1, b"a", b"m"))
        edit.add_file(1, meta(2, b"k", b"z"))  # overlaps
        with pytest.raises(InvalidArgumentError):
            versions.apply(edit)

    def test_l0_overlap_allowed(self, versions):
        edit = VersionEdit()
        edit.add_file(0, meta(1, b"a", b"z"))
        edit.add_file(0, meta(2, b"b", b"y"))
        versions.apply(edit)
        assert versions.current.num_files(0) == 2

    def test_bad_level_rejected(self, versions):
        edit = VersionEdit()
        edit.add_file(99, meta(1, b"a", b"b"))
        with pytest.raises(InvalidArgumentError):
            versions.apply(edit)

    def test_file_numbers_monotonic(self, versions):
        first = versions.new_file_number()
        second = versions.new_file_number()
        assert second == first + 1
        versions.reuse_file_number(100)
        assert versions.new_file_number() == 101


class TestOverlapQueries:
    def _setup(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(1, b"a", b"f"))
        edit.add_file(1, meta(2, b"g", b"m"))
        edit.add_file(1, meta(3, b"n", b"z"))
        versions.apply(edit)

    def test_overlapping_files_range(self, versions):
        self._setup(versions)
        hits = versions.current.overlapping_files(1, b"h", b"p")
        assert [f.number for f in hits] == [2, 3]

    def test_overlapping_files_unbounded(self, versions):
        self._setup(versions)
        hits = versions.current.overlapping_files(1, None, None)
        assert len(hits) == 3

    def test_l0_transitive_expansion(self, versions):
        edit = VersionEdit()
        edit.add_file(0, meta(1, b"a", b"c"))
        edit.add_file(0, meta(2, b"b", b"h"))
        edit.add_file(0, meta(3, b"g", b"p"))
        versions.apply(edit)
        # Querying [a, c] must transitively pull in files 2 and 3.
        hits = versions.current.overlapping_files(0, b"a", b"c")
        assert {f.number for f in hits} == {1, 2, 3}

    def test_files_for_key_newest_l0_first(self, versions):
        edit = VersionEdit()
        edit.add_file(0, meta(1, b"a", b"z"))
        edit.add_file(0, meta(5, b"a", b"z"))
        edit.add_file(1, meta(3, b"a", b"z"))
        versions.apply(edit)
        hits = versions.current.files_for_key(b"m")
        assert [(lvl, f.number) for lvl, f in hits] == [
            (0, 5), (0, 1), (1, 3)]


class TestPicking:
    def test_no_compaction_when_small(self, versions):
        assert versions.pick_compaction() is None
        assert not versions.needs_compaction()

    def test_l0_trigger(self, versions):
        edit = VersionEdit()
        for i in range(L0_COMPACTION_TRIGGER):
            edit.add_file(0, meta(10 + i, b"a", b"z"))
        edit.add_file(1, meta(3, b"b", b"c"))
        versions.apply(edit)
        spec = versions.pick_compaction()
        assert spec is not None
        assert spec.level == 0
        assert len(spec.inputs) == L0_COMPACTION_TRIGGER
        assert [f.number for f in spec.parents] == [3]
        assert spec.fpga_input_count() == L0_COMPACTION_TRIGGER + 1

    def test_size_trigger_deeper_level(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(1, b"a", b"c", size=20_000))  # over 10k budget
        edit.add_file(2, meta(2, b"b", b"d", size=100))
        versions.apply(edit)
        spec = versions.pick_compaction()
        assert spec.level == 1
        assert [f.number for f in spec.inputs] == [1]
        assert [f.number for f in spec.parents] == [2]
        assert spec.fpga_input_count() == 2

    def test_round_robin_pointer_advances(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(1, b"a", b"c", size=11_000))
        edit.add_file(1, meta(2, b"d", b"f", size=11_000))
        versions.apply(edit)
        first = versions.pick_compaction()
        assert [f.number for f in first.inputs] == [1]
        second = versions.pick_compaction()
        assert [f.number for f in second.inputs] == [2]

    def test_bottommost_detection(self, versions):
        edit = VersionEdit()
        edit.add_file(1, meta(1, b"a", b"z", size=20_000))
        versions.apply(edit)
        spec = versions.pick_compaction()
        assert versions.is_bottommost_level_for(spec)

        edit2 = VersionEdit()
        edit2.add_file(3, meta(9, b"a", b"z"))
        versions.apply(edit2)
        spec2 = versions.pick_compaction()
        assert spec2 is not None
        assert not versions.is_bottommost_level_for(spec2)
