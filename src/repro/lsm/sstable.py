"""SSTable (sorted string table) builder and reader.

File layout (LevelDB's ``table_format.md``):

    [data block 0]            each block: payload | type byte | masked CRC32C
    ...
    [data block n-1]
    [filter block]            whole-table bloom filter (see note)
    [metaindex block]         maps "filter.<policy>" -> filter handle
    [index block]             separator key -> data-block handle
    [footer]                  metaindex handle, index handle, magic

The *index block* is the structure the paper's §II-B describes: a run of
key/value pairs where each key separates two adjacent data blocks and each
value records that block's offset and size.  The FPGA Index Block Decoder
parses exactly these entries.

Note: LevelDB shards its filter block per 2 KB of file offset; this
implementation stores one whole-table filter, which has identical
may-match semantics for point lookups and simpler geometry.  Recorded as a
deviation in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.compress import snappy
from repro.errors import CorruptionError, InvalidArgumentError
from repro.lsm.block import Block, BlockBuilder
from repro.lsm.cache import LRUCache
from repro.lsm.env import WritableFile
from repro.lsm.filter import BloomFilterPolicy
from repro.lsm.internal import extract_user_key
from repro.lsm.options import Options
from repro.util.coding import decode_fixed32, encode_fixed32
from repro.util.comparator import Comparator
from repro.util.crc32c import crc32c, mask_crc, unmask_crc
from repro.util.varint import VarintCursor, encode_varint64

TABLE_MAGIC = 0xDB4775248B80FB57
FOOTER_SIZE = 48
BLOCK_TRAILER_SIZE = 5

COMPRESSION_NONE = 0
COMPRESSION_SNAPPY = 1


@dataclass(frozen=True)
class BlockHandle:
    """Pointer to a block: file offset and payload size (trailer excluded)."""

    offset: int
    size: int

    def encode(self) -> bytes:
        return encode_varint64(self.offset) + encode_varint64(self.size)

    @staticmethod
    def decode(buf: bytes, pos: int = 0) -> tuple["BlockHandle", int]:
        cursor = VarintCursor(buf, pos)
        offset = cursor.next64()
        size = cursor.next64()
        return BlockHandle(offset, size), cursor.pos


@dataclass
class TableStats:
    """Size accounting produced by :class:`TableBuilder`."""

    num_entries: int = 0
    num_data_blocks: int = 0
    raw_key_bytes: int = 0
    raw_value_bytes: int = 0
    data_bytes: int = 0          # compressed, with trailers
    index_bytes: int = 0
    file_bytes: int = 0


class TableBuilder:
    """Streams sorted (internal key, value) pairs into an SSTable image."""

    def __init__(self, options: Options, dest: WritableFile, comparator: Comparator):
        self._options = options
        self._dest = dest
        self._comparator = comparator
        self._data_block = BlockBuilder(options.block_restart_interval)
        self._index_block = BlockBuilder(1)
        self._pending_handle: Optional[BlockHandle] = None
        self._last_key = b""
        self._offset = 0
        self._closed = False
        self._filter_keys: list[bytes] = []
        self._filter_policy = (BloomFilterPolicy(options.bloom_bits_per_key)
                               if options.bloom_bits_per_key > 0 else None)
        self.stats = TableStats()
        self.smallest_key: Optional[bytes] = None
        self.largest_key: Optional[bytes] = None

    def add(self, key: bytes, value: bytes) -> None:
        """Append one entry; keys must be strictly increasing."""
        if self._closed:
            raise InvalidArgumentError("add after finish/abandon")
        if self._last_key and self._comparator.compare(key, self._last_key) <= 0:
            raise InvalidArgumentError("keys added out of order")
        if self._pending_handle is not None:
            # First key after a block boundary: emit a shortened separator.
            separator = self._comparator.find_shortest_separator(
                self._last_key, key)
            self._index_block.add(separator, self._pending_handle.encode())
            self._pending_handle = None
        if self.smallest_key is None:
            self.smallest_key = key
        self.largest_key = key
        self._last_key = key
        if self._filter_policy is not None:
            self._filter_keys.append(extract_user_key(key))
        self._data_block.add(key, value)
        self.stats.num_entries += 1
        self.stats.raw_key_bytes += len(key)
        self.stats.raw_value_bytes += len(value)
        if self._data_block.current_size_estimate() >= self._options.block_size:
            self._flush_data_block()

    def _flush_data_block(self) -> None:
        if self._data_block.is_empty:
            return
        contents = self._data_block.finish()
        handle = self._write_block(contents)
        self.stats.num_data_blocks += 1
        self.stats.data_bytes = self._offset
        self._data_block.reset()
        self._pending_handle = handle

    def _write_block(self, contents: bytes) -> BlockHandle:
        if self._options.compression == "snappy":
            compressed = snappy.compress(contents)
            # Like LevelDB, fall back to raw storage unless compression
            # saves at least 12.5%.
            if len(compressed) < len(contents) - len(contents) // 8:
                payload, block_type = compressed, COMPRESSION_SNAPPY
            else:
                payload, block_type = contents, COMPRESSION_NONE
        else:
            payload, block_type = contents, COMPRESSION_NONE
        handle = BlockHandle(self._offset, len(payload))
        # Extend the payload CRC with the type byte instead of copying the
        # whole payload to concatenate one byte.
        crc = mask_crc(crc32c(bytes((block_type,)), crc32c(payload)))
        self._dest.append(payload)
        self._dest.append(bytes([block_type]))
        self._dest.append(encode_fixed32(crc))
        self._offset += len(payload) + BLOCK_TRAILER_SIZE
        return handle

    @property
    def file_size(self) -> int:
        """Bytes written so far."""
        return self._offset

    def finish(self) -> TableStats:
        """Flush remaining data, write filter/metaindex/index/footer."""
        if self._closed:
            raise InvalidArgumentError("finish called twice")
        self._flush_data_block()
        self._closed = True
        if self._pending_handle is not None:
            successor = self._comparator.find_short_successor(self._last_key)
            self._index_block.add(successor, self._pending_handle.encode())
            self._pending_handle = None

        metaindex = BlockBuilder(1)
        if self._filter_policy is not None and self._filter_keys:
            filter_data = self._filter_policy.create_filter(self._filter_keys)
            filter_handle = self._write_block(filter_data)
            metaindex.add(f"filter.{self._filter_policy.name}".encode(),
                          filter_handle.encode())
        metaindex_handle = self._write_block(metaindex.finish())

        index_start = self._offset
        index_handle = self._write_block(self._index_block.finish())
        self.stats.index_bytes = self._offset - index_start

        footer = bytearray()
        footer += metaindex_handle.encode()
        footer += index_handle.encode()
        footer += b"\x00" * (FOOTER_SIZE - 8 - len(footer))
        footer += TABLE_MAGIC.to_bytes(8, "little")
        self._dest.append(bytes(footer))
        self._offset += FOOTER_SIZE
        self.stats.file_bytes = self._offset
        self._dest.flush()
        return self.stats


def _read_block(data: bytes, handle: BlockHandle, verify: bool) -> bytes:
    """Extract and (if needed) decompress one block payload."""
    end = handle.offset + handle.size + BLOCK_TRAILER_SIZE
    if end > len(data):
        raise CorruptionError("block handle overruns file")
    payload = data[handle.offset:handle.offset + handle.size]
    block_type = data[handle.offset + handle.size]
    if verify:
        stored = unmask_crc(decode_fixed32(data, handle.offset + handle.size + 1))
        # Payload and type byte are adjacent in the file: checksum them in
        # place over one zero-copy view.
        checked = crc32c(memoryview(data)[
            handle.offset:handle.offset + handle.size + 1])
        if checked != stored:
            raise CorruptionError("block checksum mismatch")
    if block_type == COMPRESSION_NONE:
        return payload
    if block_type == COMPRESSION_SNAPPY:
        return snappy.decompress(payload)
    raise CorruptionError(f"unknown block compression type {block_type}")


class TableReader:
    """Random and sequential access over an SSTable image.

    ``file_number`` namespaces entries in the shared block cache.
    """

    def __init__(self, data: bytes, comparator: Comparator,
                 options: Optional[Options] = None,
                 block_cache: Optional[LRUCache] = None,
                 file_number: int = 0):
        self._data = data
        self._comparator = comparator
        self._options = options or Options()
        self._cache = block_cache
        self._file_number = file_number
        if len(data) < FOOTER_SIZE:
            raise CorruptionError("file too short for footer")
        footer = data[-FOOTER_SIZE:]
        magic = int.from_bytes(footer[-8:], "little")
        if magic != TABLE_MAGIC:
            raise CorruptionError("bad table magic")
        metaindex_handle, pos = BlockHandle.decode(footer, 0)
        index_handle, _ = BlockHandle.decode(footer, pos)
        self._index_block = Block(
            _read_block(data, index_handle, self._options.paranoid_checks))
        self._filter_data = self._load_filter(metaindex_handle)

    def _load_filter(self, metaindex_handle: BlockHandle) -> Optional[bytes]:
        metaindex = Block(_read_block(
            self._data, metaindex_handle, self._options.paranoid_checks))
        for key, value in metaindex:
            if key.startswith(b"filter."):
                handle, _ = BlockHandle.decode(value, 0)
                return _read_block(self._data, handle,
                                   self._options.paranoid_checks)
        return None

    @property
    def file_size(self) -> int:
        return len(self._data)

    @property
    def image(self) -> bytes:
        """The raw file bytes (what the host DMA-copies to the device)."""
        return self._data

    def _block_contents(self, handle: BlockHandle) -> bytes:
        cache_key = (self._file_number, handle.offset)
        if self._cache is not None:
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached
        contents = _read_block(self._data, handle,
                               self._options.paranoid_checks)
        if self._cache is not None:
            self._cache.put(cache_key, contents)
        return contents

    def key_may_match(self, user_key: bytes) -> bool:
        """Bloom-filter probe; True can be a false positive."""
        if self._filter_data is None:
            return True
        return BloomFilterPolicy.key_may_match(user_key, self._filter_data)

    def get(self, target: bytes) -> Optional[tuple[bytes, bytes]]:
        """First entry with internal key >= ``target``, or ``None``."""
        index_entry = self._index_block.seek(target, self._comparator)
        if index_entry is None:
            return None
        handle, _ = BlockHandle.decode(index_entry[1], 0)
        block = Block(self._block_contents(handle))
        return block.seek(target, self._comparator)

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield every (internal key, value) in order."""
        for _, handle_bytes in self._index_block:
            handle, _ = BlockHandle.decode(handle_bytes, 0)
            block = Block(self._block_contents(handle))
            yield from block

    def iter_from(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with internal key >= ``target`` in order."""
        started = False
        for index_key, handle_bytes in self._index_block:
            if not started and self._comparator.compare(index_key, target) < 0:
                continue
            handle, _ = BlockHandle.decode(handle_bytes, 0)
            block = Block(self._block_contents(handle))
            if not started:
                yield from block.iter_from(target, self._comparator)
                started = True
            else:
                yield from block

    def index_entries(self) -> list[tuple[bytes, BlockHandle]]:
        """Decoded index block — used by the FPGA host marshaller."""
        entries = []
        for key, handle_bytes in self._index_block:
            handle, _ = BlockHandle.decode(handle_bytes, 0)
            entries.append((key, handle))
        return entries
