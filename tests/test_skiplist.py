"""Skiplist ordering, seek semantics, and property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.skiplist import SkipList


def bytewise(a: bytes, b: bytes) -> int:
    return (a > b) - (a < b)


@pytest.fixture
def skiplist():
    return SkipList(bytewise)


class TestBasics:
    def test_empty(self, skiplist):
        assert len(skiplist) == 0
        assert list(skiplist) == []
        assert skiplist.first() is None
        assert skiplist.last() is None

    def test_insert_and_contains(self, skiplist):
        skiplist.insert(b"b")
        skiplist.insert(b"a")
        skiplist.insert(b"c")
        assert skiplist.contains(b"a")
        assert skiplist.contains(b"b")
        assert not skiplist.contains(b"z")
        assert len(skiplist) == 3

    def test_iteration_is_sorted(self, skiplist):
        for key in (b"m", b"a", b"z", b"k", b"b"):
            skiplist.insert(key)
        assert list(skiplist) == [b"a", b"b", b"k", b"m", b"z"]

    def test_duplicate_insert_raises(self, skiplist):
        skiplist.insert(b"x")
        with pytest.raises(ValueError):
            skiplist.insert(b"x")

    def test_first_last(self, skiplist):
        for key in (b"h", b"c", b"q"):
            skiplist.insert(key)
        assert skiplist.first() == b"c"
        assert skiplist.last() == b"q"


class TestSeek:
    def test_seek_exact(self, skiplist):
        for key in (b"a", b"c", b"e"):
            skiplist.insert(key)
        assert skiplist.seek(b"c") == b"c"

    def test_seek_between(self, skiplist):
        for key in (b"a", b"c", b"e"):
            skiplist.insert(key)
        assert skiplist.seek(b"b") == b"c"

    def test_seek_past_end(self, skiplist):
        skiplist.insert(b"a")
        assert skiplist.seek(b"z") is None

    def test_iter_from(self, skiplist):
        for key in (b"a", b"c", b"e", b"g"):
            skiplist.insert(key)
        assert list(skiplist.iter_from(b"c")) == [b"c", b"e", b"g"]
        assert list(skiplist.iter_from(b"d")) == [b"e", b"g"]


class TestScale:
    def test_many_keys_stay_sorted(self):
        skiplist = SkipList(bytewise)
        import random
        rng = random.Random(11)
        keys = [f"{rng.randrange(10**9):012d}".encode() for _ in range(3000)]
        unique = sorted(set(keys))
        for key in set(keys):
            skiplist.insert(key)
        assert list(skiplist) == unique
        assert len(skiplist) == len(unique)


@settings(max_examples=50, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=12), max_size=200))
def test_sorted_iteration_property(keys):
    skiplist = SkipList(bytewise)
    for key in keys:
        skiplist.insert(key)
    assert list(skiplist) == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=8), min_size=1, max_size=60),
       st.binary(min_size=1, max_size=8))
def test_seek_property(keys, probe):
    skiplist = SkipList(bytewise)
    for key in keys:
        skiplist.insert(key)
    expected = min((k for k in keys if k >= probe), default=None)
    assert skiplist.seek(probe) == expected
