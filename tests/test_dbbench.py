"""db_bench workload generator."""

import pytest

from repro.errors import InvalidArgumentError
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv
from repro.workloads.dbbench import DbBench, FillMode


class TestGeneration:
    def test_fillseq_is_ordered(self):
        bench = DbBench(100, value_length=32)
        keys = [k for k, _ in bench.fill(FillMode.SEQUENTIAL)]
        assert keys == sorted(keys)
        assert len(keys) == 100

    def test_fillrandom_covers_count(self):
        bench = DbBench(100, value_length=32)
        pairs = list(bench.fill(FillMode.RANDOM))
        assert len(pairs) == 100

    def test_key_geometry(self):
        bench = DbBench(1000, key_length=16)
        assert len(bench.key_for(5)) == 16
        assert bench.key_for(5) == b"0000000000000005"

    def test_value_geometry(self):
        bench = DbBench(10, value_length=128)
        assert len(bench.value_for(3)) == 128

    def test_user_bytes(self):
        bench = DbBench(10, key_length=16, value_length=84)
        assert bench.user_bytes == 1000

    def test_bad_args(self):
        with pytest.raises(InvalidArgumentError):
            DbBench(0)
        with pytest.raises(InvalidArgumentError):
            DbBench(10, key_length=4)


class TestAgainstDb:
    def test_fill_and_read(self):
        options = Options(write_buffer_size=32 * 1024,
                          sstable_size=16 * 1024, compression="none",
                          bloom_bits_per_key=0)
        db = LsmDB("bench", options, env=MemEnv())
        bench = DbBench(500, value_length=48, seed=11)
        written = bench.run_fill(db, FillMode.RANDOM)
        assert written == 500 * (16 + 48)
        found, missing = bench.run_readrandom(db, 300)
        assert found + missing == 300
        # fillrandom hits ~63% of the keyspace; most random reads land.
        assert found > 100

    def test_fillseq_readable(self):
        options = Options(write_buffer_size=32 * 1024,
                          sstable_size=16 * 1024, compression="none",
                          bloom_bits_per_key=0)
        db = LsmDB("bench2", options, env=MemEnv())
        bench = DbBench(300, value_length=48)
        bench.run_fill(db, FillMode.SEQUENTIAL)
        for i in (0, 150, 299):
            assert db.get(bench.key_for(i)) == bench.value_for(i)


class TestExtraModes:
    def _db(self):
        options = Options(write_buffer_size=32 * 1024,
                          sstable_size=16 * 1024, compression="none",
                          bloom_bits_per_key=10)
        return LsmDB("bench3", options, env=MemEnv())

    def test_readseq(self):
        db = self._db()
        bench = DbBench(400, value_length=48)
        bench.run_fill(db, FillMode.SEQUENTIAL)
        assert bench.run_readseq(db, 100) == 100
        assert bench.run_readseq(db, 10 ** 6) == 400

    def test_readmissing_all_miss(self):
        db = self._db()
        bench = DbBench(300, value_length=48)
        bench.run_fill(db, FillMode.SEQUENTIAL)
        assert bench.run_readmissing(db, 200) == 200

    def test_overwrite_updates_values(self):
        db = self._db()
        bench = DbBench(200, value_length=48, seed=3)
        bench.run_fill(db, FillMode.SEQUENTIAL)
        written = bench.run_overwrite(db, 500)
        assert written > 0
        # Every key still resolves; total live count unchanged.
        assert len(list(db.scan())) == 200

    def test_deleterandom_removes_keys(self):
        db = self._db()
        bench = DbBench(200, value_length=48, seed=4)
        bench.run_fill(db, FillMode.SEQUENTIAL)
        bench.run_deleterandom(db, 400)
        db.compact_range()
        assert len(list(db.scan())) < 200
