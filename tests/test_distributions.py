"""Workload distributions: zipfian skew, latest recency, uniform."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError
from repro.workloads.distributions import (
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
    estimate_hot_fraction,
    fnv_hash64,
)


class TestFnv:
    def test_deterministic(self):
        assert fnv_hash64(12345) == fnv_hash64(12345)

    def test_spreads(self):
        hashes = {fnv_hash64(i) % 1000 for i in range(2000)}
        assert len(hashes) > 800


class TestUniform:
    def test_in_range(self):
        gen = UniformGenerator(100, seed=1)
        samples = [gen.next() for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)

    def test_roughly_flat(self):
        gen = UniformGenerator(10, seed=2)
        counts = [0] * 10
        for _ in range(10_000):
            counts[gen.next()] += 1
        assert max(counts) < 2 * min(counts)

    def test_bad_count(self):
        with pytest.raises(InvalidArgumentError):
            UniformGenerator(0)


class TestZipfian:
    def test_in_range(self):
        gen = ZipfianGenerator(1000, seed=3)
        assert all(0 <= gen.next() < 1000 for _ in range(2000))

    def test_rank_zero_dominates(self):
        gen = ZipfianGenerator(10_000, scrambled=False, seed=4)
        samples = [gen.next_rank() for _ in range(20_000)]
        top = sum(1 for s in samples if s == 0)
        # theta=0.99 sends roughly 10% of traffic to the hottest item.
        assert top / len(samples) > 0.05

    def test_skew_concentrates_mass(self):
        gen = ZipfianGenerator(100_000, scrambled=False, seed=5)
        samples = [gen.next_rank() for _ in range(20_000)]
        hot = sum(1 for s in samples if s < 1000)  # hottest 1%
        assert hot / len(samples) > 0.4

    def test_scrambling_spreads_hotspot(self):
        gen = ZipfianGenerator(100_000, scrambled=True, seed=6)
        samples = [gen.next() for _ in range(5000)]
        # The most popular *item* should not be item 0 after scrambling.
        from collections import Counter
        top_item, _ = Counter(samples).most_common(1)[0]
        assert top_item == fnv_hash64(0) % 100_000

    def test_bad_theta(self):
        with pytest.raises(InvalidArgumentError):
            ZipfianGenerator(100, theta=1.0)

    def test_large_item_count_constructs(self):
        gen = ZipfianGenerator(20_000_000, seed=7)
        assert 0 <= gen.next() < 20_000_000


class TestLatest:
    def test_prefers_recent(self):
        gen = LatestGenerator(10_000, seed=8)
        samples = [gen.next() for _ in range(10_000)]
        recent = sum(1 for s in samples if s >= 9_000)
        assert recent / len(samples) > 0.4

    def test_insert_shifts_window(self):
        gen = LatestGenerator(100, seed=9)
        new_item = gen.record_insert()
        assert new_item == 100
        assert gen.insert_count == 101
        samples = [gen.next() for _ in range(500)]
        assert all(0 <= s <= 100 for s in samples)


class TestHotFraction:
    def test_bounds(self):
        frac = estimate_hot_fraction(0.99, 1_000_000, 0.2)
        assert 0.5 < frac < 1.0

    def test_monotone_in_coverage(self):
        small = estimate_hot_fraction(0.99, 1_000_000, 0.01)
        large = estimate_hot_fraction(0.99, 1_000_000, 0.5)
        assert small < large

    def test_single_item(self):
        assert estimate_hot_fraction(0.99, 1, 0.5) == 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=10 ** 7),
       st.integers(min_value=0, max_value=1000))
def test_zipfian_always_in_range_property(item_count, seed):
    gen = ZipfianGenerator(item_count, seed=seed)
    for _ in range(20):
        assert 0 <= gen.next() < item_count
