"""Extension bench: PCIe-attached vs near-storage engine placement.

The paper's §VII-E names near-storage computing as the next step.  This
target runs identical compaction tasks through both placements and
reports the per-phase latency plus the end-to-end offload time, across
value lengths.  The engine and its kernel time are the same; only the
data-movement architecture differs — the comparison isolates what moving
the engine into the drive buys.
"""

from __future__ import annotations

import random

from repro.bench.common import ExperimentResult
from repro.fpga.config import CONFIG_2_INPUT
from repro.host.device import FcaeDevice
from repro.host.near_storage import NearStorageDevice
from repro.lsm.compaction import _BufferFile
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder, TableReader
from repro.util.comparator import BytewiseComparator

VALUE_LENGTHS = (128, 512, 2048)
PAIRS_PER_RUN = 1500


def _run_images(value_length: int, options, icmp):
    readers = []
    for seed in (1, 2):
        rng = random.Random(seed)
        keys = sorted(rng.sample(range(10 ** 9), PAIRS_PER_RUN))
        dest = _BufferFile()
        builder = TableBuilder(options, dest, icmp)
        for i, raw in enumerate(keys):
            user = f"{raw:016d}".encode()
            value = (f"v{raw}".encode() * 64)[:value_length]
            builder.add(encode_internal_key(user, seed * 10 ** 6 + i,
                                            TYPE_VALUE), value)
        builder.finish()
        readers.append([TableReader(bytes(dest.data), icmp, options)])
    return readers


def run(scale: float = 1.0) -> ExperimentResult:
    del scale  # task sizes are fixed; the model is cheap
    result = ExperimentResult(
        name="Near-storage",
        title="Offload time (ms): PCIe-attached card vs in-SSD engine",
        columns=["L_value", "pcie_total_ms", "pcie_dma_ms",
                 "near_total_ms", "near_move_ms", "near/pcie"],
    )
    icmp = InternalKeyComparator(BytewiseComparator())
    for value_length in VALUE_LENGTHS:
        options = Options(compression="none", bloom_bits_per_key=0,
                          value_length=value_length)
        pcie_device = FcaeDevice(CONFIG_2_INPUT, options)
        near_device = NearStorageDevice(CONFIG_2_INPUT, options)
        readers = _run_images(value_length, options, icmp)
        pcie = pcie_device.compact(readers)
        near = near_device.compact(readers)
        result.add_row(
            value_length,
            pcie.total_seconds * 1e3,
            pcie.pcie_seconds * 1e3,
            near.total_seconds * 1e3,
            (near.internal_read_seconds + near.internal_write_seconds) * 1e3,
            near.total_seconds / pcie.total_seconds,
        )
    result.notes.append(
        "same kernel both sides; near-storage removes PCIe DMA and host "
        "staging, so its advantage is the card's data-movement share")
    return result
