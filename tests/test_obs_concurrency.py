"""Flight-recorder concurrency: the journal and the windowed histograms
are hammered from many threads (and from the background driver's real
worker threads) without losing events, tearing JSONL lines, or breaking
percentile monotonicity."""

import io
import json
import random
import threading

from repro.lsm.db import LsmDB
from repro.lsm.env import OsEnv
from repro.lsm.options import Options
from repro.obs.events import EventJournal, read_events, replay
from repro.obs.window import WindowedHistogram


class TestJournalUnderThreads:
    THREADS = 8
    EVENTS_PER_THREAD = 200

    def test_no_lost_events_no_gaps_no_tears(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink)

        def hammer(thread_no):
            for i in range(self.EVENTS_PER_THREAD):
                journal.emit("flush_start", thread=thread_no, i=i)
                journal.emit("flush_finish", thread=thread_no, i=i,
                             bytes=i)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        lines = sink.getvalue().splitlines()
        # journal_open + every emit made it out, one JSON object per line
        assert len(lines) == 1 + self.THREADS * self.EVENTS_PER_THREAD * 2
        events = [json.loads(line) for line in lines]  # raises if torn
        seqs = [event["seq"] for event in events]
        assert seqs == list(range(1, len(seqs) + 1))
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)
        summary = replay(events)
        assert summary.flushes == self.THREADS * self.EVENTS_PER_THREAD
        assert not summary.unbalanced


class TestWindowUnderThreads:
    THREADS = 8
    SAMPLES_PER_THREAD = 2000

    def test_counts_complete_and_percentiles_monotone(self):
        window = WindowedHistogram(window_seconds=3600.0, slices=4)
        rng_seed = 1234

        def hammer(thread_no):
            rng = random.Random(rng_seed + thread_no)
            for _ in range(self.SAMPLES_PER_THREAD):
                window.observe(rng.random() * 0.01)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(self.THREADS)]
        for thread in threads:
            thread.start()

        # Read percentiles while writers are live: each snapshot must be
        # internally monotone in q even mid-hammer.
        for _ in range(50):
            quantiles = [window.percentile(q)
                         for q in (0.5, 0.9, 0.95, 0.99, 0.999)]
            assert quantiles == sorted(quantiles)

        for thread in threads:
            thread.join()
        assert window.count == self.THREADS * self.SAMPLES_PER_THREAD
        quantiles = [window.percentile(q)
                     for q in (0.5, 0.9, 0.95, 0.99, 0.999)]
        assert quantiles == sorted(quantiles)
        assert quantiles[0] > 0.0


class TestJournalThroughDriverWorkers:
    def test_background_workers_share_one_journal(self, tmp_path):
        """A background-compaction DB with two units writes flush,
        compaction and stall events from three different threads plus the
        writer; the on-disk journal must still be gap-free and
        replayable."""
        options = Options(write_buffer_size=8 * 1024, event_journal=True,
                          latency_window_seconds=60.0)
        db = LsmDB(str(tmp_path / "db"), options=options, env=OsEnv(),
                   auto_compact=False, background_compaction=True,
                   num_units=2)
        rng = random.Random(11)
        for _ in range(4000):
            db.put(f"k{rng.randrange(2500):08d}".encode(), bytes(64))
        db.compact_range()
        live_amp = {row["level"]: row["write_amp"]
                    for row in db.level_amplification()}
        live_wa = db.stats.write_amplification
        db.close()

        events = read_events(str(tmp_path / "db" / "EVENTS.jsonl"))
        seqs = [event["seq"] for event in events]
        assert seqs == list(range(1, len(seqs) + 1))
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)

        summary = replay(events)
        assert not summary.unbalanced
        assert summary.flushes > 0 and summary.compactions > 0
        # The journal replays into the same amplification the live
        # registry reported (the ISSUE's acceptance criterion).
        assert summary.write_amplification == live_wa
        for level, amp in summary.per_level_write_amp().items():
            assert amp == live_amp.get(level, 0.0)
