"""Compaction-thread workflow (paper Fig 6, generalized to N backends).

The scheduler is an :class:`LsmDB`-compatible compaction executor that
routes each merge compaction to one of the registered
:mod:`repro.host.accelerator` backends per ``Options.accelerator``:

* ``"fpga-sim"`` (default) keeps the paper's Fig 6 policy: offload to
  the pipeline-sim device when the compaction's input-stream count fits
  the engine (``fpga_input_count() <= N``) — for level >= 1 that count
  is at most 2 (the sorted level concatenates into one input); for
  level 0 it is the number of overlapping L0 files plus one — and run
  the software merge otherwise ("when S_0 > N - 1, the compaction task
  will be processed completely by the software");
* ``"cpu"`` / ``"batch"`` force one executor;
* ``"auto"`` picks the argmin of the backends' wall-clock cost models
  (:func:`pick_backend`), excluding backends that cannot run the task.

Accelerator results are verified against the storage contract (sorted,
disjoint output ranges), and recoverable faults from *any* accelerator
go through bounded retry + backoff before failing over to the CPU merge
— output bytes are identical either way, so fallback never changes the
key space.  Statistics land in a :class:`repro.obs.MetricsRegistry` —
legacy fpga/software route counters, the per-backend
``scheduler_backend_*`` families, per-phase time, the PCIe share —
with :class:`SchedulerStats` as a read-only view.  Each routed task
also emits a ``compaction.route`` trace span with per-phase children
(marshal → pcie_in → kernel → pcie_out, software, or batch), so a JSONL
trace reconstructs exactly where offload time went.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro import obs
from repro.errors import FpgaDmaError, FpgaProtocolError, FpgaTimeoutError
from repro.host.accelerator import (
    AcceleratorBackend,
    BackendResult,
    make_backends,
)
from repro.host.device import FcaeDevice
from repro.lsm.compaction import OutputTable
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.version import CompactionSpec
from repro.obs import (
    merge_counts,
    resolve_events,
    resolve_registry,
    resolve_tracer,
)
from repro.obs.names import SchedulerMetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.window import WindowedHistogram, publish_window
from repro.sim.cpu import CpuCostModel


class SchedulerStats:
    """Routing and timing view over the scheduler's registry metrics.

    The canonical routing accounting is per *backend* (cpu | fpga-sim |
    batch): :attr:`backend_tasks` / :attr:`backend_input_bytes` /
    :attr:`backend_seconds` mirror the ``scheduler_backend_*`` metric
    families.  The historical fpga/software field names remain as
    aliases over the legacy route counters (fpga = the fpga-sim backend,
    software = every in-process merge), so ``repro.stats`` and the
    dashboard keep working; values are re-read from the registry on each
    access.  ``as_dict`` / :meth:`merge` let exposition and
    multi-scheduler reports iterate fields instead of hand-copying them.
    """

    #: Integer routing fields and float phase-timing fields, in
    #: reporting order.
    INT_FIELDS = ("fpga_tasks", "software_tasks", "fpga_input_bytes",
                  "software_input_bytes", "fpga_faults", "fpga_retries",
                  "fpga_fallbacks")
    FLOAT_FIELDS = ("fpga_kernel_seconds", "fpga_pcie_seconds",
                    "fpga_marshal_seconds", "software_seconds")
    FIELDS = INT_FIELDS + FLOAT_FIELDS

    def __init__(self, metrics: SchedulerMetrics):
        self._metrics = metrics

    # -- per-backend family --------------------------------------------

    @property
    def backend_tasks(self) -> dict[str, int]:
        """Tasks executed per backend (``scheduler_backend_tasks_total``)."""
        return {backend: int(counter.value) for backend, counter
                in self._metrics.backend_tasks.items()}

    @property
    def backend_input_bytes(self) -> dict[str, int]:
        return {backend: int(counter.value) for backend, counter
                in self._metrics.backend_input_bytes.items()}

    @property
    def backend_seconds(self) -> dict[str, float]:
        """Measured wall seconds per backend."""
        return {backend: counter.value for backend, counter
                in self._metrics.backend_seconds.items()}

    # -- legacy aliases (fpga = fpga-sim, software = cpu + batch) ------

    @property
    def fpga_tasks(self) -> int:
        return int(self._metrics.tasks["fpga"].value)

    @property
    def software_tasks(self) -> int:
        return int(self._metrics.tasks["software"].value)

    @property
    def fpga_input_bytes(self) -> int:
        return int(self._metrics.input_bytes["fpga"].value)

    @property
    def software_input_bytes(self) -> int:
        return int(self._metrics.input_bytes["software"].value)

    @property
    def fpga_faults(self) -> int:
        return int(sum(c.value for c in self._metrics.faults.values()))

    @property
    def fpga_retries(self) -> int:
        return int(self._metrics.retries.value)

    @property
    def fpga_fallbacks(self) -> int:
        return int(self._metrics.fallbacks.value)

    @property
    def fpga_kernel_seconds(self) -> float:
        return self._metrics.phase_seconds["kernel"].value

    @property
    def fpga_pcie_seconds(self) -> float:
        return (self._metrics.phase_seconds["pcie_in"].value
                + self._metrics.phase_seconds["pcie_out"].value)

    @property
    def fpga_marshal_seconds(self) -> float:
        return self._metrics.phase_seconds["marshal"].value

    @property
    def software_seconds(self) -> float:
        return self._metrics.phase_seconds["software"].value

    # -- derived -------------------------------------------------------

    @property
    def total_offload_seconds(self) -> float:
        return (self.fpga_kernel_seconds + self.fpga_pcie_seconds
                + self.fpga_marshal_seconds)

    @property
    def pcie_fraction_of_offload(self) -> float:
        total = self.total_offload_seconds
        return self.fpga_pcie_seconds / total if total > 0 else 0.0

    # -- exposition ----------------------------------------------------

    def as_dict(self) -> dict[str, float]:
        """All fields as a plain dict, in :data:`FIELDS` order."""
        return {field: getattr(self, field)
                for field in SchedulerStats.FIELDS}

    @staticmethod
    def merge(*stats: "SchedulerStats | dict") -> dict[str, float]:
        """Field-wise sum across schedulers (multi-card aggregation)."""
        return merge_counts(
            s if isinstance(s, dict) else s.as_dict() for s in stats)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SchedulerStats({inner})"


class CompactionScheduler:
    """Pluggable executor for :class:`repro.lsm.db.LsmDB`.

    Pass an instance as ``LsmDB(compaction_executor=scheduler)``; it then
    receives every merge compaction the database picks.
    """

    #: Device faults the retry/fallback machinery absorbs.  Anything
    #: else (corruption, resource misconfiguration) still propagates.
    RECOVERABLE_FAULTS = (FpgaProtocolError, FpgaTimeoutError)

    def __init__(self, device: FcaeDevice, options: Options | None = None,
                 cpu_model: CpuCostModel | None = None,
                 verify_outputs: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None,
                 events=None,
                 max_retries: int = 1,
                 retry_backoff_seconds: float = 0.0,
                 fallback_to_software: bool = True,
                 task_window_seconds: float = 60.0,
                 tenant: str = "system",
                 backends: Optional[dict[str, AcceleratorBackend]] = None):
        self.device = device
        self.options = options or device.options
        self.comparator = InternalKeyComparator(self.options.comparator)
        self.cpu_model = cpu_model or device.cpu_model
        self.backends = backends or make_backends(
            device, self.options, self.comparator, self.cpu_model)
        if "cpu" not in self.backends:
            raise ValueError("backend registry must include 'cpu' "
                             "(the terminal fallback target)")
        self.verify_outputs = verify_outputs
        self.max_retries = max(0, max_retries)
        self.retry_backoff_seconds = max(0.0, retry_backoff_seconds)
        self.fallback_to_software = fallback_to_software
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        self.events = resolve_events(events)
        self._m = SchedulerMetrics(self.metrics,
                                   inst=self.metrics.instance_label())
        self.stats = SchedulerStats(self._m)
        #: Route taken by the most recent task *on this thread* — the
        #: driver's unit workers run tasks concurrently, so a plain
        #: attribute would race (``LsmDB`` reads it for the journal's
        #: ``backend`` field right after the executor returns).
        self._local = threading.local()
        #: Compaction is house work, so its task window carries a tenant
        #: label too ("system" by default): dashboards list it next to
        #: the user tenants instead of in an unlabeled bucket.
        self.tenant = tenant
        self.task_window = WindowedHistogram(
            window_seconds=task_window_seconds)
        publish_window(
            self.metrics, "scheduler_task_window_seconds",
            "Sliding-window compaction task duration quantiles.",
            self.task_window, inst=self._m.labels["inst"],
            tenant=tenant)

    def last_route(self) -> Optional[str]:
        """Backend that ran the last task completed on the calling
        thread: ``"cpu"``, ``"fpga-sim"``, ``"batch"`` — or
        ``"fallback"`` when a faulting accelerator degraded to the CPU
        merge."""
        return getattr(self._local, "route", None)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def pick_backend(self, spec: CompactionSpec) -> str:
        """Backend ``spec`` will route to under ``Options.accelerator``.

        Forced modes return their backend (``"fpga-sim"`` degrades to
        ``"cpu"`` when the input-stream count exceeds the engine's N —
        Fig 6's branch); ``"auto"`` returns the argmin of the capable
        backends' wall-clock cost estimates.
        """
        mode = self.options.accelerator
        if mode == "auto":
            capable = [backend for backend in self.backends.values()
                       if backend.can_run(spec)]
            return min(capable,
                       key=lambda b: b.estimate_seconds(spec)).name
        backend = self.backends[mode if mode in self.backends else "cpu"]
        if not backend.can_run(spec):
            return "cpu"
        return backend.name

    def should_offload(self, spec: CompactionSpec) -> bool:
        """Fig 6's branch: FPGA iff the input-stream count fits N."""
        return self.backends["fpga-sim"].can_run(spec)

    def estimate_costs(self, spec: CompactionSpec) -> dict[str, float]:
        """Wall-clock estimate per capable backend (routing's inputs)."""
        return {name: backend.estimate_seconds(spec)
                for name, backend in self.backends.items()
                if backend.can_run(spec)}

    def __call__(self, spec: CompactionSpec, input_tables: list,
                 parent_tables: list,
                 drop_deletions: bool) -> list[OutputTable]:
        name = self.pick_backend(spec)
        backend = self.backends[name]
        self._m.tasks[self._legacy_route(name)].inc()
        self._m.backend_tasks[name].inc()
        self._m.task_input_bytes.observe(spec.total_input_bytes)
        self._local.route = name
        start = time.perf_counter()
        try:
            with self.tracer.span(
                    "compaction.route", route=name, level=spec.level,
                    input_streams=spec.fpga_input_count()) as span:
                if name == "cpu":
                    # The reference merge has no device faults to absorb.
                    return self._run_backend(backend, spec, input_tables,
                                             parent_tables, drop_deletions)
                return self._run_with_recovery(
                    backend, spec, input_tables, parent_tables,
                    drop_deletions, span)
        finally:
            self.task_window.observe(time.perf_counter() - start)

    @staticmethod
    def _legacy_route(backend_name: str) -> str:
        """Fold backend names onto the historical fpga/software routes."""
        return "fpga" if backend_name == "fpga-sim" else "software"

    def _run_with_recovery(self, backend: AcceleratorBackend,
                           spec: CompactionSpec,
                           input_tables: list, parent_tables: list,
                           drop_deletions: bool,
                           span) -> list[OutputTable]:
        """Offload with bounded retry + backoff; degrade to the CPU
        merge when the accelerator keeps failing (LUDA's CPU fallback).
        Every backend produces byte-identical tables, so failover
        preserves the key space exactly."""
        attempt = 0
        while True:
            try:
                return self._run_backend(backend, spec, input_tables,
                                         parent_tables, drop_deletions)
            except self.RECOVERABLE_FAULTS as error:
                kind = self._fault_kind(error)
                self._m.faults[kind].inc()
                self.events.emit("fault", kind=kind, level=spec.level,
                                 attempt=attempt + 1, backend=backend.name)
                span.set(fault=kind, attempts=attempt + 1)
                if attempt < self.max_retries:
                    attempt += 1
                    self._m.retries.inc()
                    self.events.emit("retry", kind=kind, level=spec.level,
                                     attempt=attempt, backend=backend.name)
                    if self.retry_backoff_seconds:
                        time.sleep(self.retry_backoff_seconds
                                   * (2 ** (attempt - 1)))
                    continue
                if not self.fallback_to_software:
                    raise
                self._m.fallbacks.inc()
                self.events.emit("fallback", kind=kind, level=spec.level,
                                 source=backend.name, target="cpu")
                span.set(fallback=True)
                self._local.route = "fallback"
                return self._run_backend(self.backends["cpu"], spec,
                                         input_tables, parent_tables,
                                         drop_deletions)

    @staticmethod
    def _fault_kind(error: Exception) -> str:
        if isinstance(error, FpgaTimeoutError):
            return "timeout"
        if isinstance(error, FpgaDmaError):
            return "dma"
        return "protocol"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_backend(self, backend: AcceleratorBackend,
                     spec: CompactionSpec, input_tables: list,
                     parent_tables: list,
                     drop_deletions: bool) -> list[OutputTable]:
        result: BackendResult = backend.run(spec, input_tables,
                                            parent_tables, drop_deletions)
        route = self._legacy_route(backend.name)
        self._m.input_bytes[route].inc(result.input_bytes)
        self._m.backend_input_bytes[backend.name].inc(result.input_bytes)
        self._m.backend_seconds[backend.name].inc(result.wall_seconds)
        for phase, seconds in result.phase_seconds.items():
            self._m.phase_seconds[phase].inc(seconds)
            self.tracer.phase(f"phase:{phase}", seconds)
        modeled = result.phase_seconds.get("software")
        if modeled is not None:
            timeline = obs.current_timeline()
            if timeline is not None:
                # Software merges join the unified trace on the host
                # track, on the modeled harness-CPU clock.
                t0 = timeline.cursor_us
                timeline.interval(
                    "host", "scheduler", "software_merge", t0,
                    t0 + modeled * 1e6,
                    {"bytes": spec.total_input_bytes, "level": spec.level})
                timeline.advance_to(t0 + modeled * 1e6)
        if self.verify_outputs and backend.name != "cpu":
            self._verify(result.outputs)
        return result.outputs

    # ------------------------------------------------------------------
    # Contract checks
    # ------------------------------------------------------------------

    def _verify(self, outputs: list[OutputTable]) -> None:
        """The FPGA result must honor the storage format's invariants:
        per-table sorted ranges and cross-table disjointness."""
        for prev, cur in zip(outputs, outputs[1:]):
            if self.comparator.compare(prev.largest, cur.smallest) >= 0:
                raise FpgaProtocolError(
                    "FPGA produced overlapping output tables")
        for output in outputs:
            if self.comparator.compare(output.smallest, output.largest) > 0:
                raise FpgaProtocolError(
                    "FPGA produced an inverted table key range")
