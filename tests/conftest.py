"""Shared fixtures: small-geometry options, comparators, table builders."""

from __future__ import annotations

import random

import pytest

from repro.analysis import watchdog as lockwatch
from repro.lsm.compaction import _BufferFile
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder


#: Concurrency-heavy modules where the lock-order watchdog rides along:
#: every test in these files runs with instrumented locks, and teardown
#: asserts the acquisition graph stayed acyclic.
_WATCHDOG_MODULES = {
    "test_driver",
    "test_durability",
    "test_obs_concurrency",
    "test_service",
}


@pytest.fixture(autouse=True)
def _lock_watchdog(request):
    """Enable the runtime lock-order watchdog for concurrency tests.

    The watchdog wrappers are created lazily (``lockwatch.make_lock``),
    so enabling here instruments every DB/driver/server the test builds.
    A detected lock-order cycle fails the test at teardown even if the
    interleaving never actually deadlocked on this run.
    """
    module = request.node.module.__name__.rsplit(".", 1)[-1]
    if module not in _WATCHDOG_MODULES:
        yield
        return
    was_enabled = lockwatch.enabled()
    lockwatch.enable()
    lockwatch.reset()
    try:
        yield
        cycles = lockwatch.get().cycles()
        assert not cycles, (
            f"lock-order cycles detected by watchdog: {cycles}")
    finally:
        lockwatch.reset()
        if not was_enabled:
            lockwatch.disable()


@pytest.fixture
def options():
    """Small blocks/tables so tests exercise rollover paths quickly."""
    return Options(
        block_size=512,
        sstable_size=8 * 1024,
        write_buffer_size=16 * 1024,
        max_level0_size=64 * 1024,
        compression="snappy",
        block_cache_capacity=64 * 1024,
    )


@pytest.fixture
def plain_options():
    """Like ``options`` but uncompressed (faster for engine tests)."""
    return Options(
        block_size=512,
        sstable_size=8 * 1024,
        write_buffer_size=16 * 1024,
        max_level0_size=64 * 1024,
        compression="none",
        bloom_bits_per_key=0,
    )


@pytest.fixture
def icmp(options):
    return InternalKeyComparator(options.comparator)


def make_entries(count: int, seed: int = 0, seq_base: int = 1,
                 value_size: int = 40, delete_every: int = 0,
                 key_space: int = 10 ** 9):
    """Sorted (internal_key, value) entries with unique user keys."""
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(key_space), count))
    entries = []
    for i, raw in enumerate(keys):
        user_key = f"{raw:016d}".encode()
        if delete_every and i % delete_every == 0:
            internal = encode_internal_key(user_key, seq_base + i,
                                           TYPE_DELETION)
            entries.append((internal, b""))
        else:
            internal = encode_internal_key(user_key, seq_base + i, TYPE_VALUE)
            value = (f"v{raw}".encode() * 8)[:value_size]
            entries.append((internal, value))
    return entries


def build_table_image(entries, options, icmp) -> bytes:
    """Serialize sorted entries into an SSTable image."""
    dest = _BufferFile()
    builder = TableBuilder(options, dest, icmp)
    for key, value in entries:
        builder.add(key, value)
    builder.finish()
    return bytes(dest.data)


@pytest.fixture
def table_factory(options, icmp):
    def factory(entries):
        return build_table_image(entries, options, icmp)
    return factory
