"""Env abstraction: MemEnv and OsEnv behave identically."""

import pytest

from repro.errors import NotFoundError
from repro.lsm.env import MemEnv, OsEnv


@pytest.fixture(params=["mem", "os"])
def env(request, tmp_path):
    if request.param == "mem":
        return MemEnv(), "root"
    return OsEnv(), str(tmp_path)


class TestFiles:
    def test_write_read(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f1")
        handle.append(b"hello ")
        handle.append(b"world")
        handle.close()
        assert fs.read_file(f"{root}/f1") == b"hello world"

    def test_size(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f")
        handle.append(b"12345")
        handle.close()
        assert fs.file_size(f"{root}/f") == 5
        assert handle.size == 5

    def test_exists(self, env):
        fs, root = env
        fs.create_dir(root)
        assert not fs.file_exists(f"{root}/nope")
        handle = fs.new_writable_file(f"{root}/yes")
        handle.close()
        assert fs.file_exists(f"{root}/yes")

    def test_delete(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f")
        handle.close()
        fs.delete_file(f"{root}/f")
        assert not fs.file_exists(f"{root}/f")

    def test_delete_missing_raises(self, env):
        fs, root = env
        with pytest.raises(NotFoundError):
            fs.delete_file(f"{root}/ghost")

    def test_read_missing_raises(self, env):
        fs, root = env
        with pytest.raises(NotFoundError):
            fs.read_file(f"{root}/ghost")

    def test_rename(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/old")
        handle.append(b"data")
        handle.close()
        fs.rename_file(f"{root}/old", f"{root}/new")
        assert not fs.file_exists(f"{root}/old")
        assert fs.read_file(f"{root}/new") == b"data"

    def test_rename_overwrites(self, env):
        fs, root = env
        fs.create_dir(root)
        for name, content in (("a", b"1"), ("b", b"2")):
            handle = fs.new_writable_file(f"{root}/{name}")
            handle.append(content)
            handle.close()
        fs.rename_file(f"{root}/a", f"{root}/b")
        assert fs.read_file(f"{root}/b") == b"1"

    def test_list_dir(self, env):
        fs, root = env
        fs.create_dir(root)
        for name in ("c", "a", "b"):
            fs.new_writable_file(f"{root}/{name}").close()
        assert fs.list_dir(root) == ["a", "b", "c"]


class TestAppendable:
    def test_appendable_preserves_content(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/log")
        handle.append(b"first|")
        handle.close()
        handle = fs.new_appendable_file(f"{root}/log")
        handle.append(b"second")
        handle.close()
        assert fs.read_file(f"{root}/log") == b"first|second"

    def test_appendable_size_seeded_from_existing(self, env):
        """Regression: OsEnv's appendable handle reported size 0 for a
        non-empty file, so WAL block-offset accounting restarted from a
        block boundary it wasn't at."""
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/log")
        handle.append(b"x" * 100)
        handle.close()
        handle = fs.new_appendable_file(f"{root}/log")
        assert handle.size == 100
        handle.append(b"y" * 7)
        assert handle.size == 107
        handle.close()

    def test_appendable_missing_file_starts_empty(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_appendable_file(f"{root}/fresh")
        assert handle.size == 0
        handle.append(b"ab")
        handle.close()
        assert fs.read_file(f"{root}/fresh") == b"ab"


class TestSync:
    def test_sync_flushes_and_persists(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f")
        handle.append(b"durable")
        handle.sync()
        assert fs.read_file(f"{root}/f") == b"durable"
        handle.close()

    def test_memenv_counts_syncs(self):
        fs = MemEnv()
        handle = fs.new_writable_file("f")
        handle.append(b"x")
        handle.sync()
        handle.sync()
        assert handle.sync_count == 2
        handle.close()


class TestJournalAppendPath:
    def test_reopened_db_appends_journal_segment(self, env):
        """Regression (journal path): reopening a DB must append a new
        ``journal_open`` segment to EVENTS.jsonl, not clobber or corrupt
        the first one — exercises the appendable-file size fix on OsEnv."""
        from repro.lsm import LsmDB, Options

        fs, root = env
        options = Options(event_journal=True, bloom_bits_per_key=0)
        db = LsmDB(f"{root}/jdb", options, env=fs)
        db.put(b"k", b"v")
        db.close()
        db = LsmDB(f"{root}/jdb", options, env=fs)
        assert db.journal_segments() == 2
        assert db.get(b"k") == b"v"
        db.close()


class TestMemEnvSpecifics:
    def test_append_after_close_raises(self):
        fs = MemEnv()
        handle = fs.new_writable_file("f")
        handle.close()
        with pytest.raises(ValueError):
            handle.append(b"late")

    def test_path_normalization(self):
        fs = MemEnv()
        handle = fs.new_writable_file("dir/./file")
        handle.append(b"x")
        handle.close()
        assert fs.read_file("dir/file") == b"x"
