"""Hot-path microbenchmarks: real wall-clock time of the substrate the
whole reproduction stands on.

Unlike the paper-figure experiments (deterministic model output), these
rows measure Python execution speed of the four hottest paths — CRC32C,
varint decode, block codec, SSTable build/scan, the end-to-end CPU merge
and the pipeline timing simulator — with a repeat/warmup harness that
reports p50/p95 wall times instead of a single noisy sample.  The
``obs_*`` rows bound the flight recorder's cost: put/get loops with
observability off vs on, plus the disabled path's per-op residue.

``fcae-bench hotpath --bench-json BENCH_hotpath.json`` emits the rows in
the schema ``tools/check_regression.py`` understands; the committed
baseline ``benchmarks/baselines/BENCH_hotpath.json`` holds the *seed*
(pre-optimization) numbers, so ``check_regression.py --perf`` gates any
future PR from regressing below seed performance, and
``benchmarks/test_micro_hotpath.py`` asserts the overhaul's speedup
floors against the same file.

Environment knobs: ``REPRO_HOTPATH_REPEAT`` / ``REPRO_HOTPATH_WARMUP``
override the per-bench sample counts (CI quick mode).
"""

from __future__ import annotations

import os
import random
import time
from statistics import median

from repro.bench.common import ExperimentResult, scaled, two_input_config
from repro.fpga.engine import CompactionEngine, simulate_synthetic
from repro.host.batch_merge import BatchMergeEngine
from repro.lsm.block import Block, BlockBuilder
from repro.lsm.compaction import _BufferFile, compact, table_sources
from repro.lsm.db import LsmDB
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder, TableReader
from repro.obs.events import NullJournal
from repro.util.comparator import BytewiseComparator
from repro.util.crc32c import crc32c
from repro.util.varint import decode_varint64, encode_varint64

ICMP = InternalKeyComparator(BytewiseComparator())
#: Codec-focused options: no snappy (its cost is its own benchmark in
#: the substrate suite) and no bloom filter, so the rows isolate the
#: merge/block/crc paths this suite guards.
OPTIONS = Options(compression="none", bloom_bits_per_key=0,
                  sstable_size=1 << 20)

DEFAULT_REPEAT = 7
DEFAULT_WARMUP = 2


def _sample(fn, repeat: int, warmup: int) -> tuple[float, float]:
    """Wall-time ``fn`` ``repeat`` times after ``warmup`` throwaway runs;
    returns ``(p50_seconds, p95_seconds)``."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    p50 = median(times)
    p95 = times[min(len(times) - 1, int(round(0.95 * (len(times) - 1))))]
    return p50, p95


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------

def _sorted_entries(count: int, seed: int, key_space: int = 10 ** 9,
                    value_len: int = 100) -> list[tuple[bytes, bytes]]:
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(key_space), count))
    return [(encode_internal_key(f"{k:016d}".encode(), i + 1, TYPE_VALUE),
             bytes(rng.randrange(256) for _ in range(4)) * (value_len // 4))
            for i, k in enumerate(keys)]


def _table_image(entries: list[tuple[bytes, bytes]]) -> bytes:
    dest = _BufferFile()
    builder = TableBuilder(OPTIONS, dest, ICMP)
    for key, value in entries:
        builder.add(key, value)
    builder.finish()
    return bytes(dest.data)


def _merge_inputs(per_table: int, seed: int = 11
                  ) -> tuple[list[bytes], int]:
    """Four overlapping sorted runs with shadowed versions and
    tombstones — the end-to-end CPU compaction workload."""
    rng = random.Random(seed)
    universe = rng.sample(range(10 ** 9), per_table * 3)
    images = []
    sequence = 1
    for table_no in range(4):
        picks = sorted(rng.sample(universe, per_table))
        entries = []
        for k in picks:
            kind = TYPE_DELETION if rng.random() < 0.05 else TYPE_VALUE
            value = (b"" if kind == TYPE_DELETION
                     else (f"val-{k:016d}-".encode() * 8)[:96])
            entries.append((encode_internal_key(
                f"{k:016d}".encode(), sequence, kind), value))
            sequence += 1
        images.append(_table_image(entries))
    return images, sum(len(img) for img in images)


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

def run(scale: float = 1.0) -> ExperimentResult:
    repeat = int(os.environ.get("REPRO_HOTPATH_REPEAT", DEFAULT_REPEAT))
    warmup = int(os.environ.get("REPRO_HOTPATH_WARMUP", DEFAULT_WARMUP))

    result = ExperimentResult(
        name="hotpath",
        title="Hot-path microbenchmarks (p50/p95 wall time, "
              f"repeat={repeat}, warmup={warmup})",
        columns=["bench", "p50_us", "p95_us", "mb_per_s"],
    )

    (n_block, n_table, n_merge, n_varint, n_pairs, n_tail,
     n_obs) = scaled([256, 2000, 1000, 3000, 1500, 2400, 1200], scale)

    # -- crc32c over a 4 KB block-sized payload ------------------------
    payload = bytes(range(256)) * 16
    _add(result, "crc32c_4k", lambda: crc32c(payload), len(payload),
         repeat, warmup)

    # -- bulk varint decode --------------------------------------------
    rng = random.Random(5)
    varints = [rng.randrange(1 << rng.choice((7, 14, 21, 35, 56)))
               for _ in range(n_varint)]
    stream = b"".join(encode_varint64(v) for v in varints)

    def decode_stream():
        offset = 0
        end = len(stream)
        while offset < end:
            _, offset = decode_varint64(stream, offset)

    _add(result, "varint_decode", decode_stream, len(stream),
         repeat, warmup)

    # -- block codec: full decode and seeks ----------------------------
    block_entries = [(f"key{i:012d}".encode(), b"v" * 48)
                     for i in range(n_block)]
    builder = BlockBuilder(16)
    for key, value in block_entries:
        builder.add(key, value)
    block_image = builder.finish()

    def decode_block():
        count = sum(1 for _ in Block(block_image))
        assert count == n_block

    _add(result, "block_decode", decode_block, len(block_image),
         repeat, warmup)

    probes = [block_entries[i][0]
              for i in range(0, n_block, max(1, n_block // 32))]
    cmp = BytewiseComparator()
    block = Block(block_image)

    def seek_block():
        for probe in probes:
            assert block.seek(probe, cmp) is not None

    _add(result, "block_seek", seek_block,
         len(probes) * len(block_image) // n_block, repeat, warmup)

    # -- sstable build → scan ------------------------------------------
    table_entries = _sorted_entries(n_table, seed=3, value_len=64)
    entry_bytes = sum(len(k) + len(v) for k, v in table_entries)
    _add(result, "sstable_build", lambda: _table_image(table_entries),
         entry_bytes, repeat, warmup)

    table_image = _table_image(table_entries)

    def scan_table():
        count = sum(1 for _ in TableReader(table_image, ICMP, OPTIONS))
        assert count == n_table

    _add(result, "sstable_scan", scan_table, len(table_image),
         repeat, warmup)

    # -- end-to-end CPU compaction of a 4-input merge ------------------
    merge_images, merge_bytes = _merge_inputs(n_merge)
    merge_readers = [TableReader(img, ICMP, OPTIONS)
                     for img in merge_images]

    def merge_4way():
        stats = compact(table_sources(merge_readers), OPTIONS, ICMP,
                        drop_deletions=True)
        assert stats.input_pairs == 4 * n_merge

    _add(result, "cpu_merge_4way", merge_4way, merge_bytes,
         repeat, warmup)

    # -- the same merge through the batched (LUDA-style) engine --------
    batch_engine = BatchMergeEngine(OPTIONS, ICMP)

    def batch_4way():
        stats = batch_engine.compact([[r] for r in merge_readers],
                                     drop_deletions=True)
        assert stats.input_pairs == 4 * n_merge

    _add(result, "batch_merge_4way", batch_4way, merge_bytes,
         repeat, warmup)

    # -- pipeline timing simulator -------------------------------------
    config = two_input_config(16)
    pair_bytes = (16 + 8 + 512 + 4) * 2 * n_pairs

    def pipeline_sim():
        report = simulate_synthetic(config, [n_pairs, n_pairs], 16, 512)
        assert report.comparer_rounds == 2 * n_pairs

    _add(result, "pipeline_sim", pipeline_sim, pair_bytes, repeat, warmup)

    # -- functional engine with a long single-input tail ---------------
    head = _table_image(_sorted_entries(max(1, n_tail // 12), seed=21,
                                        key_space=10 ** 6, value_len=64))
    tail = _table_image(_sorted_entries(n_tail, seed=22,
                                        key_space=10 ** 9, value_len=64))
    engine = CompactionEngine(two_input_config(16), OPTIONS)

    def engine_tail():
        engine.run_on_images([[head], [tail]])

    _add(result, "engine_tail_run", engine_tail, len(head) + len(tail),
         repeat, warmup)

    # -- observability overhead on the put/get path --------------------
    # Same put+get loop against two memtable-only stores: one with the
    # flight recorder off (default options) and one with the journal and
    # latency windows on.  `obs_overhead` measures the *disabled* path's
    # residue — the NullJournal call and the windows-off guard that every
    # operation pays even when nothing is recording.
    obs_pairs = [(f"obs{i:012d}".encode(), b"x" * 64)
                 for i in range(n_obs)]
    obs_nbytes = sum(len(k) + len(v) for k, v in obs_pairs)

    def _obs_db(**obs_options) -> LsmDB:
        # 64 MB buffer: the loop never flushes, isolating the per-op
        # instrumentation cost from maintenance work.
        db = LsmDB("hotpath-obs", Options(write_buffer_size=64 << 20,
                                          compression="none",
                                          **obs_options))
        for key, value in obs_pairs:
            db.put(key, value)
        return db

    db_off = _obs_db()
    db_on = _obs_db(event_journal=True, latency_window_seconds=300.0)

    def _put_get(db: LsmDB):
        def fn():
            for key, value in obs_pairs:
                db.put(key, value)
                db.get(key)
        return fn

    _add(result, "obs_put_get_off", _put_get(db_off), 2 * obs_nbytes,
         repeat, warmup)
    _add(result, "obs_put_get_on", _put_get(db_on), 2 * obs_nbytes,
         repeat, warmup)

    null_journal = db_off.events
    windows = db_off._windows
    assert isinstance(null_journal, NullJournal) and windows is None

    def disabled_obs_primitives():
        for _ in range(n_obs):
            if windows is not None:
                raise AssertionError("windows unexpectedly enabled")
            null_journal.emit("flush_start")
            null_journal.emit("flush_finish")

    _add(result, "obs_overhead", disabled_obs_primitives, 0,
         repeat, warmup)

    result.notes.append(
        "wall-clock rows; gate with tools/check_regression.py --perf "
        "against benchmarks/baselines/BENCH_hotpath.json (seed numbers)")
    return result


def _add(result: ExperimentResult, name: str, fn, nbytes: int,
         repeat: int, warmup: int) -> None:
    p50, p95 = _sample(fn, repeat, warmup)
    result.add_row(name, round(p50 * 1e6, 1), round(p95 * 1e6, 1),
                   round(nbytes / p50 / 1e6, 2) if p50 > 0 else 0.0)
