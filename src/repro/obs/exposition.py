"""Prometheus text-format exposition and a minimal parser.

``to_prometheus_text`` renders one or more registries in the classic
``text/plain; version=0.0.4`` format: ``# HELP`` / ``# TYPE`` headers per
family, one sample per labeled child, histogram children expanded into
``_bucket{le=...}`` / ``_sum`` / ``_count`` series.  Families registered
via :meth:`MetricsRegistry.describe` but never sampled still emit their
headers, so a scrape of a fresh process already advertises the full
metric surface.

Histogram buckets that captured an :class:`~repro.obs.registry.Exemplar`
append it in OpenMetrics exemplar syntax::

    lsm_op_latency_seconds_bucket{le="0.25"} 7 # {trace_id="42"} 0.18 17.5

``parse_prometheus_text`` is the inverse for the subset this repo emits —
enough for tests and the benchmark acceptance check, not a general
scraper.  Parsed exemplars come back under the ``"exemplars"`` key.
"""

from __future__ import annotations

import math
import re
from typing import Iterable

from repro.obs.registry import (Exemplar, Histogram, MetricFamily,
                                MetricsRegistry)


def _exemplar_text(exemplar: Exemplar) -> str:
    suffix = (f' # {{trace_id="{_escape_label_value(exemplar.trace_id)}"}}'
              f" {format_value(exemplar.value)}")
    if exemplar.ts is not None:
        suffix += f" {format_value(exemplar.ts)}"
    return suffix


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Integers render bare; floats via repr (full precision)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_text(labels: Iterable[tuple[str, str]],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in pairs)
    return "{" + inner + "}"


def _render_family(lines: list[str], family: MetricFamily,
                   seen_headers: set[str]) -> None:
    if family.name not in seen_headers:
        seen_headers.add(family.name)
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
    for labels, child in family.children.items():
        if family.kind == "histogram":
            assert isinstance(child, Histogram)
            exemplars = child.exemplars()
            for index, (bound, cumulative) in enumerate(
                    child.cumulative_counts()):
                le = "+Inf" if bound == math.inf else format_value(bound)
                exemplar = exemplars.get(index)
                lines.append(
                    f"{family.name}_bucket"
                    f"{_label_text(labels, (('le', le),))}"
                    f" {cumulative}"
                    f"{_exemplar_text(exemplar) if exemplar else ''}")
            lines.append(f"{family.name}_sum{_label_text(labels)} "
                         f"{format_value(child.sum)}")
            lines.append(f"{family.name}_count{_label_text(labels)} "
                         f"{child.count}")
        else:
            value = child.value  # type: ignore[union-attr]
            if value is None:
                continue  # callback gauge with no current sample
            lines.append(f"{family.name}{_label_text(labels)} "
                         f"{format_value(value)}")


def to_prometheus_text(*registries: MetricsRegistry) -> str:
    """Render registries as Prometheus text exposition (duplicates are
    rendered once; same-named families from distinct registries
    concatenate their samples under one header)."""
    unique: list[MetricsRegistry] = []
    for registry in registries:
        if not any(registry is seen for seen in unique):
            unique.append(registry)
    by_name: dict[str, list[MetricFamily]] = {}
    for registry in unique:
        for family in registry.collect():
            by_name.setdefault(family.name, []).append(family)
    lines: list[str] = []
    seen_headers: set[str] = set()
    for name in sorted(by_name):
        for family in by_name[name]:
            _render_family(lines, family, seen_headers)
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: str, *registries: MetricsRegistry,
                     overwrite: bool = False) -> None:
    """Write the exposition text to ``path``.

    A metrics dump is a point-in-time snapshot — appending would corrupt
    it — so an existing file is an error unless ``overwrite=True`` (the
    CLIs map ``--overwrite`` onto it).  Never silently clobbers."""
    mode = "w" if overwrite else "x"
    try:
        with open(path, mode) as handle:
            handle.write(to_prometheus_text(*registries))
    except FileExistsError:
        raise FileExistsError(
            f"{path} already exists; pass overwrite=True (CLI: "
            f"--overwrite) to replace it") from None


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+#\s+\{(?P<exlabels>[^}]*)\}\s+(?P<exvalue>\S+)"
    r"(?:\s+(?P<exts>\S+))?)?"
    r"\s*$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (value.replace(r"\"", '"').replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition text into::

        {"families": {name: kind}, "samples":
            {series_name: {label_tuple: value}},
         "exemplars": {series_name: {label_tuple: Exemplar}}}

    Histogram series keep their expanded ``_bucket``/``_sum``/``_count``
    names.  OpenMetrics exemplar suffixes on bucket lines are parsed into
    ``Exemplar`` objects keyed the same way as the samples.  Raises
    ``ValueError`` on malformed sample lines, which is what makes it
    usable as a "the dump is parseable" check.
    """
    families: dict[str, str] = {}
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    exemplars: dict[str, dict[tuple[tuple[str, str], ...], Exemplar]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        raw_labels = match.group("labels")
        labels: tuple[tuple[str, str], ...] = ()
        if raw_labels:
            labels = tuple(sorted(
                (key, _unescape(value))
                for key, value in _LABEL_PAIR_RE.findall(raw_labels)))
        raw_value = match.group("value")
        value = (math.inf if raw_value == "+Inf"
                 else -math.inf if raw_value == "-Inf"
                 else float(raw_value))
        name = match.group("name")
        samples.setdefault(name, {})[labels] = value
        if match.group("exlabels") is not None:
            ex_pairs = dict(
                (key, _unescape(val)) for key, val
                in _LABEL_PAIR_RE.findall(match.group("exlabels")))
            raw_ts = match.group("exts")
            exemplars.setdefault(name, {})[labels] = Exemplar(
                float(match.group("exvalue")),
                ex_pairs.get("trace_id", ""),
                float(raw_ts) if raw_ts is not None else None)
    return {"families": families, "samples": samples,
            "exemplars": exemplars}
