"""Atomic write batches, serialized in LevelDB's WriteBatch format.

Wire layout::

    fixed64 sequence | fixed32 count | records...
    record := TYPE_VALUE    varstring key varstring value
            | TYPE_DELETION varstring key

A batch is both the unit the WAL persists and the unit applied to the
memtable, so a crash either keeps all of a batch or none of it.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CorruptionError
from repro.lsm.internal import TYPE_DELETION, TYPE_VALUE
from repro.lsm.memtable import MemTable
from repro.util.coding import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)

_HEADER_SIZE = 12


class WriteBatch:
    """Collects puts/deletes for one atomic commit."""

    def __init__(self) -> None:
        self._records: list[tuple[int, bytes, bytes]] = []

    def put(self, key: bytes, value: bytes) -> None:
        self._records.append((TYPE_VALUE, key, value))

    def delete(self, key: bytes) -> None:
        self._records.append((TYPE_DELETION, key, b""))

    def clear(self) -> None:
        self._records.clear()

    def extend(self, other: "WriteBatch") -> None:
        """Append ``other``'s records (group-commit splicing: the spliced
        batch commits as one WAL record with contiguous sequences)."""
        self._records.extend(other._records)

    def __len__(self) -> int:
        return len(self._records)

    def byte_size(self) -> int:
        """Approximate payload bytes (keys + values)."""
        return sum(len(k) + len(v) for _, k, v in self._records)

    def __iter__(self) -> Iterator[tuple[int, bytes, bytes]]:
        return iter(self._records)

    def serialize(self, sequence: int) -> bytes:
        """Encode with a starting ``sequence`` for WAL storage."""
        out = bytearray()
        out += encode_fixed64(sequence)
        out += encode_fixed32(len(self._records))
        for value_type, key, value in self._records:
            out.append(value_type)
            put_length_prefixed_slice(out, key)
            if value_type == TYPE_VALUE:
                put_length_prefixed_slice(out, value)
        return bytes(out)

    @staticmethod
    def deserialize(data: bytes) -> tuple[int, "WriteBatch"]:
        """Decode a serialized batch; returns (sequence, batch)."""
        if len(data) < _HEADER_SIZE:
            raise CorruptionError("write batch header truncated")
        sequence = decode_fixed64(data, 0)
        count = decode_fixed32(data, 8)
        batch = WriteBatch()
        pos = _HEADER_SIZE
        for _ in range(count):
            if pos >= len(data):
                raise CorruptionError("write batch record truncated")
            value_type = data[pos]
            pos += 1
            key, pos = get_length_prefixed_slice(data, pos)
            if value_type == TYPE_VALUE:
                value, pos = get_length_prefixed_slice(data, pos)
                batch.put(key, value)
            elif value_type == TYPE_DELETION:
                batch.delete(key)
            else:
                raise CorruptionError(f"bad batch record type {value_type}")
        if pos != len(data):
            raise CorruptionError("trailing bytes after write batch")
        return sequence, batch

    def apply_to_memtable(self, memtable: MemTable, sequence: int) -> int:
        """Insert every record; returns the next unused sequence number."""
        for value_type, key, value in self._records:
            memtable.add(sequence, value_type, key, value)
            sequence += 1
        return sequence
