"""LD002: mutating a guarded attribute without holding its mutex."""

import threading


class Queue:
    def __init__(self):
        self._mutex = threading.Lock()
        self._pending = []  # guarded_by: _mutex

    def push_ok(self, item):
        with self._mutex:
            self._pending.append(item)

    def push_broken(self, item):
        self._pending.append(item)  # VIOLATION LD002
