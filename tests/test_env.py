"""Env abstraction: MemEnv and OsEnv behave identically."""

import pytest

from repro.errors import NotFoundError
from repro.lsm.env import MemEnv, OsEnv


@pytest.fixture(params=["mem", "os"])
def env(request, tmp_path):
    if request.param == "mem":
        return MemEnv(), "root"
    return OsEnv(), str(tmp_path)


class TestFiles:
    def test_write_read(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f1")
        handle.append(b"hello ")
        handle.append(b"world")
        handle.close()
        assert fs.read_file(f"{root}/f1") == b"hello world"

    def test_size(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f")
        handle.append(b"12345")
        handle.close()
        assert fs.file_size(f"{root}/f") == 5
        assert handle.size == 5

    def test_exists(self, env):
        fs, root = env
        fs.create_dir(root)
        assert not fs.file_exists(f"{root}/nope")
        handle = fs.new_writable_file(f"{root}/yes")
        handle.close()
        assert fs.file_exists(f"{root}/yes")

    def test_delete(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/f")
        handle.close()
        fs.delete_file(f"{root}/f")
        assert not fs.file_exists(f"{root}/f")

    def test_delete_missing_raises(self, env):
        fs, root = env
        with pytest.raises(NotFoundError):
            fs.delete_file(f"{root}/ghost")

    def test_read_missing_raises(self, env):
        fs, root = env
        with pytest.raises(NotFoundError):
            fs.read_file(f"{root}/ghost")

    def test_rename(self, env):
        fs, root = env
        fs.create_dir(root)
        handle = fs.new_writable_file(f"{root}/old")
        handle.append(b"data")
        handle.close()
        fs.rename_file(f"{root}/old", f"{root}/new")
        assert not fs.file_exists(f"{root}/old")
        assert fs.read_file(f"{root}/new") == b"data"

    def test_rename_overwrites(self, env):
        fs, root = env
        fs.create_dir(root)
        for name, content in (("a", b"1"), ("b", b"2")):
            handle = fs.new_writable_file(f"{root}/{name}")
            handle.append(content)
            handle.close()
        fs.rename_file(f"{root}/a", f"{root}/b")
        assert fs.read_file(f"{root}/b") == b"1"

    def test_list_dir(self, env):
        fs, root = env
        fs.create_dir(root)
        for name in ("c", "a", "b"):
            fs.new_writable_file(f"{root}/{name}").close()
        assert fs.list_dir(root) == ["a", "b", "c"]


class TestMemEnvSpecifics:
    def test_append_after_close_raises(self):
        fs = MemEnv()
        handle = fs.new_writable_file("f")
        handle.close()
        with pytest.raises(ValueError):
            handle.append(b"late")

    def test_path_normalization(self):
        fs = MemEnv()
        handle = fs.new_writable_file("dir/./file")
        handle.append(b"x")
        handle.close()
        assert fs.read_file("dir/file") == b"x"
