"""Device memory interface — the paper's Figs 7 and 8.

Device DRAM is partitioned into an **Input Memory** and an **Output
Memory**, each made of three regions:

* **MetaIn Memory** (input side): per input, the number of SSTables and,
  per SSTable, the offsets/sizes of its index block and first data block
  within the corresponding regions;
* **Index Block Memory**: the extracted index blocks, stored
  consecutively (the separated Index Block Decoder walks these);
* **Data Block Memory**: SSTable data regions, aligned to ``W_in`` bytes
  so AXI reads run full-width (outputs are ``W_out``-aligned).

* **MetaOut Memory** (output side): number of generated SSTables and,
  per table, its size and smallest/largest internal keys — what the host
  needs for "compaction post processing jobs (e.g. recording key range)".

Wire encodings are fixed-width little-endian plus length-prefixed keys so
a host and device disagreeing about Python object layouts is impossible —
everything crossing PCIe is bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FpgaProtocolError
from repro.fpga.config import FpgaConfig
from repro.fpga.decoder import SSTableLayout
from repro.fpga.dram import Dram
from repro.lsm.block import BlockBuilder
from repro.lsm.sstable import TableReader
from repro.util.coding import (
    decode_fixed32,
    decode_fixed64,
    encode_fixed32,
    encode_fixed64,
    get_length_prefixed_slice,
    put_length_prefixed_slice,
)


def align_up(offset: int, alignment: int) -> int:
    """Round ``offset`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise FpgaProtocolError(f"bad alignment {alignment}")
    return offset + (-offset) % alignment


@dataclass(frozen=True)
class MetaInEntry:
    """One SSTable's placement, as recorded in MetaIn."""

    index_offset: int
    index_size: int
    data_offset: int
    data_size: int


def encode_meta_in(inputs: list[list[MetaInEntry]]) -> bytes:
    """MetaIn Memory image: per input, SSTable count + placements."""
    out = bytearray()
    out += encode_fixed32(len(inputs))
    for tables in inputs:
        out += encode_fixed32(len(tables))
        for entry in tables:
            out += encode_fixed64(entry.index_offset)
            out += encode_fixed64(entry.index_size)
            out += encode_fixed64(entry.data_offset)
            out += encode_fixed64(entry.data_size)
    return bytes(out)


def decode_meta_in(data: bytes) -> list[list[MetaInEntry]]:
    """Inverse of :func:`encode_meta_in`."""
    num_inputs = decode_fixed32(data, 0)
    pos = 4
    inputs: list[list[MetaInEntry]] = []
    for _ in range(num_inputs):
        count = decode_fixed32(data, pos)
        pos += 4
        tables = []
        for _ in range(count):
            values = [decode_fixed64(data, pos + 8 * i) for i in range(4)]
            pos += 32
            tables.append(MetaInEntry(*values))
        inputs.append(tables)
    return inputs


@dataclass(frozen=True)
class MetaOutEntry:
    """One generated SSTable's summary, as recorded in MetaOut."""

    data_size: int
    smallest_key: bytes
    largest_key: bytes


def encode_meta_out(entries: list[MetaOutEntry]) -> bytes:
    """MetaOut Memory image."""
    out = bytearray()
    out += encode_fixed32(len(entries))
    for entry in entries:
        out += encode_fixed64(entry.data_size)
        put_length_prefixed_slice(out, entry.smallest_key)
        put_length_prefixed_slice(out, entry.largest_key)
    return bytes(out)


def decode_meta_out(data: bytes) -> list[MetaOutEntry]:
    """Inverse of :func:`encode_meta_out`."""
    count = decode_fixed32(data, 0)
    pos = 4
    entries = []
    for _ in range(count):
        size = decode_fixed64(data, pos)
        pos += 8
        smallest, pos = get_length_prefixed_slice(data, pos)
        largest, pos = get_length_prefixed_slice(data, pos)
        entries.append(MetaOutEntry(size, smallest, largest))
    return entries


@dataclass
class InputMemoryImage:
    """Everything the host DMA-writes before starting the kernel."""

    meta_in: bytes
    layouts: list[list[SSTableLayout]]
    total_bytes: int
    meta_in_offset: int


def extract_index_image(image: bytes, reader: TableReader) -> bytes:
    """Rebuild a standalone index-block image for Index Block Memory."""
    builder = BlockBuilder(1)
    for key, handle in reader.index_entries():
        builder.add(key, handle.encode())
    return builder.finish()


def marshal_inputs(dram: Dram, config: FpgaConfig,
                   inputs: list[list[TableReader]],
                   base_offset: int = 0) -> InputMemoryImage:
    """Lay out input SSTables in device DRAM per Fig 7/8.

    Returns the engine-consumable layouts plus the DMA byte count.
    Raises :class:`FpgaProtocolError` when more inputs arrive than the
    engine has Decoder chains.
    """
    if len(inputs) > config.num_inputs:
        raise FpgaProtocolError(
            f"{len(inputs)} inputs exceed engine N={config.num_inputs}")

    index_images: list[list[bytes]] = [
        [extract_index_image(reader.image, reader) for reader in tables]
        for tables in inputs]

    # Region sizing: [MetaIn][Index Block Memory][Data Block Memory].
    meta_entries: list[list[MetaInEntry]] = []
    layouts: list[list[SSTableLayout]] = []

    index_region = base_offset
    index_cursor = index_region
    index_total = sum(len(img) for imgs in index_images for img in imgs)
    data_region = align_up(index_region + index_total + 4096, config.w_in)
    data_cursor = data_region

    total_dma = 0
    for tables, images in zip(inputs, index_images):
        table_entries = []
        table_layouts = []
        for reader, index_image in zip(tables, images):
            data_cursor = align_up(data_cursor, config.w_in)
            dram.write(data_cursor, reader.image)
            dram.write(index_cursor, index_image)
            total_dma += len(reader.image) + len(index_image)
            layout = SSTableLayout(
                index_offset=index_cursor,
                index_size=len(index_image),
                data_offset=data_cursor,
                data_size=len(reader.image),
            )
            table_layouts.append(layout)
            table_entries.append(MetaInEntry(
                index_offset=index_cursor,
                index_size=len(index_image),
                data_offset=data_cursor,
                data_size=len(reader.image),
            ))
            index_cursor += len(index_image)
            data_cursor += len(reader.image)
        meta_entries.append(table_entries)
        layouts.append(table_layouts)

    meta_in = encode_meta_in(meta_entries)
    meta_in_offset = align_up(data_cursor, config.w_in)
    dram.write(meta_in_offset, meta_in)
    total_dma += len(meta_in)

    return InputMemoryImage(
        meta_in=meta_in,
        layouts=layouts,
        total_bytes=total_dma,
        meta_in_offset=meta_in_offset,
    )


def write_outputs(dram: Dram, config: FpgaConfig, outputs,
                  base_offset: int) -> tuple[bytes, int]:
    """Store generated tables and MetaOut in the Output Memory region.

    Returns ``(meta_out_image, total_output_bytes)``.
    """
    cursor = align_up(base_offset, config.w_out)
    entries = []
    total = 0
    for output in outputs:
        cursor = align_up(cursor, config.w_out)
        dram.write(cursor, output.data)
        entries.append(MetaOutEntry(
            data_size=len(output.data),
            smallest_key=output.smallest,
            largest_key=output.largest,
        ))
        cursor += len(output.data)
        total += len(output.data)
    meta_out = encode_meta_out(entries)
    dram.write(cursor, meta_out)
    return meta_out, total + len(meta_out)
