"""Device DRAM model: bounds, sparse regions, traffic accounting."""

import pytest

from repro.errors import FpgaProtocolError
from repro.fpga.dram import Dram


class TestAccess:
    def test_write_read_roundtrip(self):
        dram = Dram(size=1024)
        dram.write(100, b"hello")
        assert dram.read(100, 5) == b"hello"

    def test_unwritten_reads_zero(self):
        dram = Dram(size=1024)
        assert dram.read(0, 4) == b"\x00\x00\x00\x00"

    def test_sparse_overlapping_read(self):
        dram = Dram(size=1 << 20)
        dram.write(10, b"aaaa")
        dram.write(20, b"bbbb")
        data = dram.read(8, 20)
        assert data[2:6] == b"aaaa"
        assert data[12:16] == b"bbbb"

    def test_materialized_mode(self):
        dram = Dram(size=256, materialize=True)
        dram.write(0, b"xy")
        dram.write(1, b"z")  # overwrites the 'y'
        assert dram.read(0, 2) == b"xz"

    def test_out_of_bounds_write(self):
        dram = Dram(size=16)
        with pytest.raises(FpgaProtocolError):
            dram.write(10, b"toolongdata")

    def test_out_of_bounds_read(self):
        dram = Dram(size=16)
        with pytest.raises(FpgaProtocolError):
            dram.read(10, 10)

    def test_negative_offset(self):
        dram = Dram(size=16)
        with pytest.raises(FpgaProtocolError):
            dram.read(-1, 2)


class TestStats:
    def test_traffic_counted(self):
        dram = Dram(size=1024)
        dram.write(0, b"12345678")
        dram.read(0, 4)
        dram.read(4, 4)
        assert dram.stats.write_requests == 1
        assert dram.stats.write_bytes == 8
        assert dram.stats.read_requests == 2
        assert dram.stats.read_bytes == 8

    def test_reset(self):
        dram = Dram(size=64)
        dram.write(0, b"x")
        dram.reset_stats()
        assert dram.stats.write_requests == 0
