#!/usr/bin/env python3
"""Validate a Chrome trace-event file produced by ``fcae-bench
--chrome-trace`` (stdlib only, so CI can run it without the package).

Checks:

* the file is well-formed JSON with a ``traceEvents`` list;
* every event carries the required fields for its phase;
* within each track (``pid``/``tid``), complete-event (``"ph": "X"``)
  timestamps are monotonic and intervals do not overlap;
* counter (``"ph": "C"``) series timestamps are monotonic;
* every ``kernel_run`` event's duration matches its ``args.cycles``
  converted at ``args.clock_mhz`` within 1% — the trace's span agrees
  with the simulator's ``TimingReport.total_cycles``.

Exit status 0 when the trace passes, 1 with a report when it does not.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Slack for floating-point cycle → microsecond conversion.
EPSILON_US = 1e-6


def validate(trace: dict) -> list[str]:
    errors: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    if not events:
        return ["empty traceEvents"]

    track_names: dict[tuple, str] = {}
    last_end: dict[tuple, float] = {}
    counter_last_ts: dict[tuple, float] = {}
    kernel_runs = 0

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "C", "M"):
            errors.append(f"event {index}: unknown phase {phase!r}")
            continue
        if "pid" not in event or "name" not in event:
            errors.append(f"event {index}: missing pid/name")
            continue
        if phase == "M":
            if event["name"] == "thread_name":
                track_names[(event["pid"], event.get("tid"))] = \
                    event["args"]["name"]
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event {index}: missing numeric ts")
            continue

        if phase == "C":
            key = (event["pid"], event["name"])
            if ts + EPSILON_US < counter_last_ts.get(key, float("-inf")):
                errors.append(
                    f"counter {event['name']!r}: ts {ts} goes backwards")
            counter_last_ts[key] = max(counter_last_ts.get(key, ts), ts)
            continue

        # phase == "X"
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"event {index} ({event['name']!r}): bad dur")
            continue
        key = (event["pid"], event.get("tid"))
        track = track_names.get(key, str(key))
        if ts + EPSILON_US < last_end.get(key, float("-inf")):
            errors.append(
                f"track {track!r}: interval {event['name']!r} at ts={ts} "
                f"overlaps previous end {last_end[key]}")
        last_end[key] = max(last_end.get(key, ts + dur), ts + dur)

        if event["name"] == "kernel_run":
            kernel_runs += 1
            args = event.get("args", {})
            cycles = args.get("cycles")
            clock_mhz = args.get("clock_mhz")
            if cycles is None or not clock_mhz:
                errors.append("kernel_run without cycles/clock_mhz args")
            else:
                expected_us = cycles / clock_mhz
                if expected_us > 0 and \
                        abs(dur - expected_us) > 0.01 * expected_us:
                    errors.append(
                        f"kernel_run span {dur:.3f}us deviates >1% from "
                        f"{cycles} cycles at {clock_mhz} MHz "
                        f"({expected_us:.3f}us)")

    if kernel_runs == 0:
        errors.append("no kernel_run events found")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    args = parser.parse_args(argv)

    try:
        with open(args.trace) as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot parse {args.trace}: {error}", file=sys.stderr)
        return 1

    errors = validate(trace)
    if errors:
        print(f"FAIL: {args.trace}: {len(errors)} problem(s)",
              file=sys.stderr)
        for error in errors[:50]:
            print(f"  - {error}", file=sys.stderr)
        return 1
    n_events = len(trace["traceEvents"])
    dropped = trace.get("otherData", {}).get("dropped_events", 0)
    print(f"OK: {args.trace}: {n_events} events, "
          f"{dropped} dropped, tracks monotonic, kernel spans consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
