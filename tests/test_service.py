"""Sharded KV service: router, wire protocol, live server, durability."""

import socket
import threading

import pytest

from repro.errors import InvalidArgumentError, NotFoundError
from repro.lsm import Options, WriteBatch
from repro.lsm.env import MemEnv
from repro.lsm.faultenv import CrashEnv
from repro.service import protocol
from repro.service.client import KVClient, ServiceBusyError, ServiceError
from repro.service.router import RangeRouter
from repro.service.server import KVServer, KVService, ShardGate


def mem_options(**overrides):
    base = dict(wal_sync="group", bloom_bits_per_key=0, compression="none")
    base.update(overrides)
    return Options(**base)


class TestRangeRouter:
    def test_explicit_splits(self):
        router = RangeRouter([b"g", b"p"])
        assert router.num_shards == 3
        assert router.shard_for(b"apple") == 0
        assert router.shard_for(b"g") == 1  # boundary belongs right
        assert router.shard_for(b"monkey") == 1
        assert router.shard_for(b"zebra") == 2

    def test_ranges_are_contiguous(self):
        router = RangeRouter([b"g", b"p"])
        assert router.shard_range(0) == (None, b"g")
        assert router.shard_range(1) == (b"g", b"p")
        assert router.shard_range(2) == (b"p", None)
        with pytest.raises(InvalidArgumentError):
            router.shard_range(3)

    def test_uniform_covers_keyspace(self):
        router = RangeRouter.uniform(4)
        assert router.num_shards == 4
        counts = [0] * 4
        for byte in range(256):
            counts[router.shard_for(bytes([byte]) + b"suffix")] += 1
        assert counts == [64, 64, 64, 64]

    def test_uniform_single_shard(self):
        router = RangeRouter.uniform(1)
        assert router.shard_for(b"") == 0
        assert router.shard_for(b"\xff\xff") == 0

    def test_unsorted_splits_rejected(self):
        with pytest.raises(InvalidArgumentError):
            RangeRouter([b"p", b"g"])
        with pytest.raises(InvalidArgumentError):
            RangeRouter([b"a", b"a"])
        with pytest.raises(InvalidArgumentError):
            RangeRouter([b""])

    def test_partition(self):
        router = RangeRouter([b"m"])
        grouped = router.partition([b"a", b"z", b"b", b"m"])
        assert grouped == {0: [b"a", b"b"], 1: [b"z", b"m"]}

    def test_describe(self):
        info = RangeRouter([b"m"]).describe()
        assert info == [
            {"shard": 0, "start": None, "end": b"m".hex()},
            {"shard": 1, "start": b"m".hex(), "end": None},
        ]


class TestProtocol:
    def test_request_roundtrip(self):
        payload = protocol.encode_request(protocol.OP_PUT, b"k", b"v")
        op, body = protocol.decode_request(payload)
        assert op == protocol.OP_PUT
        assert protocol.decode_slices(body, 2) == [b"k", b"v"]

    def test_response_roundtrip(self):
        status, body = protocol.decode_response(
            protocol.encode_response(protocol.OK, b"value"))
        assert (status, body) == (protocol.OK, b"value")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_request(bytes([200]))

    def test_trailing_bytes_rejected(self):
        payload = protocol.encode_request(protocol.OP_GET, b"k") + b"junk"
        op, body = protocol.decode_request(payload)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_slices(body, 1)

    def test_frames_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            protocol.write_frame(left, b"abc")
            protocol.write_frame(left, b"")
            assert protocol.read_frame(right) == b"abc"
            assert protocol.read_frame(right) == b""
            left.close()
            assert protocol.read_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x10partial")
            left.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame(right)
        finally:
            left.close()
            right.close()


class TestKVService:
    def test_put_get_delete_across_shards(self):
        with KVService("svc", num_shards=4, options=mem_options(),
                       env=MemEnv()) as service:
            keys = [bytes([b]) + b"-key" for b in (3, 80, 130, 250)]
            owners = {service.router.shard_for(k) for k in keys}
            assert owners == {0, 1, 2, 3}  # spans every shard
            for key in keys:
                service.put(key, key.upper())
            for key in keys:
                assert service.get(key) == key.upper()
            service.delete(keys[0])
            with pytest.raises(NotFoundError):
                service.get(keys[0])

    def test_batch_splits_by_shard(self):
        with KVService("svc", num_shards=2, options=mem_options(),
                       env=MemEnv()) as service:
            batch = WriteBatch()
            batch.put(b"\x01low", b"a")
            batch.put(b"\xf0high", b"b")
            batch.delete(b"\x02low2")
            assert service.apply_batch(batch) == 2
            assert service.get(b"\x01low") == b"a"
            assert service.get(b"\xf0high") == b"b"

    def test_dispatch_wire_level(self):
        with KVService("svc", num_shards=2, options=mem_options(),
                       env=MemEnv()) as service:
            response = service.dispatch(
                protocol.encode_request(protocol.OP_PUT, b"k", b"v"))
            assert protocol.decode_response(response) == (protocol.OK, b"")
            response = service.dispatch(
                protocol.encode_request(protocol.OP_GET, b"k"))
            assert protocol.decode_response(response) == (protocol.OK, b"v")
            response = service.dispatch(
                protocol.encode_request(protocol.OP_GET, b"ghost"))
            assert protocol.decode_response(response)[0] == \
                protocol.NOT_FOUND

    def test_stats_reports_shards(self):
        with KVService("svc", num_shards=3, options=mem_options(),
                       env=MemEnv()) as service:
            service.put(b"\x00a", b"1")
            stats = service.stats()
            assert stats["num_shards"] == 3
            assert stats["wal_sync"] == "group"
            assert len(stats["shards"]) == 3
            assert stats["shards"][0]["writes"] == 1

    def test_split_key_count_must_match(self):
        with pytest.raises(InvalidArgumentError):
            KVService("svc", num_shards=3, options=mem_options(),
                      env=MemEnv(), split_keys=[b"m"])


class TestShardGate:
    def test_stall_pressure_trips_busy(self):
        with KVService("svc", num_shards=1, options=mem_options(),
                       env=MemEnv()) as service:
            db = service.shards[0]
            gate = ShardGate(db, stall_threshold=0.01, window_seconds=0.0)
            assert gate.admit()  # no stalls yet
            db._m.stall_seconds.observe(5.0)  # heavy stalling
            assert not gate.admit()
            assert gate.rejections == 1
            # Pressure subsided: next window sees no new stall time.
            assert gate.admit()

    def test_busy_surfaces_on_the_wire(self):
        with KVService("svc", num_shards=1, options=mem_options(),
                       env=MemEnv(), stall_threshold=0.01) as service:
            gate = service.gates[0]
            gate.window_seconds = 0.0
            service.shards[0]._m.stall_seconds.observe(5.0)
            response = service.dispatch(
                protocol.encode_request(protocol.OP_PUT, b"k", b"v"))
            assert protocol.decode_response(response)[0] == protocol.BUSY
            # Reads are never gated.
            response = service.dispatch(
                protocol.encode_request(protocol.OP_GET, b"k"))
            assert protocol.decode_response(response)[0] == \
                protocol.NOT_FOUND


@pytest.fixture
def live_server(tmp_path):
    service = KVService(str(tmp_path / "kv"), num_shards=2,
                        options=mem_options(), env=MemEnv())
    server = KVServer(service, port=0, max_workers=8)
    server.start()
    yield server
    server.stop()


class TestLiveServer:
    def test_roundtrip(self, live_server):
        with KVClient(live_server.host, live_server.port) as kv:
            kv.ping()
            kv.put(b"k1", b"v1")
            assert kv.get(b"k1") == b"v1"
            kv.delete(b"k1")
            with pytest.raises(NotFoundError):
                kv.get(b"k1")

    def test_batch_and_stats(self, live_server):
        with KVClient(live_server.host, live_server.port) as kv:
            batch = WriteBatch()
            batch.put(b"\x01a", b"1")
            batch.put(b"\xf0z", b"2")
            kv.write(batch)
            assert kv.get(b"\x01a") == b"1"
            stats = kv.stats()
            assert stats["num_shards"] == 2
            writes = sum(s["writes"] for s in stats["shards"])
            assert writes == 2

    def test_concurrent_clients_all_acked_writes_readable(self,
                                                          live_server):
        errors = []

        def worker(t):
            try:
                with KVClient(live_server.host, live_server.port) as kv:
                    for i in range(30):
                        kv.put(f"c{t}-{i:03d}".encode(), b"x" * 16)
            except Exception as error:  # noqa: BLE001 - collected
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        with KVClient(live_server.host, live_server.port) as kv:
            for t in range(6):
                for i in range(30):
                    assert kv.get(f"c{t}-{i:03d}".encode()) == b"x" * 16

    def test_malformed_frame_gets_error_then_close(self, live_server):
        sock = socket.create_connection(
            (live_server.host, live_server.port), timeout=5)
        try:
            protocol.write_frame(sock, bytes([99]))  # unknown opcode
            status, body = protocol.decode_response(
                protocol.read_frame(sock))
            assert status == protocol.ERROR
            assert protocol.read_frame(sock) is None  # server hung up
        finally:
            sock.close()

    def test_client_raises_typed_errors(self, live_server):
        with KVClient(live_server.host, live_server.port) as kv:
            service = live_server.service
            for gate in service.gates:
                gate.window_seconds = 0.0
                gate.stall_threshold = 0.01
                service.shards[0]._m.stall_seconds.observe(5.0)
                service.shards[1]._m.stall_seconds.observe(5.0)
            with pytest.raises((ServiceBusyError, ServiceError)):
                kv.put(b"k", b"v")


class TestServiceDurability:
    def test_power_loss_keeps_every_acked_write(self):
        env = CrashEnv()
        options = mem_options()
        service = KVService("kv", num_shards=2, options=options, env=env)
        acked = []
        for i in range(60):
            key = f"s{i:04d}".encode()
            service.put(key, key * 2)
            acked.append(key)
        env.crash("power")
        service2 = KVService("kv", num_shards=2, options=options, env=env)
        for key in acked:
            assert service2.get(key) == key * 2
        service2.close()
