#!/usr/bin/env python3
"""Quickstart: the LSM key-value store with FPGA-offloaded compaction.

Opens an in-memory database, writes/reads/deletes keys, then swaps the
compaction executor for the FPGA engine and shows that the storage format
is untouched — the same files, read by the same reader, just compacted by
a different engine.

Run:  python examples/quickstart.py
"""

from repro.errors import NotFoundError
from repro.fpga.config import CONFIG_9_INPUT
from repro.host import CompactionScheduler, FcaeDevice
from repro.lsm import LsmDB, Options, WriteBatch
from repro.lsm.env import MemEnv


def main() -> None:
    options = Options(
        write_buffer_size=64 * 1024,   # small, so this demo compacts
        sstable_size=32 * 1024,
        max_level0_size=128 * 1024,
        value_length=64,
    )

    # ------------------------------------------------------------------
    # Plain software database.
    # ------------------------------------------------------------------
    db = LsmDB("quickstart-db", options, env=MemEnv())

    db.put(b"language", b"python")
    db.put(b"paper", b"FPGA-based compaction engine (ICDE 2020)")
    print("get(paper)   =", db.get(b"paper").decode())

    batch = WriteBatch()
    batch.put(b"engine", b"FCAE")
    batch.delete(b"language")
    db.write(batch)

    try:
        db.get(b"language")
    except NotFoundError:
        print("get(language) -> NotFoundError (deleted atomically)")

    # Bulk-load enough data to force flushes and merge compactions.
    for i in range(5000):
        db.put(f"user{i:012d}".encode(), f"profile-{i}".encode().ljust(64))
    db.compact_range()
    print("level file counts after compaction:", db.level_file_counts())
    print("scan first 3:", [k.decode() for k, _ in list(db.scan())[:3]])
    db.close()

    # ------------------------------------------------------------------
    # Same database semantics, FPGA-backed compaction.
    # ------------------------------------------------------------------
    device = FcaeDevice(CONFIG_9_INPUT, options)
    scheduler = CompactionScheduler(device, options)
    fpga_db = LsmDB("quickstart-fpga", options, env=MemEnv(),
                    compaction_executor=scheduler)
    for i in range(5000):
        fpga_db.put(f"user{i:012d}".encode(),
                    f"profile-{i}".encode().ljust(64))
    fpga_db.compact_range()

    stats = scheduler.stats
    print(f"\nFPGA path: {stats.fpga_tasks} compactions offloaded, "
          f"{stats.software_tasks} fell back to software")
    print(f"kernel time {stats.fpga_kernel_seconds * 1e3:.2f} ms, "
          f"PCIe {stats.fpga_pcie_seconds * 1e3:.2f} ms "
          f"({stats.pcie_fraction_of_offload:.1%} of offload time)")
    print("get(user…42) =", fpga_db.get(b"user000000000042").decode().strip())
    fpga_db.close()


if __name__ == "__main__":
    main()
