#!/usr/bin/env python3
"""Gate the accelerator-backend acceptance criteria from a
``fcae-bench backends --bench-json`` run.

Stdlib-only so CI can call it without installing the package::

    python tools/check_backends.py --run BENCH_backends.json \\
        [--min-speedup 2.0] [--min-route-accuracy 0.8]

Two checks, both *within-run* relative measurements (robust to the
runner's absolute speed):

* **speedup floor** — at the largest value-size sweep point, the batch
  backend's measured p50 must beat the streaming CPU merge by at least
  ``--min-speedup`` (default 2.0x).  Skipped (with a notice) when the
  run's notes say the batch path ran the pure-python fallback — the
  floor is a claim about the vectorized path, and the numpy-less CI leg
  must not fail it vacuously.
* **routing accuracy** — across all ``route_v<N>`` rows, the cost
  model's pick must equal the measured-fastest backend on at least
  ``--min-route-accuracy`` of the sweep points (default 0.8).  A pick
  whose measured p50 is within ``--tie-tol`` (default 15%) of the
  fastest backend's counts as a hit: routing between near-tied backends
  is a coin flip that costs nothing, and only picks that are
  *meaningfully* slower should fail the gate.

Exit status: 0 when both hold, 1 on violation, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

SUPPORTED_SCHEMA = 1


def load_rows(path: str) -> tuple[list[list], list[str]]:
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != SUPPORTED_SCHEMA:
        raise ValueError(f"{path}: unsupported schema {doc.get('schema')!r}")
    exp = doc.get("experiments", {}).get("backends")
    if exp is None:
        raise ValueError(f"{path}: no 'backends' experiment")
    columns = exp.get("columns", [])
    for needed in ("bench", "p50_us", "note"):
        if needed not in columns:
            raise ValueError(f"{path}: missing column {needed!r}")
    return exp["rows"], columns


def parse_note(note: str) -> dict[str, str]:
    """``"picked=batch;fastest=cpu"`` → ``{"picked": ..., "fastest": ...}``"""
    fields = {}
    for part in note.split(";"):
        if "=" in part:
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
    return fields


def check(rows: list[list], columns: list[str], min_speedup: float,
          min_route_accuracy: float, vectorized: bool,
          tie_tol: float = 0.15) -> list[str]:
    name_col = columns.index("bench")
    p50_col = columns.index("p50_us")
    note_col = columns.index("note")
    p50 = {row[name_col]: row[p50_col] for row in rows}

    failures: list[str] = []

    # -- speedup floor at the largest value size ----------------------
    value_sizes = sorted({int(name.rsplit("_v", 1)[1])
                          for name in p50 if "_v" in name})
    if not value_sizes:
        return ["no sweep rows found"]
    largest = value_sizes[-1]
    cpu = p50.get(f"cpu_v{largest}")
    batch = p50.get(f"batch_v{largest}")
    if cpu is None or batch is None:
        failures.append(f"v{largest}: missing cpu/batch rows")
    elif not vectorized:
        print(f"NOTICE: batch ran the pure-python fallback — "
              f"skipping the {min_speedup}x floor (measured "
              f"{cpu / batch:.2f}x at v{largest})")
    else:
        speedup = cpu / batch
        line = (f"v{largest}: batch {batch:.0f}us vs cpu {cpu:.0f}us "
                f"= {speedup:.2f}x (floor {min_speedup}x)")
        if speedup < min_speedup:
            failures.append(line)
        else:
            print(f"OK speedup: {line}")

    # -- routing accuracy ---------------------------------------------
    route_rows = [row for row in rows
                  if str(row[name_col]).startswith("route_v")]
    if not route_rows:
        failures.append("no route_v* rows found")
    else:
        hits = []
        for row in route_rows:
            fields = parse_note(str(row[note_col]))
            picked, fastest = fields.get("picked"), fields.get("fastest")
            if picked is None or fastest is None:
                failures.append(f"{row[name_col]}: malformed note "
                                f"{row[note_col]!r}")
                continue
            vsize = str(row[name_col]).rsplit("_v", 1)[1]
            picked_p50 = p50.get(f"{picked}_v{vsize}")
            fastest_p50 = p50.get(f"{fastest}_v{vsize}")
            hit = picked == fastest or (
                picked_p50 is not None and fastest_p50 is not None
                and picked_p50 <= fastest_p50 * (1 + tie_tol))
            hits.append(hit)
            if picked != fastest:
                print(f"{'NEAR-TIE' if hit else 'MISROUTE'} "
                      f"{row[name_col]}: picked={picked} "
                      f"({picked_p50}us) fastest={fastest} "
                      f"({fastest_p50}us)")
        if hits:
            accuracy = sum(hits) / len(hits)
            line = (f"routing picked the measured-fastest backend on "
                    f"{sum(hits)}/{len(hits)} points "
                    f"({accuracy:.0%}, floor {min_route_accuracy:.0%})")
            if accuracy < min_route_accuracy:
                failures.append(line)
            else:
                print(f"OK routing: {line}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run", required=True,
                        help="BENCH_backends.json from fcae-bench")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="batch-vs-cpu p50 floor at the largest "
                             "value size (default 2.0)")
    parser.add_argument("--min-route-accuracy", type=float, default=0.8,
                        help="minimum picked==fastest hit rate over the "
                             "route rows (default 0.8)")
    parser.add_argument("--tie-tol", type=float, default=0.15,
                        help="relative p50 band within which a pick "
                             "counts as tied with the fastest "
                             "(default 0.15)")
    args = parser.parse_args(argv)

    try:
        with open(args.run) as handle:
            doc = json.load(handle)
        rows, columns = load_rows(args.run)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2

    title = doc["experiments"]["backends"].get("title", "")
    # The bench stamps the numpy state into its notes; fall back to the
    # title when notes are absent from the JSON schema.
    notes = " ".join(doc["experiments"]["backends"].get("notes", []))
    vectorized = "fallback" not in (notes + title)

    failures = check(rows, columns, args.min_speedup,
                     args.min_route_accuracy, vectorized, args.tie_tol)
    if failures:
        print(f"BACKEND GATE FAILED ({len(failures)} violation(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"OK: {args.run} meets the backend acceptance criteria")
    return 0


if __name__ == "__main__":
    sys.exit(main())
