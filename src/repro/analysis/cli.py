"""Command line for the static passes: ``python -m repro.analysis``.

Exit code 0 when no unwaived error-severity findings remain; warnings
(LD004 chains) never affect the exit code.  ``--strict`` additionally
requires every waiver to carry a reason and runs the cross-file schema
drift check (CT004).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import List

from repro.analysis import contracts as contracts_mod
from repro.analysis import findings as findings_mod
from repro.analysis import lockdiscipline
from repro.analysis.findings import Finding

__all__ = ["main", "analyze_paths", "analyze_file"]


def _iter_py_files(paths) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = [d for d in dirs
                       if d not in ("__pycache__", ".git")]
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return files


def analyze_file(path: str, metric_names, event_types) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            rule="XX000", slug="syntax-error", path=path,
            line=error.lineno or 0, col=(error.offset or 0),
            message=f"cannot parse: {error.msg}")]
    comments = findings_mod.extract_comments(source)
    found: List[Finding] = []
    found.extend(lockdiscipline.check_lock_discipline(
        path, tree, comments))
    found.extend(contracts_mod.check_contracts(
        path, tree, metric_names, event_types))
    waivers = findings_mod.parse_waivers(comments)
    return findings_mod.apply_waivers(found, waivers)


def analyze_paths(paths, strict: bool = False) -> List[Finding]:
    metric_names = contracts_mod.metric_family_names()
    event_types = contracts_mod.journal_event_types()
    findings: List[Finding] = []
    for path in _iter_py_files(paths):
        findings.extend(analyze_file(path, metric_names, event_types))
    if strict:
        findings.extend(contracts_mod.check_schema_drift())
        for finding in findings:
            if finding.waived and not finding.waive_reason:
                finding.waived = False
                finding.message += " (strict: waiver lacks a reason)"
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Concurrency-contract analyzer: lock-discipline "
                    "lint (LD001-LD004) and observability contract "
                    "lints (CT001-CT004).")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("--strict", action="store_true",
                        help="waivers require reasons; run cross-file "
                             "schema drift check")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="findings output format")
    parser.add_argument("--no-warnings", action="store_true",
                        help="hide warning-severity findings (LD004)")
    args = parser.parse_args(argv)

    findings = analyze_paths(args.paths, strict=args.strict)
    if args.no_warnings:
        findings = [f for f in findings
                    if f.severity != findings_mod.SEVERITY_WARNING]

    if args.format == "json":
        print(findings_mod.to_json(findings))
    elif findings:
        print(findings_mod.render_text(findings))

    errors = [f for f in findings
              if f.severity == findings_mod.SEVERITY_ERROR
              and not f.waived]
    warnings = [f for f in findings
                if f.severity == findings_mod.SEVERITY_WARNING]
    waived = [f for f in findings if f.waived]
    if args.format == "text":
        print(f"analysis: {len(errors)} error(s), "
              f"{len(warnings)} warning(s), {len(waived)} waived")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
