"""Repo-wide contract lints: observability names and exception hygiene.

CT001 ``unknown-metric-name``
    A string-literal metric name passed to the registry API
    (``counter``/``gauge``/``histogram``/``callback_gauge``/
    ``describe``/``get_value``/``sum_family``, the ``_counter``/
    ``_gauge``/``_histogram`` helpers, or ``publish_window``) that does
    not appear in :data:`repro.obs.names.FAMILIES`.  A typo here is a
    silent zero on every dashboard.

CT002 ``unknown-event-type``
    A string literal passed to ``.emit(...)`` that the journal schema
    (exported by ``tools/validate_events.py``) does not know.  The
    journal raises at runtime — this catches it at lint time, including
    on paths no test exercises.

CT003 ``swallowed-base-exception``
    A bare ``except:`` or ``except BaseException:`` handler that
    neither re-raises nor uses the bound exception.  On a worker
    thread this silently eats ``KeyboardInterrupt``/``SystemExit`` and
    the store keeps running half-dead.

CT004 ``event-schema-drift`` (checked once per run, not per file)
    ``repro.obs.events.EVENT_TYPES`` and the validator's schema table
    disagree — the single-source-of-truth invariant is broken.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional

from repro.analysis.findings import Finding

__all__ = [
    "check_contracts",
    "check_schema_drift",
    "metric_family_names",
    "journal_event_types",
]

#: registry-method call -> index of the positional metric-name argument.
#: The index-0 entries are the ``MetricsRegistry`` API and only apply
#: when the receiver looks like a registry (``registry.counter(...)``,
#: ``self.metrics.gauge(...)``) — ``timeline.counter(...)`` is the
#: Chrome-trace sink and takes a process name, not a metric family.
_METRIC_CALLS: Dict[str, int] = {
    "counter": 0,
    "gauge": 0,
    "histogram": 0,
    "callback_gauge": 0,
    "describe": 0,
    "get_value": 0,
    "sum_family": 0,
    "_counter": 1,
    "_gauge": 1,
    "_histogram": 1,
    "publish_window": 1,
}

#: names whose presence in the receiver marks it as a metrics registry
_REGISTRY_RECEIVERS = ("registry", "metrics")


def metric_family_names() -> FrozenSet[str]:
    from repro.obs.names import FAMILIES

    return frozenset(name for name, _kind, _help, _buckets in FAMILIES)


def journal_event_types() -> FrozenSet[str]:
    """Event types from the validator's exported schema, falling back
    to the runtime journal's frozen set."""
    import importlib.util
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    for base in (os.getcwd(), os.path.join(here, "..", "..", "..")):
        candidate = os.path.abspath(
            os.path.join(base, "tools", "validate_events.py"))
        if not os.path.exists(candidate):
            continue
        spec = importlib.util.spec_from_file_location(
            "repro_validate_events", candidate)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        schema = getattr(module, "event_schema", None)
        if schema is not None:
            return frozenset(schema().keys())
    from repro.obs.events import EVENT_TYPES

    return frozenset(EVENT_TYPES)


def _literal_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _registry_receiver(func: ast.expr) -> bool:
    """True when the call's receiver plausibly is a MetricsRegistry."""
    if not isinstance(func, ast.Attribute):
        return False
    recv = func.value
    terminal = None
    if isinstance(recv, ast.Attribute):
        terminal = recv.attr
    elif isinstance(recv, ast.Name):
        terminal = recv.id
    if terminal is None:
        return False
    terminal = terminal.lower()
    return any(marker in terminal for marker in _REGISTRY_RECEIVERS)


def check_contracts(path: str, tree: ast.Module,
                    metric_names: FrozenSet[str],
                    event_types: FrozenSet[str]) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in _METRIC_CALLS and (
                    _METRIC_CALLS[name] == 1
                    or _registry_receiver(node.func)):
                index = _METRIC_CALLS[name]
                if index < len(node.args):
                    literal = _literal_str(node.args[index])
                    if (literal is not None
                            and literal not in metric_names):
                        findings.append(Finding(
                            rule="CT001", slug="unknown-metric-name",
                            path=path, line=node.lineno,
                            col=node.col_offset + 1,
                            message=f"metric name {literal!r} is not "
                                    f"declared in repro.obs.names."
                                    f"FAMILIES"))
            if (name == "emit" and node.args):
                literal = _literal_str(node.args[0])
                if literal is not None and literal not in event_types:
                    findings.append(Finding(
                        rule="CT002", slug="unknown-event-type",
                        path=path, line=node.lineno,
                        col=node.col_offset + 1,
                        message=f"journal event type {literal!r} is "
                                f"unknown to the validator schema"))
        elif isinstance(node, ast.ExceptHandler):
            finding = _check_handler(path, node)
            if finding is not None:
                findings.append(finding)
    return findings


def _names_base_exception(node: Optional[ast.expr]) -> bool:
    if node is None:
        return True  # bare except:
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_names_base_exception(elt) for elt in node.elts)
    return False


def _check_handler(path: str,
                   handler: ast.ExceptHandler) -> Optional[Finding]:
    if not _names_base_exception(handler.type):
        return None
    # A handler is fine if it re-raises (bare raise or raise-from) or
    # actually uses the bound exception object.
    for node in ast.walk(ast.Module(body=handler.body,
                                    type_ignores=[])):
        if isinstance(node, ast.Raise):
            return None
        if (handler.name is not None and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)):
            return None
    what = "bare except:" if handler.type is None else \
        "except BaseException"
    return Finding(
        rule="CT003", slug="swallowed-base-exception", path=path,
        line=handler.lineno, col=handler.col_offset + 1,
        message=f"{what} neither re-raises nor uses the exception — "
                f"on a worker thread this swallows KeyboardInterrupt/"
                f"SystemExit")


def check_schema_drift() -> List[Finding]:
    """CT004: runtime EVENT_TYPES vs validator schema equality."""
    try:
        from repro.obs.events import EVENT_TYPES
    except ImportError:
        return []
    validator = journal_event_types()
    runtime = frozenset(EVENT_TYPES)
    if validator == runtime:
        return []
    missing = sorted(runtime - validator)
    extra = sorted(validator - runtime)
    parts = []
    if missing:
        parts.append(f"runtime-only: {', '.join(missing)}")
    if extra:
        parts.append(f"validator-only: {', '.join(extra)}")
    return [Finding(
        rule="CT004", slug="event-schema-drift",
        path="tools/validate_events.py", line=1, col=1,
        message="journal schema drift between repro.obs.events."
                "EVENT_TYPES and tools/validate_events.py ("
                + "; ".join(parts) + ")")]
