"""Crash-durability matrix: every ``wal_sync`` mode against injected
process and power crashes, plus group-commit semantics.

The recovery contract under test (see DESIGN.md "Durability & group
commit"):

* ``always`` / ``group`` — zero acknowledged writes lost, either crash;
* ``flush`` / ``interval`` — zero acknowledged writes lost to a process
  crash; a power loss loses at most the un-fsynced tail (``interval``:
  the documented sync window);
* ``none`` — no promise at all (the seed's behavior, kept for speed);
* every mode — recovery never invents data: the surviving writes are a
  sequence-order prefix of the acknowledged ones, values intact.
"""

import threading

import pytest

from repro.errors import InvalidArgumentError, NotFoundError
from repro.lsm import LsmDB, Options, WriteBatch
from repro.lsm.faultenv import CrashEnv, SlowSyncEnv
from repro.lsm.options import WAL_SYNC_MODES


def make_options(mode, **overrides):
    base = dict(wal_sync=mode, bloom_bits_per_key=0, compression="none")
    base.update(overrides)
    return Options(**base)


def write_acked(db, count, width=4, start=0):
    """Write ``count`` keys one batch each; returns the acknowledged
    (key, value) pairs in commit order."""
    acked = []
    for i in range(start, start + count):
        key = f"k{i:08d}".encode()
        value = f"v{i:08d}".encode() * width
        db.put(key, value)
        acked.append((key, value))
    return acked


def surviving_prefix(db, acked):
    """Length of the acknowledged prefix still readable in ``db``;
    asserts the survivors form an exact prefix with intact values."""
    present = []
    for key, value in acked:
        try:
            got = db.get(key)
        except NotFoundError:
            break
        assert got == value
        present.append(key)
    # Nothing beyond the first missing key may have survived (prefix
    # property: WAL replay stops at the truncation point).
    for key, _ in acked[len(present):]:
        with pytest.raises(NotFoundError):
            db.get(key)
    return len(present)


class TestCrashMatrix:
    @pytest.mark.parametrize("mode", WAL_SYNC_MODES)
    @pytest.mark.parametrize("crash", ["process", "power"])
    def test_recovery_contract(self, mode, crash):
        env = CrashEnv()
        # A huge interval = the worst case for "interval" (no timer
        # fires during the run, so power loss may cost everything
        # unsynced); "flush"'s promise is unaffected.
        options = make_options(mode, wal_sync_interval_seconds=3600.0)
        db = LsmDB("cdb", options, env=env)
        acked = write_acked(db, 120)
        env.crash(crash)
        db2 = LsmDB("cdb", options, env=env)
        survived = surviving_prefix(db2, acked)
        if mode in ("always", "group"):
            assert survived == len(acked)
        elif mode in ("flush", "interval") and crash == "process":
            assert survived == len(acked)
        # none (and flush/interval at power loss): only the prefix
        # property, already asserted by surviving_prefix.
        db2.close()

    def test_none_mode_demonstrates_the_seed_hole(self):
        """The original bug: acknowledged writes sitting in Python's
        userspace buffer vanish on a mere process kill."""
        env = CrashEnv()
        options = make_options("none")
        db = LsmDB("cdb", options, env=env)
        acked = write_acked(db, 50)
        env.crash("process")
        db2 = LsmDB("cdb", options, env=env)
        assert surviving_prefix(db2, acked) == 0
        db2.close()

    def test_flush_mode_plugs_it(self):
        """Satellite: even the minimal mode flushes before the ack, so
        a process crash loses nothing acknowledged."""
        env = CrashEnv()
        options = make_options("flush")
        db = LsmDB("cdb", options, env=env)
        acked = write_acked(db, 50)
        env.crash("process")
        db2 = LsmDB("cdb", options, env=env)
        assert surviving_prefix(db2, acked) == len(acked)
        db2.close()

    def test_interval_zero_syncs_every_write(self):
        env = CrashEnv()
        options = make_options("interval", wal_sync_interval_seconds=0.0)
        db = LsmDB("cdb", options, env=env)
        acked = write_acked(db, 40)
        env.crash("power")
        db2 = LsmDB("cdb", options, env=env)
        assert surviving_prefix(db2, acked) == len(acked)
        db2.close()

    def test_interval_window_bounds_the_loss(self):
        """Everything acknowledged before the last fsync survives a
        power loss; only the post-sync window is at risk."""
        env = CrashEnv()
        options = make_options("interval", wal_sync_interval_seconds=3600.0)
        db = LsmDB("cdb", options, env=env)
        acked = write_acked(db, 30)
        with db._mutex:
            db._sync_wal(db._log_file)  # the interval timer firing
        synced_count = len(acked)
        acked += write_acked(db, 30, start=30)
        env.crash("power")
        db2 = LsmDB("cdb", options, env=env)
        assert surviving_prefix(db2, acked) >= synced_count
        db2.close()

    def test_crash_after_flush_keeps_tables(self):
        """Flushed SSTables + manifest survive a power loss (they are
        fsynced before install), so only WAL tail is ever at risk."""
        env = CrashEnv()
        options = make_options(
            "flush", write_buffer_size=4 * 1024, sstable_size=8 * 1024,
            block_size=512, max_level0_size=64 * 1024)
        db = LsmDB("cdb", options, env=env)
        acked = write_acked(db, 300)
        db.flush()
        env.crash("power")
        db2 = LsmDB("cdb", options, env=env)
        assert surviving_prefix(db2, acked) == len(acked)
        db2.close()

    def test_unknown_crash_kind_rejected(self):
        with pytest.raises(InvalidArgumentError):
            CrashEnv().crash("meteor")


class TestGroupCommit:
    def test_concurrent_acks_all_survive_power_loss(self):
        env = CrashEnv()
        options = make_options("group")
        db = LsmDB("gdb", options, env=env)
        acked_per_thread = [[] for _ in range(8)]

        def worker(t):
            for i in range(40):
                key = f"t{t}-{i:04d}".encode()
                db.put(key, key * 3)
                acked_per_thread[t].append(key)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        env.crash("power")
        db2 = LsmDB("gdb", options, env=env)
        for acked in acked_per_thread:
            for key in acked:
                assert db2.get(key) == key * 3
        db2.close()

    def test_groups_amortize_syncs(self):
        """With a slow fsync and concurrent writers, the leader splices
        multiple batches per sync: strictly fewer syncs than commits."""
        env = SlowSyncEnv(sync_latency=2e-3)
        options = make_options("group")
        db = LsmDB("gdb", options, env=env)

        def worker(t):
            for i in range(25):
                db.put(f"w{t}-{i:04d}".encode(), b"v" * 32)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_writes = 8 * 25
        hist = db._m.group_commit_batches
        assert hist.count < total_writes  # batching happened
        assert hist.sum == total_writes   # every batch accounted once
        assert int(db._m.wal_syncs.value) == hist.count
        db.close()

    def test_batch_sequences_are_contiguous_across_group(self):
        """A spliced group commits with contiguous sequences; reopening
        replays every member batch."""
        env = CrashEnv()
        options = make_options("group")
        db = LsmDB("gdb", options, env=env)
        batch = WriteBatch()
        batch.put(b"a", b"1")
        batch.put(b"b", b"2")
        batch.delete(b"a")
        db.write(batch)
        seq_after = db.versions.last_sequence
        assert seq_after == 3
        env.crash("power")
        db2 = LsmDB("gdb", options, env=env)
        assert db2.get(b"b") == b"2"
        with pytest.raises(NotFoundError):
            db2.get(b"a")
        db2.close()

    def test_always_mode_syncs_every_commit(self):
        env = SlowSyncEnv(sync_latency=0.0)
        options = make_options("always")
        db = LsmDB("adb", options, env=env)
        write_acked(db, 20)
        assert int(db._m.wal_syncs.value) == 20
        db.close()


class TestWalSeeding:
    def test_reopened_wal_segment_appends_cleanly(self):
        """A WAL segment reopened for append (via the seeded block
        offset) replays both generations of records."""
        env = CrashEnv()
        options = make_options("flush")
        db = LsmDB("wdb", options, env=env)
        acked = write_acked(db, 10)
        db.close()
        db2 = LsmDB("wdb", options, env=env)
        acked2 = write_acked(db2, 10, start=10)
        db2.close()
        db3 = LsmDB("wdb", options, env=env)
        assert surviving_prefix(db3, acked + acked2) == 20
        db3.close()
