#!/usr/bin/env python3
"""Offload one compaction to the FPGA engine and race it against the CPU.

Builds two overlapping sorted runs (an upper level and a lower level),
compacts them with (a) the CPU reference merge and (b) the behavioral
FPGA engine, verifies the outputs are byte-identical, and prints the
paper's headline metric — compaction speed = input bytes / kernel time —
for both.

Run:  python examples/offload_compaction.py
"""

import random
import time

from repro.fpga.config import CONFIG_2_INPUT
from repro.fpga.engine import CompactionEngine
from repro.lsm.compaction import _BufferFile, compact
from repro.lsm.internal import (
    InternalKeyComparator,
    TYPE_DELETION,
    TYPE_VALUE,
    encode_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder
from repro.sim.cpu import CpuCostModel
from repro.util.comparator import BytewiseComparator

KEY_LENGTH = 16
VALUE_LENGTH = 256
PAIRS_PER_RUN = 4000


def make_run(seed: int, seq_base: int):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(10 ** 9), PAIRS_PER_RUN))
    run = []
    for i, raw in enumerate(keys):
        user = f"{raw:0{KEY_LENGTH}d}".encode()
        if rng.random() < 0.05:
            run.append((encode_internal_key(user, seq_base + i,
                                            TYPE_DELETION), b""))
        else:
            value = (f"v{raw}-".encode() * 40)[:VALUE_LENGTH]
            run.append((encode_internal_key(user, seq_base + i, TYPE_VALUE),
                        value))
    return run


def build_image(run, options, icmp) -> bytes:
    dest = _BufferFile()
    builder = TableBuilder(options, dest, icmp)
    for key, value in run:
        builder.add(key, value)
    builder.finish()
    return bytes(dest.data)


def main() -> None:
    options = Options(compression="none", bloom_bits_per_key=0,
                      value_length=VALUE_LENGTH)
    icmp = InternalKeyComparator(BytewiseComparator())

    newer = make_run(seed=1, seq_base=1_000_000)
    older = make_run(seed=2, seq_base=1)
    images = [[build_image(newer, options, icmp)],
              [build_image(older, options, icmp)]]
    input_bytes = sum(len(img) for pair in images for img in pair)
    print(f"two inputs, {input_bytes / 1e6:.1f} MB total, "
          f"{2 * PAIRS_PER_RUN} pairs")

    # -- CPU reference ---------------------------------------------------
    wall_start = time.perf_counter()
    cpu_stats = compact([iter(newer), iter(older)], options, icmp,
                        drop_deletions=True)
    wall = time.perf_counter() - wall_start
    cpu_model = CpuCostModel()
    cpu_speed = cpu_model.compaction_speed_mbps(KEY_LENGTH, VALUE_LENGTH)
    print(f"\nCPU merge: {cpu_stats.output_pairs} survivors "
          f"({cpu_stats.dropped_shadowed} shadowed, "
          f"{cpu_stats.dropped_tombstones} tombstones dropped)")
    print(f"  modelled i7-8700K single-thread speed: {cpu_speed:.1f} MB/s "
          f"(python wall time {wall:.2f}s, not the metric)")

    # -- FPGA engine ------------------------------------------------------
    engine = CompactionEngine(CONFIG_2_INPUT, options)
    result = engine.run_on_images(images, drop_deletions=True)
    print(f"\nFCAE (N=2, V={CONFIG_2_INPUT.value_width}, "
          f"W_in={CONFIG_2_INPUT.w_in} @ {CONFIG_2_INPUT.clock_mhz:.0f} MHz)")
    print(f"  kernel: {result.timing.total_cycles:,.0f} cycles "
          f"= {result.kernel_seconds * 1e3:.2f} ms")
    print(f"  compaction speed: {result.compaction_speed_mbps:.1f} MB/s")
    print(f"  acceleration ratio vs CPU: "
          f"{result.compaction_speed_mbps / cpu_speed:.1f}x")

    # -- Equivalence ------------------------------------------------------
    assert len(result.outputs) == len(cpu_stats.outputs)
    for fpga_out, cpu_out in zip(result.outputs, cpu_stats.outputs):
        assert fpga_out.data == cpu_out.data
    print(f"\noutputs byte-identical across both engines "
          f"({len(result.outputs)} SSTables) — storage format unchanged")


if __name__ == "__main__":
    main()
