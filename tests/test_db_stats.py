"""DbStats observability counters."""

import pytest

from repro.errors import NotFoundError
from repro.lsm import LsmDB, Options
from repro.lsm.env import MemEnv


@pytest.fixture
def db(options):
    return LsmDB("statsdb", options, env=MemEnv())


class TestCounters:
    def test_writes_counted(self, db):
        for i in range(10):
            db.put(f"k{i}".encode(), b"value")
        assert db.stats.writes == 10
        assert db.stats.write_bytes == sum(
            len(f"k{i}") + 5 for i in range(10))

    def test_deletes_count_as_writes(self, db):
        db.delete(b"ghost")
        assert db.stats.writes == 1

    def test_reads_and_hits(self, db):
        db.put(b"k", b"v")
        db.get(b"k")
        with pytest.raises(NotFoundError):
            db.get(b"missing")
        assert db.stats.reads == 2
        assert db.stats.read_hits == 1

    def test_flush_counters(self, db):
        for i in range(100):
            db.put(f"k{i:06d}".encode(), b"x" * 50)
        db.flush()
        assert db.stats.flushes >= 1
        assert db.stats.flush_bytes > 0

    def test_compaction_counters(self, db):
        for i in range(3000):
            db.put(f"k{i:010d}".encode(), b"x" * 40)
        db.compact_range()
        assert db.stats.compactions >= 1
        assert db.stats.compaction_input_bytes > 0
        assert db.stats.compaction_output_bytes > 0

    def test_write_amplification(self, db):
        import random
        assert db.stats.write_amplification == 0.0
        rng = random.Random(5)
        for i in range(3000):
            # Incompressible values, so physical bytes track user bytes.
            db.put(f"k{i:010d}".encode(), rng.randbytes(40))
        db.compact_range()
        # Data was flushed once and rewritten at least once.
        assert db.stats.write_amplification > 1.0

    def test_stall_counter_tracks_l0_stop(self, options):
        from repro.lsm.options import L0_STOP_TRIGGER

        db = LsmDB("stalldb", options, env=MemEnv())
        db.auto_compact = False
        for batch in range(L0_STOP_TRIGGER):
            for i in range(200):
                db.put(f"k{batch:03d}{i:07d}".encode(), b"x" * 40)
            db.flush()
        assert db.versions.current.num_files(0) >= L0_STOP_TRIGGER
        # Fill the memtable past the buffer size, then let one write run
        # maintenance: full memtable + full L0 is the stop condition.
        for i in range(600):
            db.put(f"z{i:09d}".encode(), b"x" * 40)
        db.auto_compact = True
        db.put(b"trigger", b"x")
        assert db.stats.stalls >= 1
        assert db.stats.stalls == db.stall_events


class TestCacheCounters:
    def test_block_cache_hits_and_misses(self, db):
        for i in range(500):
            db.put(f"k{i:08d}".encode(), b"x" * 40)
        db.flush()
        db.get(b"k00000007")  # cold: miss
        db.get(b"k00000007")  # warm: hit
        assert db.stats.block_cache_misses >= 1
        assert db.stats.block_cache_hits >= 1
        assert db.stats.block_cache_hits == db.block_cache.hits
        assert db.stats.block_cache_misses == db.block_cache.misses

    def test_hit_ratio(self, db):
        assert db.stats.block_cache_hit_ratio == 0.0
        for i in range(500):
            db.put(f"k{i:08d}".encode(), b"x" * 40)
        db.flush()
        for _ in range(5):
            db.get(b"k00000007")
        ratio = db.stats.block_cache_hit_ratio
        hits, misses = db.stats.block_cache_hits, db.stats.block_cache_misses
        assert ratio == hits / (hits + misses)
        assert 0.0 < ratio < 1.0


class TestDictViews:
    def test_as_dict_covers_all_fields(self, db):
        db.put(b"k", b"v")
        db.get(b"k")
        data = db.stats.as_dict()
        assert set(data) == set(db.stats.FIELDS)
        assert data["writes"] == 1
        assert data["reads"] == 1
        assert all(isinstance(v, int) for v in data.values())

    def test_merge_sums_fieldwise(self, db):
        from repro.lsm.db import DbStats

        other = LsmDB("otherdb", Options(), env=MemEnv())
        db.put(b"a", b"1")
        other.put(b"b", b"22")
        other.put(b"c", b"333")
        merged = DbStats.merge(db.stats, other.stats)
        assert merged["writes"] == 3
        assert merged["write_bytes"] == (db.stats.write_bytes
                                         + other.stats.write_bytes)
