"""Compaction-thread workflow (paper Fig 6).

The scheduler is an :class:`LsmDB`-compatible compaction executor that
routes each merge compaction:

* to the **FPGA** when the compaction's input-stream count fits the
  engine (``fpga_input_count() <= N``) — for level >= 1 that count is at
  most 2 (the sorted level concatenates into one input); for level 0 it
  is the number of overlapping L0 files plus one;
* to **software** otherwise ("when S_0 > N - 1, the compaction task will
  be processed completely by the software").

It verifies every FPGA result against the storage contract (sorted,
disjoint output ranges) and publishes the statistics the experiments
report — task/byte routing, per-phase time, the PCIe share — into a
:class:`repro.obs.MetricsRegistry`; :class:`SchedulerStats` is a
read-only view over those metrics.  Each routed task also emits a
``compaction.route`` trace span with modeled per-phase children
(marshal → pcie_in → kernel → pcie_out, or software), so a JSONL trace
reconstructs exactly where offload time went.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro import obs
from repro.errors import FpgaDmaError, FpgaProtocolError, FpgaTimeoutError
from repro.host.device import FcaeDevice
from repro.lsm.compaction import OutputTable, compact, make_compaction_sources
from repro.lsm.internal import InternalKeyComparator
from repro.lsm.options import Options
from repro.lsm.version import CompactionSpec
from repro.obs import (
    merge_counts,
    resolve_events,
    resolve_registry,
    resolve_tracer,
)
from repro.obs.names import SchedulerMetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.window import WindowedHistogram, publish_window
from repro.sim.cpu import CpuCostModel


class SchedulerStats:
    """Routing and timing view over the scheduler's registry metrics.

    Field names are unchanged from the historical dataclass; values are
    re-read from the registry on each access.  ``as_dict`` /
    :meth:`merge` let exposition and multi-scheduler reports iterate
    fields instead of hand-copying them.
    """

    #: Integer routing fields and float phase-timing fields, in
    #: reporting order.
    INT_FIELDS = ("fpga_tasks", "software_tasks", "fpga_input_bytes",
                  "software_input_bytes", "fpga_faults", "fpga_retries",
                  "fpga_fallbacks")
    FLOAT_FIELDS = ("fpga_kernel_seconds", "fpga_pcie_seconds",
                    "fpga_marshal_seconds", "software_seconds")
    FIELDS = INT_FIELDS + FLOAT_FIELDS

    def __init__(self, metrics: SchedulerMetrics):
        self._metrics = metrics

    # -- raw fields ----------------------------------------------------

    @property
    def fpga_tasks(self) -> int:
        return int(self._metrics.tasks["fpga"].value)

    @property
    def software_tasks(self) -> int:
        return int(self._metrics.tasks["software"].value)

    @property
    def fpga_input_bytes(self) -> int:
        return int(self._metrics.input_bytes["fpga"].value)

    @property
    def software_input_bytes(self) -> int:
        return int(self._metrics.input_bytes["software"].value)

    @property
    def fpga_faults(self) -> int:
        return int(sum(c.value for c in self._metrics.faults.values()))

    @property
    def fpga_retries(self) -> int:
        return int(self._metrics.retries.value)

    @property
    def fpga_fallbacks(self) -> int:
        return int(self._metrics.fallbacks.value)

    @property
    def fpga_kernel_seconds(self) -> float:
        return self._metrics.phase_seconds["kernel"].value

    @property
    def fpga_pcie_seconds(self) -> float:
        return (self._metrics.phase_seconds["pcie_in"].value
                + self._metrics.phase_seconds["pcie_out"].value)

    @property
    def fpga_marshal_seconds(self) -> float:
        return self._metrics.phase_seconds["marshal"].value

    @property
    def software_seconds(self) -> float:
        return self._metrics.phase_seconds["software"].value

    # -- derived -------------------------------------------------------

    @property
    def total_offload_seconds(self) -> float:
        return (self.fpga_kernel_seconds + self.fpga_pcie_seconds
                + self.fpga_marshal_seconds)

    @property
    def pcie_fraction_of_offload(self) -> float:
        total = self.total_offload_seconds
        return self.fpga_pcie_seconds / total if total > 0 else 0.0

    # -- exposition ----------------------------------------------------

    def as_dict(self) -> dict[str, float]:
        """All fields as a plain dict, in :data:`FIELDS` order."""
        return {field: getattr(self, field)
                for field in SchedulerStats.FIELDS}

    @staticmethod
    def merge(*stats: "SchedulerStats | dict") -> dict[str, float]:
        """Field-wise sum across schedulers (multi-card aggregation)."""
        return merge_counts(
            s if isinstance(s, dict) else s.as_dict() for s in stats)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SchedulerStats({inner})"


class CompactionScheduler:
    """Pluggable executor for :class:`repro.lsm.db.LsmDB`.

    Pass an instance as ``LsmDB(compaction_executor=scheduler)``; it then
    receives every merge compaction the database picks.
    """

    #: Device faults the retry/fallback machinery absorbs.  Anything
    #: else (corruption, resource misconfiguration) still propagates.
    RECOVERABLE_FAULTS = (FpgaProtocolError, FpgaTimeoutError)

    def __init__(self, device: FcaeDevice, options: Options | None = None,
                 cpu_model: CpuCostModel | None = None,
                 verify_outputs: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None,
                 events=None,
                 max_retries: int = 1,
                 retry_backoff_seconds: float = 0.0,
                 fallback_to_software: bool = True,
                 task_window_seconds: float = 60.0,
                 tenant: str = "system"):
        self.device = device
        self.options = options or device.options
        self.comparator = InternalKeyComparator(self.options.comparator)
        self.cpu_model = cpu_model or device.cpu_model
        self.verify_outputs = verify_outputs
        self.max_retries = max(0, max_retries)
        self.retry_backoff_seconds = max(0.0, retry_backoff_seconds)
        self.fallback_to_software = fallback_to_software
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        self.events = resolve_events(events)
        self._m = SchedulerMetrics(self.metrics,
                                   inst=self.metrics.instance_label())
        self.stats = SchedulerStats(self._m)
        #: Route taken by the most recent task *on this thread* — the
        #: driver's unit workers run tasks concurrently, so a plain
        #: attribute would race (``LsmDB`` reads it for the journal's
        #: ``backend`` field right after the executor returns).
        self._local = threading.local()
        #: Compaction is house work, so its task window carries a tenant
        #: label too ("system" by default): dashboards list it next to
        #: the user tenants instead of in an unlabeled bucket.
        self.tenant = tenant
        self.task_window = WindowedHistogram(
            window_seconds=task_window_seconds)
        publish_window(
            self.metrics, "scheduler_task_window_seconds",
            "Sliding-window compaction task duration quantiles.",
            self.task_window, inst=self._m.labels["inst"],
            tenant=tenant)

    def last_route(self) -> Optional[str]:
        """Route of the last task completed on the calling thread:
        ``"fpga"``, ``"software"`` or ``"fallback"``."""
        return getattr(self._local, "route", None)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def should_offload(self, spec: CompactionSpec) -> bool:
        """Fig 6's branch: FPGA iff the input-stream count fits N."""
        return spec.fpga_input_count() <= self.device.config.num_inputs

    def __call__(self, spec: CompactionSpec, input_tables: list,
                 parent_tables: list,
                 drop_deletions: bool) -> list[OutputTable]:
        offload = self.should_offload(spec)
        route = "fpga" if offload else "software"
        self._m.tasks[route].inc()
        self._m.task_input_bytes.observe(spec.total_input_bytes)
        self._local.route = route
        start = time.perf_counter()
        try:
            with self.tracer.span(
                    "compaction.route", route=route, level=spec.level,
                    input_streams=spec.fpga_input_count()) as span:
                if offload:
                    return self._run_fpga_with_recovery(
                        spec, input_tables, parent_tables, drop_deletions,
                        span)
                return self._run_software(spec, input_tables, parent_tables,
                                          drop_deletions)
        finally:
            self.task_window.observe(time.perf_counter() - start)

    def _run_fpga_with_recovery(self, spec: CompactionSpec,
                                input_tables: list, parent_tables: list,
                                drop_deletions: bool,
                                span) -> list[OutputTable]:
        """Offload with bounded retry + backoff; degrade to the software
        merge when the device keeps failing (LUDA's CPU fallback)."""
        attempt = 0
        while True:
            try:
                return self._run_fpga(spec, input_tables, parent_tables,
                                      drop_deletions)
            except self.RECOVERABLE_FAULTS as error:
                kind = self._fault_kind(error)
                self._m.faults[kind].inc()
                self.events.emit("fault", kind=kind, level=spec.level,
                                 attempt=attempt + 1)
                span.set(fault=kind, attempts=attempt + 1)
                if attempt < self.max_retries:
                    attempt += 1
                    self._m.retries.inc()
                    self.events.emit("retry", kind=kind, level=spec.level,
                                     attempt=attempt)
                    if self.retry_backoff_seconds:
                        time.sleep(self.retry_backoff_seconds
                                   * (2 ** (attempt - 1)))
                    continue
                if not self.fallback_to_software:
                    raise
                self._m.fallbacks.inc()
                self.events.emit("fallback", kind=kind, level=spec.level)
                span.set(fallback=True)
                self._local.route = "fallback"
                return self._run_software(spec, input_tables,
                                          parent_tables, drop_deletions)

    @staticmethod
    def _fault_kind(error: Exception) -> str:
        if isinstance(error, FpgaTimeoutError):
            return "timeout"
        if isinstance(error, FpgaDmaError):
            return "dma"
        return "protocol"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _run_fpga(self, spec: CompactionSpec, input_tables: list,
                  parent_tables: list,
                  drop_deletions: bool) -> list[OutputTable]:
        if spec.level == 0:
            streams = [[t] for t in input_tables]
        else:
            streams = [input_tables] if input_tables else []
        if parent_tables:
            streams.append(parent_tables)
        result = self.device.compact(streams, drop_deletions)
        self._m.input_bytes["fpga"].inc(result.input_bytes)
        phases = (("marshal", result.host_marshal_seconds),
                  ("pcie_in", result.pcie_in_seconds),
                  ("kernel", result.kernel_seconds),
                  ("pcie_out", result.pcie_out_seconds))
        for phase, seconds in phases:
            self._m.phase_seconds[phase].inc(seconds)
            self.tracer.phase(f"phase:{phase}", seconds)
        if self.verify_outputs:
            self._verify(result.outputs)
        return result.outputs

    def _run_software(self, spec: CompactionSpec, input_tables: list,
                      parent_tables: list,
                      drop_deletions: bool) -> list[OutputTable]:
        if self.options.max_subcompactions > 1:
            from repro.lsm.subcompaction import subcompact

            stats = subcompact(spec.level, input_tables, parent_tables,
                               self.options, self.comparator,
                               drop_deletions)
        else:
            sources = make_compaction_sources(spec.level, input_tables,
                                              parent_tables)
            stats = compact(sources, self.options, self.comparator,
                            drop_deletions)
        self._m.input_bytes["software"].inc(spec.total_input_bytes)
        seconds = self.cpu_model.compaction_seconds(
            spec.total_input_bytes,
            self.options.key_length,
            self.options.value_length,
            num_inputs=max(2, spec.fpga_input_count()),
        )
        self._m.phase_seconds["software"].inc(seconds)
        self.tracer.phase("phase:software", seconds)
        timeline = obs.current_timeline()
        if timeline is not None:
            # Software merges join the unified trace on the host track.
            t0 = timeline.cursor_us
            timeline.interval(
                "host", "scheduler", "software_merge", t0,
                t0 + seconds * 1e6,
                {"bytes": spec.total_input_bytes, "level": spec.level})
            timeline.advance_to(t0 + seconds * 1e6)
        return stats.outputs

    # ------------------------------------------------------------------
    # Contract checks
    # ------------------------------------------------------------------

    def _verify(self, outputs: list[OutputTable]) -> None:
        """The FPGA result must honor the storage format's invariants:
        per-table sorted ranges and cross-table disjointness."""
        for prev, cur in zip(outputs, outputs[1:]):
            if self.comparator.compare(prev.largest, cur.smallest) >= 0:
                raise FpgaProtocolError(
                    "FPGA produced overlapping output tables")
        for output in outputs:
            if self.comparator.compare(output.smallest, output.largest) > 0:
                raise FpgaProtocolError(
                    "FPGA produced an inverted table key range")
