"""Fig 16 (YCSB) and the §V optimization-ladder ablation."""

from repro.bench import ablation, fig16


def test_bench_fig16(benchmark, attach_rows):
    result = benchmark.pedantic(fig16.run, kwargs={"scale": 0.1},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    speedup = {row[0]: row[3] for row in result.rows}
    assert abs(speedup["c"] - 1.0) < 0.02
    # Write-dominated workloads gain most (A's interleaved writes can tie
    # with the pure Load within noise).
    assert speedup["load"] >= 0.95 * max(speedup.values())
    assert speedup["load"] > speedup["b"] > 0.99


def test_bench_ablation(benchmark, attach_rows):
    result = benchmark.pedantic(ablation.run, kwargs={"scale": 0.2},
                                rounds=1, iterations=1)
    attach_rows(benchmark, result)
    by_variant = {row[0]: row[1:] for row in result.rows}
    # Each optimization must pay for itself at long values.
    long_values = [by_variant[v][-1] for v in
                   ("basic", "split_blocks", "kv_separation", "full")]
    assert long_values == sorted(long_values)
