"""Key-popularity distributions used by YCSB.

* :class:`UniformGenerator` — uniform over ``[0, item_count)``.
* :class:`ZipfianGenerator` — the Gray et al. rejection-free zipfian
  sampler YCSB uses (``ScrambledZipfianGenerator``'s core), constant
  ``theta = 0.99``.  Item ranks are scrambled by an FNV hash so popular
  items spread across the keyspace rather than clustering at key 0.
* :class:`LatestGenerator` — YCSB's "latest" distribution (workload D):
  zipfian over recency, so the most recently inserted records are the
  hottest.
"""

from __future__ import annotations

import random

from repro.errors import InvalidArgumentError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = (1 << 64) - 1


def fnv_hash64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's
    ``Utils.FNVhash64``)."""
    h = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * _FNV_PRIME) & _U64
    return h


class UniformGenerator:
    """Uniform item chooser."""

    def __init__(self, item_count: int, seed: int = 0):
        if item_count <= 0:
            raise InvalidArgumentError("item_count must be positive")
        self.item_count = item_count
        self._random = random.Random(seed)

    def next(self) -> int:
        return self._random.randrange(self.item_count)


class ZipfianGenerator:
    """Gray et al. zipfian sampler over ``[0, item_count)``.

    ``scrambled=True`` applies YCSB's FNV scrambling so rank-0 popularity
    is not tied to insertion order.
    """

    def __init__(self, item_count: int, theta: float = 0.99,
                 scrambled: bool = True, seed: int = 0):
        if item_count <= 0:
            raise InvalidArgumentError("item_count must be positive")
        if not 0 < theta < 1:
            raise InvalidArgumentError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self.scrambled = scrambled
        self._random = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        denominator = 1 - self._zeta2 / self._zetan
        # item_count == 2 degenerates to 0/0; the limit is 1.
        self._eta = ((1 - (2.0 / item_count) ** (1 - theta)) / denominator
                     if abs(denominator) > 1e-12 else 1.0)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin style approximation above a
        # cutoff keeps construction O(1)-ish for huge item counts.
        if n <= 10_000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10_001))
        # integral of x^-theta from 10000 to n
        tail = ((n ** (1 - theta)) - (10_000 ** (1 - theta))) / (1 - theta)
        return head + tail

    def next_rank(self) -> int:
        """Sample a popularity rank (0 = most popular)."""
        u = self._random.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count
                   * (self._eta * u - self._eta + 1) ** self._alpha)

    def next(self) -> int:
        rank = min(self.next_rank(), self.item_count - 1)
        if not self.scrambled:
            return rank
        return fnv_hash64(rank) % self.item_count


class LatestGenerator:
    """YCSB's latest distribution: hottest = most recently inserted.

    ``insert_count`` grows as the workload inserts; sampling draws a
    zipfian *age* and subtracts it from the newest item.
    """

    def __init__(self, insert_count: int, theta: float = 0.99, seed: int = 0):
        if insert_count <= 0:
            raise InvalidArgumentError("insert_count must be positive")
        self.insert_count = insert_count
        self._zipf = ZipfianGenerator(insert_count, theta=theta,
                                      scrambled=False, seed=seed)

    def record_insert(self) -> int:
        """Register one new insert; returns its item id."""
        item = self.insert_count
        self.insert_count += 1
        return item

    def next(self) -> int:
        age = min(self._zipf.next_rank(), self.insert_count - 1)
        return self.insert_count - 1 - age


def estimate_hot_fraction(theta: float, item_count: int,
                          hot_items_fraction: float) -> float:
    """Fraction of accesses landing on the hottest
    ``hot_items_fraction`` of items — used to size cache hit rates in the
    system simulator.  Computed from the zipfian CDF."""
    if item_count <= 1:
        return 1.0
    hot = max(1, int(item_count * hot_items_fraction))
    # zeta(hot)/zeta(n) under the same approximation as the generator.
    return (ZipfianGenerator._zeta(hot, theta)
            / ZipfianGenerator._zeta(item_count, theta))
