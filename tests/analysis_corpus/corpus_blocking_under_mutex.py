"""LD003: a blocking call made while holding a mutex."""

import threading
import time


class Throttle:
    def __init__(self):
        self._mutex = threading.Lock()
        self._budget = 0  # guarded_by: _mutex

    def refill_broken(self):
        with self._mutex:
            time.sleep(0.01)  # VIOLATION LD003
            self._budget += 1

    def refill_ok(self):
        time.sleep(0.01)
        with self._mutex:
            self._budget += 1
