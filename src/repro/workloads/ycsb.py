"""YCSB core workloads (paper Table IX).

==========  =====================================  =============
Workload    Mix                                    Distribution
==========  =====================================  =============
Load        100% insert                            ordered hash
A           50% read / 50% update                  zipfian
B           95% read / 5% update                   zipfian
C           100% read                              zipfian
D           95% read / 5% insert                   latest
E           95% scan / 5% insert                   zipfian
F           50% read / 50% read-modify-write       zipfian
==========  =====================================  =============

:class:`YcsbWorkload` is the declarative mix; :class:`YcsbWorkloadRunner`
generates concrete operations and can drive a real
:class:`~repro.lsm.db.LsmDB`.  The system simulator consumes only the
mix fractions (it models op *costs*, not op *bytes*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import InvalidArgumentError, NotFoundError
from repro.workloads.distributions import (
    LatestGenerator,
    ZipfianGenerator,
    fnv_hash64,
)


class YcsbOp(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"


@dataclass(frozen=True)
class YcsbWorkload:
    """One row of the paper's Table IX."""

    name: str
    read_fraction: float = 0.0
    update_fraction: float = 0.0
    insert_fraction: float = 0.0
    scan_fraction: float = 0.0
    rmw_fraction: float = 0.0
    distribution: str = "zipfian"  # "zipfian" | "latest" | "uniform"
    max_scan_length: int = 100

    def __post_init__(self) -> None:
        total = (self.read_fraction + self.update_fraction
                 + self.insert_fraction + self.scan_fraction
                 + self.rmw_fraction)
        if abs(total - 1.0) > 1e-9:
            raise InvalidArgumentError(
                f"workload {self.name}: fractions sum to {total}, not 1")

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that mutate the store (an RMW counts as
        one write, its read is accounted separately)."""
        return (self.update_fraction + self.insert_fraction
                + self.rmw_fraction)

    @property
    def effective_read_fraction(self) -> float:
        """Reads per op, counting the read half of RMWs and scans."""
        return (self.read_fraction + self.scan_fraction
                + self.rmw_fraction)


YCSB_WORKLOADS: dict[str, YcsbWorkload] = {
    "load": YcsbWorkload("load", insert_fraction=1.0),
    "a": YcsbWorkload("a", read_fraction=0.5, update_fraction=0.5),
    "b": YcsbWorkload("b", read_fraction=0.95, update_fraction=0.05),
    "c": YcsbWorkload("c", read_fraction=1.0),
    "d": YcsbWorkload("d", read_fraction=0.95, insert_fraction=0.05,
                      distribution="latest"),
    "e": YcsbWorkload("e", scan_fraction=0.95, insert_fraction=0.05),
    "f": YcsbWorkload("f", read_fraction=0.5, rmw_fraction=0.5),
}


def ycsb_key(item: int, key_length: int = 16) -> bytes:
    """YCSB-style key: ``user`` + zero-padded hashed id."""
    digits = max(1, key_length - 4)
    return b"user" + str(fnv_hash64(item) % 10 ** digits).zfill(digits).encode()


class YcsbWorkloadRunner:
    """Generates operations for one workload and optionally applies them
    to a database exposing ``put/get/scan``."""

    def __init__(self, workload: YcsbWorkload, record_count: int,
                 key_length: int = 16, value_length: int = 1024,
                 seed: int = 1):
        if record_count <= 0:
            raise InvalidArgumentError("record_count must be positive")
        self.workload = workload
        self.record_count = record_count
        self.key_length = key_length
        self.value_length = value_length
        import random
        self._random = random.Random(seed)
        self._inserted = record_count
        if workload.distribution == "latest":
            self._chooser = LatestGenerator(record_count, seed=seed)
        elif workload.distribution == "uniform":
            from repro.workloads.distributions import UniformGenerator
            self._chooser = UniformGenerator(record_count, seed=seed)
        else:
            self._chooser = ZipfianGenerator(record_count, seed=seed)

    def _value(self, item: int) -> bytes:
        pattern = f"v{item:x}-".encode()
        reps = self.value_length // len(pattern) + 1
        return (pattern * reps)[:self.value_length]

    def key_for(self, item: int) -> bytes:
        return ycsb_key(item, self.key_length)

    def load_ops(self) -> Iterator[tuple[YcsbOp, bytes, bytes]]:
        """The initial 100%-insert load phase."""
        for item in range(self.record_count):
            yield YcsbOp.INSERT, self.key_for(item), self._value(item)

    def _choose_op(self) -> YcsbOp:
        w = self.workload
        r = self._random.random()
        for fraction, op in ((w.read_fraction, YcsbOp.READ),
                             (w.update_fraction, YcsbOp.UPDATE),
                             (w.insert_fraction, YcsbOp.INSERT),
                             (w.scan_fraction, YcsbOp.SCAN),
                             (w.rmw_fraction, YcsbOp.READ_MODIFY_WRITE)):
            if r < fraction:
                return op
            r -= fraction
        return YcsbOp.READ

    def transactions(self, op_count: int
                     ) -> Iterator[tuple[YcsbOp, bytes, Optional[bytes], int]]:
        """Yield ``(op, key, value_or_None, scan_length)``."""
        for _ in range(op_count):
            op = self._choose_op()
            if op is YcsbOp.INSERT:
                if isinstance(self._chooser, LatestGenerator):
                    item = self._chooser.record_insert()
                else:
                    item = self._inserted
                self._inserted += 1
                yield op, self.key_for(item), self._value(item), 0
                continue
            item = self._chooser.next() % max(1, self._inserted)
            key = self.key_for(item)
            if op in (YcsbOp.UPDATE, YcsbOp.READ_MODIFY_WRITE):
                yield op, key, self._value(item), 0
            elif op is YcsbOp.SCAN:
                length = 1 + self._random.randrange(
                    self.workload.max_scan_length)
                yield op, key, None, length
            else:
                yield op, key, None, 0

    # ------------------------------------------------------------------
    # Driving a real database
    # ------------------------------------------------------------------

    def load(self, db) -> int:
        """Apply the load phase; returns records written."""
        count = 0
        for _, key, value in self.load_ops():
            db.put(key, value)
            count += 1
        return count

    def run(self, db, op_count: int) -> dict[str, int]:
        """Apply ``op_count`` transactions; returns op counters."""
        counters = {op.value: 0 for op in YcsbOp}
        counters["not_found"] = 0
        for op, key, value, scan_len in self.transactions(op_count):
            if op in (YcsbOp.INSERT, YcsbOp.UPDATE):
                db.put(key, value)
            elif op is YcsbOp.READ:
                try:
                    db.get(key)
                except NotFoundError:
                    counters["not_found"] += 1
            elif op is YcsbOp.SCAN:
                taken = 0
                for _ in db.scan(start=key):
                    taken += 1
                    if taken >= scan_len:
                        break
            else:  # read-modify-write
                try:
                    db.get(key)
                except NotFoundError:
                    counters["not_found"] += 1
                db.put(key, value)
            counters[op.value] += 1
        return counters
