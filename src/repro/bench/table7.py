"""Table VII — FPGA resource utilization per (N, W_in, V) configuration.

The paper's six synthesis results against our fitted estimator.  The
three 9-input configurations whose LUT demand exceeds 100% are the reason
the multi-input engine runs with W_in = V = 8.
"""

from __future__ import annotations

from repro.bench.common import ExperimentResult
from repro.fpga.resources import estimate_for

#: (N, W_in, V) -> paper's (BRAM%, FF%, LUT%)
PAPER = {
    (2, 64, 16): (18, 10, 72),
    (2, 64, 8): (17, 9, 63),
    (9, 64, 8): (35, 27, 206),
    (9, 16, 16): (30, 18, 125),
    (9, 16, 8): (26, 16, 103),
    (9, 8, 8): (25, 14, 84),
}


def run(scale: float = 1.0) -> ExperimentResult:
    del scale  # static model, nothing to scale
    result = ExperimentResult(
        name="Table VII",
        title="Resource utilization for different FPGA configurations",
        columns=["N", "W_in", "V", "BRAM%", "FF%", "LUT%", "fits",
                 "paper_BRAM%", "paper_FF%", "paper_LUT%"],
    )
    for (n, w_in, v), paper in PAPER.items():
        report = estimate_for(n, w_in, v)
        result.add_row(n, w_in, v, report.bram_pct, report.ff_pct,
                       report.lut_pct, report.fits, *paper)
    result.notes.append(
        "configurations with any class above 100% cannot be placed; the "
        "paper picks (9, 8, 8) for the multi-input engine")
    return result
