"""CRC32C vectors (RFC 3720 / LevelDB test suite) and masking."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.crc32c import crc32c, mask_crc, unmask_crc


class TestVectors:
    def test_empty(self):
        assert crc32c(b"") == 0

    def test_all_zeros_32(self):
        # RFC 3720 B.4: 32 bytes of zeros.
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_all_ones_32(self):
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_ascending(self):
        data = bytes(range(32))
        assert crc32c(data) == 0x46DD794E

    def test_descending(self):
        data = bytes(range(31, -1, -1))
        assert crc32c(data) == 0x113FDB5C

    def test_standard_check_string(self):
        assert crc32c(b"123456789") == 0xE3069283


class TestIncremental:
    def test_extend_equals_whole(self):
        data = b"hello world, this is crc32c"
        whole = crc32c(data)
        partial = crc32c(data[10:], crc32c(data[:10]))
        assert partial == whole

    def test_different_inputs_differ(self):
        assert crc32c(b"a") != crc32c(b"b")


class TestMasking:
    def test_mask_changes_value(self):
        crc = crc32c(b"foo")
        assert mask_crc(crc) != crc

    def test_mask_is_invertible(self):
        for data in (b"", b"a", b"leveldb", bytes(100)):
            crc = crc32c(data)
            assert unmask_crc(mask_crc(crc)) == crc

    def test_double_mask_not_identity(self):
        crc = crc32c(b"foo")
        assert mask_crc(mask_crc(crc)) != crc


@given(st.binary(max_size=500), st.integers(min_value=0, max_value=499))
def test_incremental_property(data, split):
    split = min(split, len(data))
    assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_mask_roundtrip_property(value):
    assert unmask_crc(mask_crc(value)) == value
