#!/usr/bin/env python3
"""End-to-end crash-durability smoke for the sharded KV service.

The drill CI runs on every change to the write path::

    PYTHONPATH=src python tools/service_smoke.py [--clients 4] \\
        [--writes 150] [--shards 2] [--root DIR]

1. Start ``python -m repro.service serve`` as a real subprocess on an
   ephemeral port (real OS files, ``wal_sync=group``).
2. Run concurrent client threads; every ``put`` that returns OK is
   recorded as *acknowledged*.
3. ``SIGKILL`` the server mid-traffic — no shutdown hooks, no flush.
4. Restart the server over the same directory and verify every
   acknowledged key is readable with the exact value written.

Exit status: 0 when no acknowledged write was lost, 1 on any loss or
corruption, 2 on harness failure.  In-flight writes that never got an
OK may land either way — only the acknowledgement is a promise.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.service.client import KVClient  # noqa: E402


def start_server(root: str, shards: int) -> tuple[subprocess.Popen, int]:
    read_fd, write_fd = os.pipe()
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", root,
         "--port", "0", "--shards", str(shards), "--wal-sync", "group",
         "--ready-fd", str(write_fd)],
        env=env, pass_fds=(write_fd,), stderr=subprocess.DEVNULL)
    os.close(write_fd)
    with os.fdopen(read_fd) as ready:
        line = ready.readline().strip()
    if not line:
        proc.kill()
        raise RuntimeError("server died before announcing its port")
    _host, port = line.split()
    return proc, int(port)


def wait_reachable(port: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1).close()
            return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"server on port {port} never became reachable")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--writes", type=int, default=150,
                        help="writes per client before the kill")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--root", default=None,
                        help="service directory (default: fresh tempdir)")
    args = parser.parse_args()

    root = args.root or tempfile.mkdtemp(prefix="kv-smoke-")
    print(f"service root: {root}")
    proc, port = start_server(root, args.shards)
    wait_reachable(port)
    print(f"server up on port {port} (pid {proc.pid}, wal_sync=group)")

    acked: list[list[tuple[bytes, bytes]]] = [[] for _ in range(args.clients)]
    failures: list[str] = []

    def client_worker(c: int) -> None:
        try:
            with KVClient("127.0.0.1", port) as kv:
                for i in range(args.writes):
                    key = f"smoke-c{c}-{i:06d}".encode()
                    value = f"payload-{c}-{i}".encode() * 3
                    kv.put(key, value)  # raises unless the server acked
                    acked[c].append((key, value))
        except Exception as error:  # killed mid-write: stop recording
            if not isinstance(error, (ConnectionError, OSError)):
                failures.append(f"client {c}: {type(error).__name__}: "
                                f"{error}")

    threads = [threading.Thread(target=client_worker, args=(c,))
               for c in range(args.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        print("harness failure during load:", *failures, sep="\n  ")
        proc.kill()
        return 2

    total_acked = sum(len(a) for a in acked)
    print(f"{total_acked} writes acknowledged; killing server with "
          f"SIGKILL")
    proc.send_signal(signal.SIGKILL)
    proc.wait()

    proc2, port2 = start_server(root, args.shards)
    try:
        wait_reachable(port2)
        print(f"server restarted on port {port2} (pid {proc2.pid}); "
              f"verifying")
        lost = []
        with KVClient("127.0.0.1", port2) as kv:
            for per_client in acked:
                for key, value in per_client:
                    try:
                        got = kv.get(key)
                    except Exception:
                        lost.append((key, "missing"))
                        continue
                    if got != value:
                        lost.append((key, "corrupt"))
        if lost:
            print(f"FAIL: {len(lost)}/{total_acked} acknowledged writes "
                  f"lost or corrupt after kill -9:")
            for key, why in lost[:10]:
                print(f"  {key.decode()}: {why}")
            return 1
        # When the lock-order watchdog is on (REPRO_LOCK_WATCHDOG=1,
        # inherited by the server process), the replay above re-ran
        # recovery + group commit under instrumented locks: any ordering
        # cycle the drill provoked shows up in the stats payload.
        with KVClient("127.0.0.1", port2) as kv:
            lockwatch = kv.stats().get("lockwatch")
        if lockwatch is not None:
            cycles = lockwatch.get("cycles", [])
            if cycles:
                print(f"FAIL: lock watchdog observed ordering cycles: "
                      f"{cycles}")
                return 1
            print(f"lock watchdog: {sum(lockwatch['acquires'].values())} "
                  f"acquires, {lockwatch['edges']} order edges, 0 cycles")
        print(f"OK: all {total_acked} acknowledged writes survived "
              f"kill -9")
        return 0
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc2.kill()


if __name__ == "__main__":
    sys.exit(main())
