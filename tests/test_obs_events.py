"""EventJournal semantics: schema stamping, monotone clocks, append-only
sinks, the tee, and :func:`repro.obs.events.replay`'s accounting."""

import io
import json

import pytest

from repro.errors import InvalidArgumentError
from repro.obs.events import (
    EVENT_TYPES,
    EventJournal,
    NullJournal,
    TeeJournal,
    read_events,
    replay,
    replay_file,
)


class TestEmit:
    def test_stamps_schema_seq_ts_type(self):
        journal = EventJournal(keep_events=True)
        record = journal.emit("flush_start", db="db", table=7)
        assert record["v"] == 1
        assert record["type"] == "flush_start"
        assert record["seq"] == 2  # journal_open took seq 1
        assert isinstance(record["ts"], float)
        assert record["table"] == 7
        assert journal.events[-1] is record

    def test_unknown_type_rejected(self):
        journal = EventJournal()
        with pytest.raises(InvalidArgumentError):
            journal.emit("flush_maybe")

    def test_every_declared_type_accepted(self):
        journal = EventJournal(keep_events=True)
        for etype in sorted(EVENT_TYPES):
            journal.emit(etype)
        assert len(journal.events) == len(EVENT_TYPES) + 1

    def test_ts_clamped_when_clock_steps_back(self):
        ticks = iter([10.0, 9.0, 11.0])
        journal = EventJournal(clock=lambda: next(ticks),
                               keep_events=True)
        journal.emit("fault")
        journal.emit("retry")
        timestamps = [event["ts"] for event in journal.events]
        assert timestamps == [10.0, 10.0, 11.0]

    def test_sim_clock_timestamps(self):
        journal = EventJournal(clock=lambda: 42.5, keep_events=True)
        assert journal.emit("fallback")["ts"] == 42.5


class TestSinks:
    def test_sink_path_appends_never_clobbers(self, tmp_path):
        """S1: reopening a journal extends the file — the first run's
        records survive as an earlier segment."""
        path = str(tmp_path / "events.jsonl")
        first = EventJournal(sink_path=path)
        first.emit("flush_start", db="db")
        first.emit("flush_finish", db="db", bytes=10)
        first.close()
        second = EventJournal(sink_path=path)
        second.emit("fault", kind="crc")
        second.close()

        events = read_events(path)
        types = [event["type"] for event in events]
        assert types == ["journal_open", "flush_start", "flush_finish",
                         "journal_open", "fault"]
        # Each segment numbers from 1 independently.
        assert [e["seq"] for e in events] == [1, 2, 3, 1, 2]

    def test_single_line_per_event(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink)
        journal.emit("retry", attempt=1)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_close_leaves_borrowed_sinks_open(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink)
        journal.close()
        assert not sink.closed


class TestTee:
    def test_fans_out_to_every_journal(self):
        left, right = EventJournal(keep_events=True), \
            EventJournal(keep_events=True)
        tee = TeeJournal(left, right, None)
        tee.emit("flush_start", db="db")
        assert left.events[-1]["type"] == "flush_start"
        assert right.events[-1]["type"] == "flush_start"
        # Seq discipline stays per-journal, not shared.
        assert left.events[-1]["seq"] == right.events[-1]["seq"] == 2

    def test_close_is_not_ownership(self):
        sink = io.StringIO()
        journal = EventJournal(sink=sink)
        TeeJournal(journal).close()
        journal.emit("fault")  # still writable: tee.close() is a no-op
        assert "fault" in sink.getvalue()

    def test_null_journal_is_inert(self):
        null = NullJournal()
        assert null.emit("flush_start") == {}
        null.close()


class TestReplay:
    def _journal(self):
        journal = EventJournal(keep_events=True)
        journal.emit("flush_start", db="db", table=1)
        journal.emit("flush_finish", db="db", table=1, bytes=100,
                     write_bytes=100)
        journal.emit("stall_start", reason="l0_stop")
        journal.emit("stall_finish", reason="l0_stop", seconds=0.25)
        journal.emit("compaction_start", level=0, output_level=1,
                     reason="size", input_bytes=100)
        journal.emit("compaction_finish", level=0, output_level=1,
                     reason="size", backend="fpga", input_bytes=100,
                     input_bytes_base=80, input_bytes_parent=20,
                     output_bytes=90, write_bytes=120)
        journal.emit("fault", kind="crc")
        journal.emit("retry", kind="crc", attempt=1)
        journal.emit("fallback", level=0)
        return journal

    def test_summary_accounting(self):
        summary = replay(self._journal().events)
        assert summary.flushes == 1
        assert summary.flush_bytes == 100
        assert summary.compactions == 1
        assert summary.compaction_output_bytes == 90
        assert summary.level_write_bytes == {0: 100, 1: 90}
        assert summary.level_read_bytes == {0: 80, 1: 20}
        assert summary.backends == {"fpga": 1}
        assert summary.reasons == {"size": 1}
        assert summary.stalls == 1
        assert summary.stall_seconds == 0.25
        assert summary.faults == {"crc": 1}
        assert summary.retries == 1
        assert summary.fallbacks == 1
        assert not summary.unbalanced
        # write_bytes is max-folded from finish events.
        assert summary.write_bytes == 120
        assert summary.write_amplification == (100 + 90) / 120
        assert summary.per_level_write_amp() == {0: 100 / 120,
                                                 1: 90 / 120}

    def test_unbalanced_pairs_reported(self):
        journal = EventJournal(keep_events=True)
        journal.emit("compaction_start", level=0)
        journal.emit("flush_finish", bytes=5)
        summary = replay(journal.events)
        assert summary.unbalanced == {"compaction_start": 1,
                                      "flush_finish": 1}
        assert summary.flushes == 1  # still counted, just flagged

    def test_replay_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        journal = EventJournal(sink_path=path)
        for event in self._journal().events[1:]:
            fields = {k: v for k, v in event.items()
                      if k not in ("v", "seq", "ts", "type")}
            journal.emit(event["type"], **fields)
        journal.close()
        summary = replay_file(path)
        assert summary.flushes == 1 and summary.compactions == 1
        assert summary.write_amplification == (100 + 90) / 120
