"""Pipeline timing simulator: synchronization and cycle accounting."""

import pytest

from repro.errors import SimulationError
from repro.fpga.config import FpgaConfig, PipelineVariant
from repro.fpga.cost_model import comparer_period
from repro.fpga.engine import simulate_synthetic
from repro.fpga.pipeline_sim import PipelineTimer


def config(**kwargs):
    defaults = dict(num_inputs=2, value_width=16, w_in=64, w_out=64)
    defaults.update(kwargs)
    return FpgaConfig(**defaults)


class TestTimerMechanics:
    def test_single_pair_latency(self):
        cfg = config()
        timer = PipelineTimer(cfg)
        timer.decode_pair(0, key_len=24, value_len=160)
        timer.comparer_round([0], winner=0, drop=False, key_len=24,
                             value_len=160)
        report = timer.finalize(input_bytes=200)
        decode = 24 + 160 / 16
        compare = comparer_period(24, 2)
        transfer = max(24, 160 / 16)
        staging = 160 / 8
        assert report.total_cycles == pytest.approx(
            decode + compare + transfer + staging)

    def test_dropped_pair_skips_value_path(self):
        cfg = config()
        timer = PipelineTimer(cfg)
        timer.decode_pair(0, 24, 160)
        timer.comparer_round([0], 0, drop=True, key_len=24, value_len=160)
        report = timer.finalize(100)
        assert report.pairs_dropped == 1
        assert report.pairs_transferred == 0
        assert report.total_cycles == pytest.approx(
            24 + 10 + comparer_period(24, 2))

    def test_comparer_waits_for_all_heads(self):
        cfg = config()
        timer = PipelineTimer(cfg)
        timer.decode_pair(0, 24, 16)
        timer.decode_pair(1, 24, 1600)  # slow decode
        timer.comparer_round([0, 1], winner=0, drop=False, key_len=24,
                             value_len=16)
        # Round start had to wait for input 1's long decode.
        assert timer.report.decoder_stall_cycles > 0

    def test_fifo_overrun_detected(self):
        cfg = config(kv_fifo_depth=1)
        timer = PipelineTimer(cfg)
        timer.decode_pair(0, 24, 16)
        with pytest.raises(SimulationError):
            timer.decode_pair(0, 24, 16)

    def test_pop_without_head_detected(self):
        cfg = config()
        timer = PipelineTimer(cfg)
        with pytest.raises(SimulationError):
            timer.comparer_round([0], 0, False, 24, 16)

    def test_block_flush_counts_writer_time(self):
        cfg = config()
        timer = PipelineTimer(cfg)
        timer.decode_pair(0, 24, 16)
        timer.comparer_round([0], 0, False, 24, 16)
        timer.block_flush(4096)
        report = timer.finalize(100)
        assert report.writer_busy_cycles == pytest.approx(4096 / 64)
        assert report.output_bytes == 4096


class TestFifoBackpressure:
    """§V-C accounting: with ``kv_fifo_depth=1`` the decoder is in
    lockstep with consumption, so a slow value path shows up as decoder
    backpressure, and the FIFO can never hold more than ``depth``."""

    def test_depth_one_accumulates_backpressure(self):
        cfg = config(kv_fifo_depth=1)
        report = simulate_synthetic(cfg, [300, 300], 16, 2048)
        assert report.decoder_backpressure_cycles > 0
        # Backpressure grows with the workload.
        longer = simulate_synthetic(cfg, [600, 600], 16, 2048)
        assert (longer.decoder_backpressure_cycles
                > report.decoder_backpressure_cycles)

    def test_high_water_never_exceeds_depth(self):
        for depth in (1, 2, 4):
            cfg = config(kv_fifo_depth=depth)
            report = simulate_synthetic(cfg, [200, 200], 16, 512)
            assert report.fifo_high_water
            assert all(0 < hw <= depth for hw in report.fifo_high_water)

    def test_exceeding_lookahead_raises(self):
        cfg = config(kv_fifo_depth=2)
        timer = PipelineTimer(cfg)
        timer.decode_pair(0, 24, 64)
        timer.decode_pair(0, 24, 64)
        with pytest.raises(SimulationError):
            timer.decode_pair(0, 24, 64)

    def test_deeper_fifo_reduces_backpressure(self):
        shallow_cfg = config(kv_fifo_depth=1)
        deep_cfg = config(kv_fifo_depth=8)
        shallow = simulate_synthetic(shallow_cfg, [300, 300], 16, 1024)
        deep = simulate_synthetic(deep_cfg, [300, 300], 16, 1024)
        assert (deep.decoder_backpressure_cycles
                <= shallow.decoder_backpressure_cycles)


class TestSyntheticDriver:
    def test_speed_positive(self):
        cfg = config()
        report = simulate_synthetic(cfg, [500, 500], 16, 128)
        assert report.speed_mbps(cfg) > 0
        assert report.comparer_rounds == 1000

    def test_speed_monotone_in_v(self):
        speeds = []
        for v in (8, 16, 32, 64):
            cfg = config(value_width=v)
            speeds.append(simulate_synthetic(
                cfg, [800, 800], 16, 1024).speed_mbps(cfg))
        assert speeds == sorted(speeds)

    def test_speed_increases_with_value_length(self):
        cfg = config()
        speeds = [simulate_synthetic(cfg, [500, 500], 16, L).speed_mbps(cfg)
                  for L in (64, 512, 2048)]
        assert speeds == sorted(speeds)

    def test_drop_fraction_reduces_output(self):
        cfg = config()
        report = simulate_synthetic(cfg, [500, 500], 16, 128,
                                    drop_fraction=0.5, seed=3)
        assert report.pairs_dropped > 300
        assert (report.pairs_dropped + report.pairs_transferred
                == report.comparer_rounds)

    def test_basic_variant_slower_than_full(self):
        full = config()
        basic = config(variant=PipelineVariant.BASIC)
        fast = simulate_synthetic(full, [500, 500], 16, 512).speed_mbps(full)
        slow = simulate_synthetic(basic, [500, 500], 16,
                                  512).speed_mbps(basic)
        assert slow < fast

    def test_deterministic_given_seed(self):
        cfg = config()
        a = simulate_synthetic(cfg, [300, 300], 16, 256, seed=9)
        b = simulate_synthetic(cfg, [300, 300], 16, 256, seed=9)
        assert a.total_cycles == b.total_cycles


class TestTableVShape:
    """The calibrated model must land in the paper's Table V ballpark."""

    @pytest.mark.parametrize("value_length,paper_v16", [
        (64, 164.5), (512, 627.9), (2048, 709.0)])
    def test_within_factor_of_paper(self, value_length, paper_v16):
        cfg = config(value_width=16)
        speed = simulate_synthetic(cfg, [2000, 2000], 16,
                                   value_length).speed_mbps(cfg)
        assert paper_v16 * 0.5 < speed < paper_v16 * 1.5
